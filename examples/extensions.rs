//! The paper's §7 future-work items, implemented and demonstrated:
//!
//! 1. **Multi-seed re-optimization** — run Algorithm 1 from several seed
//!    optimizers with a shared Γ, keep the best final plan.
//! 2. **Conservative acceptance** — only let sampling override the
//!    optimizer when the correction exceeds a discrepancy factor.
//! 3. **EXPLAIN ANALYZE** — estimated vs actual rows per plan node, the
//!    view that makes the estimation errors visible in the first place.
//!
//! ```sh
//! cargo run --release --example extensions
//! ```

use reopt::core::{run_multi_seed, ReOptConfig, ReOptimizer};
use reopt::executor::explain_analyze;
use reopt::optimizer::{Optimizer, OptimizerConfig};
use reopt::sampling::{SampleConfig, SampleStore};
use reopt::stats::{analyze_database, AnalyzeOpts};
use reopt::workloads::ott::{build_ott_database, ott_query, recommended_sample_ratio, OttConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = OttConfig::default();
    let db = build_ott_database(&config)?;
    let stats = analyze_database(&db, &AnalyzeOpts::default())?;
    let samples = SampleStore::build(
        &db,
        SampleConfig {
            ratio: recommended_sample_ratio(&config),
            ..Default::default()
        },
    )?;
    let query = ott_query(&db, &[1, 0, 0, 0, 0])?;

    // --- 3. EXPLAIN ANALYZE of the one-shot plan: see the misestimates.
    let bushy = Optimizer::new(&db, &stats);
    let original = bushy.optimize(&query)?;
    println!("one-shot plan, estimated vs actual:\n");
    println!("{}", explain_analyze(&db, &query, &original.plan)?);

    // --- 1. Multi-seed: bushy + left-deep seeds sharing Γ.
    let left_deep = Optimizer::with_config(
        &db,
        &stats,
        OptimizerConfig {
            left_deep_only: true,
            ..OptimizerConfig::postgres_like()
        },
    );
    let ms = run_multi_seed(
        &[&bushy, &left_deep],
        &samples,
        &query,
        &ReOptConfig::default(),
    )?;
    println!(
        "multi-seed: winner = seed #{} ({}), rounds per seed = {:?}, cost = {:.1}",
        ms.winner,
        if ms.winner == 0 { "bushy" } else { "left-deep" },
        ms.rounds_per_seed,
        ms.final_cost
    );
    println!("\nmulti-seed final plan, estimated vs actual:\n");
    println!("{}", explain_analyze(&db, &query, &ms.final_plan)?);

    // --- 2. Conservative acceptance at increasing thresholds.
    for factor in [None, Some(3.0), Some(1e9)] {
        let cfg = ReOptConfig {
            min_discrepancy_factor: factor,
            ..Default::default()
        };
        let re = ReOptimizer::with_config(&bushy, &samples, cfg);
        let report = re.run(&query)?;
        println!(
            "conservative acceptance {:>9}: {} rounds, Γ = {} entries, plan changed = {}",
            factor.map_or("off".to_string(), |f| format!("≥{f:.0}x")),
            report.num_rounds(),
            report.gamma.len(),
            report.plan_changed()
        );
    }
    Ok(())
}
