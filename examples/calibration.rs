//! Cost-unit calibration (§5.1.2) and its effect on plan choice.
//!
//! The paper shows calibration alone (Figure 4(a) vs 4(b)) can change
//! plans. Here: measure the five units on this machine, then optimize the
//! same query under default and calibrated units and diff the plans.
//!
//! ```sh
//! cargo run --release --example calibration
//! ```

use reopt::common::rng::derive_rng_indexed;
use reopt::optimizer::{calibrate, Optimizer, OptimizerConfig};
use reopt::stats::{analyze_database, AnalyzeOpts};
use reopt::workloads::tpch::{all_template_names, build_tpch_database, instantiate, TpchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let report = calibrate(7, 1);
    println!("calibrated cost units (seq_page_cost = 1.0):");
    println!(
        "  random_page_cost     = {:.3}   (PostgreSQL default 4.0)",
        report.units.random_page_cost
    );
    println!(
        "  cpu_tuple_cost       = {:.5} (default 0.01)",
        report.units.cpu_tuple_cost
    );
    println!(
        "  cpu_index_tuple_cost = {:.5} (default 0.005)",
        report.units.cpu_index_tuple_cost
    );
    println!(
        "  cpu_operator_cost    = {:.5} (default 0.0025)",
        report.units.cpu_operator_cost
    );

    let db = build_tpch_database(&TpchConfig::default())?;
    let stats = analyze_database(&db, &AnalyzeOpts::default())?;
    let default_opt = Optimizer::new(&db, &stats);
    let mut calibrated_config = OptimizerConfig::postgres_like();
    calibrated_config.cost_units = report.units;
    let calibrated_opt = Optimizer::with_config(&db, &stats, calibrated_config);

    let mut changed = 0;
    let mut total = 0;
    for name in all_template_names() {
        let mut rng = derive_rng_indexed(3, name, 0);
        let q = instantiate(&db, name, &mut rng)?;
        let p_default = default_opt.optimize(&q)?;
        let p_calibrated = calibrated_opt.optimize(&q)?;
        total += 1;
        if !p_default.plan.same_structure(&p_calibrated.plan) {
            changed += 1;
            println!("\n{name}: calibration changed the plan");
            println!("  default:\n{}", indent(&p_default.plan.explain()));
            println!("  calibrated:\n{}", indent(&p_calibrated.plan.explain()));
        }
    }
    println!("\ncalibration changed {changed}/{total} template plans");
    Ok(())
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
