//! Re-optimizing a "difficult" TPC-H-like query (the paper's Q9 analogue).
//!
//! The part table's `p_brand` and `p_type` are correlated; Q9's conjunction
//! across them makes the native estimate of σ(part) ~25× too small, which
//! cascades into the six-way join order. Sampling catches the error at the
//! first validated join and the loop repairs the plan.
//!
//! ```sh
//! cargo run --release --example tpch_reopt
//! ```

use reopt::common::rng::derive_rng_indexed;
use reopt::core::ReOptimizer;
use reopt::executor::execute_plan;
use reopt::optimizer::Optimizer;
use reopt::sampling::{SampleConfig, SampleStore};
use reopt::stats::{analyze_database, AnalyzeOpts};
use reopt::workloads::tpch::{build_tpch_database, instantiate, TpchConfig};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = build_tpch_database(&TpchConfig::default())?;
    println!(
        "TPC-H-like database at scale {:.3}: lineitem = {} rows",
        TpchConfig::default().scale,
        db.table_by_name("lineitem")?.row_count()
    );
    let stats = analyze_database(&db, &AnalyzeOpts::default())?;
    let samples = SampleStore::build(&db, SampleConfig::default())?;
    let optimizer = Optimizer::new(&db, &stats);
    let re = ReOptimizer::new(&optimizer, &samples);

    for name in ["q9", "q21", "q3"] {
        let mut rng = derive_rng_indexed(0xbeef, name, 0);
        let query = instantiate(&db, name, &mut rng)?;
        println!("\n--- {name} ---\n{}", reopt::plan::to_sql(&query, &db));
        let report = re.run(&query)?;

        let t = Instant::now();
        execute_plan(&db, &query, &report.rounds[0].plan)?;
        let orig = t.elapsed();
        let t = Instant::now();
        execute_plan(&db, &query, &report.final_plan)?;
        let fin = t.elapsed();

        println!(
            "{name}: {} relations, {} round(s), plan changed = {}",
            query.num_relations(),
            report.num_rounds(),
            report.plan_changed()
        );
        println!("  original plan time:      {orig:?}");
        println!("  re-optimized plan time:  {fin:?}");
        println!("  re-optimization loop:    {:?}", report.reopt_time);
        if report.plan_changed() {
            println!("  final plan:\n{}", indent(&report.final_plan.explain(), 4));
        }
    }
    Ok(())
}

fn indent(s: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    s.lines()
        .map(|l| format!("{pad}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
