//! The paper's §3 theory, checked live: S_N vs simulation, the O(√N)
//! envelope, and Theorems 1/2/5 machine-verified on an actual
//! re-optimization run.
//!
//! ```sh
//! cargo run --release --example theory_playground
//! ```

use reopt::analysis::{s_n, simulate_mean};
use reopt::core::ReOptimizer;
use reopt::optimizer::Optimizer;
use reopt::sampling::{SampleConfig, SampleStore};
use reopt::stats::{analyze_database, AnalyzeOpts};
use reopt::workloads::ott::{build_ott_database, ott_query, recommended_sample_ratio, OttConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Lemma 1 / Theorem 3: closed form vs simulation vs envelope.
    println!("N      S_N      simulated   sqrt(N)   2*sqrt(N)");
    for n in [10u64, 100, 500, 1000] {
        let sim = simulate_mean(n as usize, 5_000, 1);
        println!(
            "{:<6} {:<8.2} {:<11.2} {:<9.2} {:<9.2}",
            n,
            s_n(n),
            sim,
            (n as f64).sqrt(),
            2.0 * (n as f64).sqrt()
        );
    }

    // --- A real run: Theorems 1, 2, 5 on an OTT query.
    let config = OttConfig::default();
    let db = build_ott_database(&config)?;
    let stats = analyze_database(&db, &AnalyzeOpts::default())?;
    let samples = SampleStore::build(
        &db,
        SampleConfig {
            ratio: recommended_sample_ratio(&config),
            ..Default::default()
        },
    )?;
    let optimizer = Optimizer::new(&db, &stats);
    let re = ReOptimizer::new(&optimizer, &samples);
    let query = ott_query(&db, &[0, 0, 1, 0, 0, 1])?;
    let report = re.run(&query)?;

    println!("\nOTT query, 6 relations:");
    println!(
        "  rounds: {} (Corollary 1 guarantees termination)",
        report.num_rounds()
    );
    println!(
        "  transformation chain: {:?}",
        report
            .rounds
            .iter()
            .filter_map(|r| r.transform)
            .collect::<Vec<_>>()
    );
    match report.verify_theorem2() {
        Ok(()) => println!("  Theorem 2 holds: globals first, ≤1 trailing local"),
        Err(e) => println!("  Theorem 2 VIOLATED: {e}"),
    }
    let (final_cost, per_round) = re.verify_final_optimality(&query, &report)?;
    println!("  Theorem 5: cost_s(final) = {final_cost:.1} vs per-round {per_round:?}");
    assert!(per_round.iter().all(|c| final_cost <= c * (1.0 + 1e-9)));
    println!("  Theorem 5 holds: final plan is cheapest under the final Γ");
    Ok(())
}
