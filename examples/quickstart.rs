//! Quickstart: build a small database, ask the optimizer for a plan, let
//! sampling-based re-optimization second-guess it, and execute the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use reopt::core::{ReOptConfig, ReOptimizer};
use reopt::executor::execute_plan;
use reopt::optimizer::Optimizer;
use reopt::plan::query::{AggExpr, AggSpec, ColRef};
use reopt::plan::{Predicate, QueryBuilder};
use reopt::sampling::{SampleConfig, SampleStore};
use reopt::stats::{analyze_database, AnalyzeOpts};
use reopt::storage::{Column, ColumnDef, Database, LogicalType, Table, TableSchema};
use reopt_common::ColId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A database: `users(id, city)` and `clicks(user_id, kind)`,
    // where city and kind are *correlated* through the user id — the
    // situation histogram estimators silently get wrong.
    let mut db = Database::new();
    let n_users = 10_000i64;
    db.add_table_with(|id| {
        let schema = TableSchema::new(vec![
            ColumnDef::new("id", LogicalType::Int),
            ColumnDef::new("city", LogicalType::Int),
        ])?;
        let mut t = Table::new(
            id,
            "users",
            schema,
            vec![
                Column::from_i64(LogicalType::Int, (0..n_users).collect()),
                Column::from_i64(LogicalType::Int, (0..n_users).map(|i| i % 50).collect()),
            ],
        )?;
        t.create_index(ColId::new(0))?;
        t.create_index(ColId::new(1))?;
        Ok(t)
    })?;
    db.add_table_with(|id| {
        let schema = TableSchema::new(vec![
            ColumnDef::new("user_id", LogicalType::Int),
            ColumnDef::new("kind", LogicalType::Int),
        ])?;
        let rows = 80_000i64;
        let mut t = Table::new(
            id,
            "clicks",
            schema,
            vec![
                Column::from_i64(LogicalType::Int, (0..rows).map(|i| i % n_users).collect()),
                // kind correlates with the user's city (both derive from id).
                Column::from_i64(
                    LogicalType::Int,
                    (0..rows).map(|i| (i % n_users) % 50).collect(),
                ),
            ],
        )?;
        t.create_index(ColId::new(0))?;
        Ok(t)
    })?;

    // --- 2. ANALYZE + offline samples (the paper uses a 5% ratio).
    let stats = analyze_database(&db, &AnalyzeOpts::default())?;
    let samples = SampleStore::build(&db, SampleConfig::default())?;

    // --- 3. A query: count clicks of kind 7 by users of city 7.
    // (City 7 users produce *only* kind-7 clicks; AVI assumes independence.)
    let mut qb = QueryBuilder::new();
    let u = qb.add_relation(db.table_id("users")?);
    let c = qb.add_relation(db.table_id("clicks")?);
    qb.add_predicate(Predicate::eq(u, ColId::new(1), 7i64));
    qb.add_predicate(Predicate::eq(c, ColId::new(1), 7i64));
    qb.add_join(ColRef::new(u, ColId::new(0)), ColRef::new(c, ColId::new(0)));
    qb.aggregate(AggSpec {
        group_by: vec![],
        aggs: vec![AggExpr::count_star()],
    });
    let query = qb.build();

    // --- 4. One-shot optimization vs the re-optimization loop.
    let optimizer = Optimizer::new(&db, &stats);
    let original = optimizer.optimize(&query)?;
    println!(
        "original plan (histogram estimates):\n{}",
        original.plan.explain()
    );

    let re = ReOptimizer::with_config(&optimizer, &samples, ReOptConfig::default());
    let report = re.run(&query)?;
    println!(
        "re-optimization: {} round(s), {} distinct plan(s), converged = {}, loop time = {:?}",
        report.num_rounds(),
        report.num_distinct_plans(),
        report.converged,
        report.reopt_time
    );
    println!(
        "final plan (sampling-validated estimates):\n{}",
        report.final_plan.explain()
    );

    // --- 5. Execute the final plan.
    let out = execute_plan(&db, &query, &report.final_plan)?;
    println!("join rows: {}", out.join_rows);
    if let Some(agg) = out.agg {
        for row in &agg.rows {
            println!("COUNT(*) = {}", row.aggs[0]);
        }
    }
    Ok(())
}
