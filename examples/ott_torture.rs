//! The Optimizer Torture Test (§4 of the paper), end to end.
//!
//! Generates the correlated OTT database, runs one empty five-table query,
//! and shows (a) the optimizer's cardinality blindness, (b) the original
//! plan's execution cost, (c) the re-optimization trace discovering the
//! empty join, and (d) the repaired plan's execution cost.
//!
//! ```sh
//! cargo run --release --example ott_torture
//! ```

use reopt::core::ReOptimizer;
use reopt::executor::execute_plan;
use reopt::optimizer::Optimizer;
use reopt::sampling::{SampleConfig, SampleStore};
use reopt::stats::{analyze_database, AnalyzeOpts};
use reopt::workloads::ott::{
    build_ott_database, estimated_query_size, ott_query, recommended_sample_ratio, true_query_size,
    OttConfig,
};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = OttConfig::default();
    let db = build_ott_database(&config)?;
    println!(
        "OTT database: {} tables, {} total rows",
        db.len(),
        db.total_rows()
    );

    let stats = analyze_database(&db, &AnalyzeOpts::default())?;
    let samples = SampleStore::build(
        &db,
        SampleConfig {
            ratio: recommended_sample_ratio(&config),
            ..Default::default()
        },
    )?;
    let optimizer = Optimizer::new(&db, &stats);

    // Four selections A=0 and one A=1: the query is EMPTY, but Lemma 4
    // says the optimizer cannot tell.
    let constants = [0i64, 0, 0, 0, 1];
    let query = ott_query(&db, &constants)?;
    println!(
        "\nquery constants {constants:?}: true size = {}, optimizer-style estimate ≈ {:.0} (blind to emptiness)",
        true_query_size(&config, &constants),
        estimated_query_size(&config, constants.len()),
    );

    let original = optimizer.optimize(&query)?;
    println!("\noriginal plan:\n{}", original.plan.explain());
    let t = Instant::now();
    let out = execute_plan(&db, &query, &original.plan)?;
    let original_time = t.elapsed();
    println!(
        "original execution: {:?}, {} rows produced across operators",
        original_time, out.metrics.rows_produced
    );

    let re = ReOptimizer::new(&optimizer, &samples);
    let report = re.run(&query)?;
    println!("\nre-optimization trace:");
    for r in &report.rounds {
        println!(
            "  round {}: transform = {:?}, Γ gained {} entries, optimize {:?} + validate {:?}",
            r.round, r.transform, r.gamma_new_entries, r.optimize_time, r.validation_time
        );
    }
    println!("\nvalidated Γ entries:");
    let mut entries: Vec<_> = report.gamma.iter().collect();
    entries.sort_by_key(|(s, _)| (s.len(), s.mask()));
    for (set, rows) in entries {
        println!("  {set} -> {rows:.1} rows");
    }

    println!("\nfinal plan:\n{}", report.final_plan.explain());
    let t = Instant::now();
    let out = execute_plan(&db, &query, &report.final_plan)?;
    let final_time = t.elapsed();
    println!(
        "re-optimized execution: {:?}, {} rows produced across operators",
        final_time, out.metrics.rows_produced
    );
    println!(
        "\nspeedup: {:.1}x (re-optimization loop itself took {:?})",
        original_time.as_secs_f64() / final_time.as_secs_f64().max(1e-9),
        report.reopt_time
    );
    Ok(())
}
