//! Minimal `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! Registry access is unavailable, so this crate parses the derive input
//! token stream by hand (no `syn`/`quote`) and emits impls of the shim's
//! value-tree traits. Supported shapes — the ones this workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (newtype arity-1 and general),
//! * unit structs,
//! * enums with unit and tuple variants,
//! * the container attribute `#[serde(from = "T", into = "T")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<(String, VariantShape)>),
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
}

#[derive(Debug)]
struct Input {
    name: String,
    shape: Shape,
    from_ty: Option<String>,
    into_ty: Option<String>,
}

/// Count commas at angle-bracket depth 0 to split a token list into fields.
fn count_top_level_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1usize;
    let mut last_was_comma = false;
    for t in tokens {
        last_was_comma = false;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    fields += 1;
                    last_was_comma = true;
                }
                _ => {}
            }
        }
    }
    if last_was_comma {
        fields -= 1; // trailing comma
    }
    fields
}

/// Extract `from`/`into` from a `#[serde(...)]` attribute body.
fn parse_serde_attr(
    body: &[TokenTree],
    from_ty: &mut Option<String>,
    into_ty: &mut Option<String>,
) {
    let mut i = 0;
    while i < body.len() {
        if let TokenTree::Ident(key) = &body[i] {
            let key = key.to_string();
            if (key == "from" || key == "into")
                && i + 2 < body.len()
                && matches!(&body[i + 1], TokenTree::Punct(p) if p.as_char() == '=')
            {
                if let TokenTree::Literal(lit) = &body[i + 2] {
                    let raw = lit.to_string();
                    let ty = raw.trim_matches('"').to_string();
                    if key == "from" {
                        *from_ty = Some(ty);
                    } else {
                        *into_ty = Some(ty);
                    }
                }
                i += 3;
                continue;
            }
        }
        i += 1;
    }
}

/// Skip a run of `#[...]` attributes starting at `i`; collect serde attrs.
fn skip_attrs(
    tokens: &[TokenTree],
    mut i: usize,
    from_ty: &mut Option<String>,
    into_ty: &mut Option<String>,
) -> usize {
    while i + 1 < tokens.len() {
        let is_pound = matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_pound {
            break;
        }
        if let TokenTree::Group(g) = &tokens[i + 1] {
            if g.delimiter() == Delimiter::Bracket {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = body.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(inner)) = body.get(1) {
                            let inner: Vec<TokenTree> = inner.stream().into_iter().collect();
                            parse_serde_attr(&inner, from_ty, into_ty);
                        }
                    }
                }
                i += 2;
                continue;
            }
        }
        break;
    }
    i
}

/// Parse the fields of a named struct body: `{ attrs vis name: ty, ... }`.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    let mut ignore_from = None;
    let mut ignore_into = None;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i, &mut ignore_from, &mut ignore_into);
        // Skip visibility.
        if matches!(&tokens[i..], [TokenTree::Ident(id), ..] if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            Some(other) => panic!("serde_derive: unexpected token in struct body: {other}"),
        }
        i += 1;
        // Expect `:`, then consume the type until a depth-0 comma.
        assert!(
            matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde_derive: expected `:` after field name"
        );
        i += 1;
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Parse enum variants: `attrs Name`, `attrs Name(tys)`, optional `= disc`.
fn parse_variants(group: &proc_macro::Group) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    let mut ignore_from = None;
    let mut ignore_into = None;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i, &mut ignore_from, &mut ignore_into);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("serde_derive: unexpected token in enum body: {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantShape::Tuple(count_top_level_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde_derive: struct-like enum variants are not supported (variant {name})")
            }
            _ => VariantShape::Unit,
        };
        // Skip to past the next depth-0 comma (covers `= discriminant`).
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        variants.push((name, shape));
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut from_ty = None;
    let mut into_ty = None;
    let mut i = skip_attrs(&tokens, 0, &mut from_ty, &mut into_ty);

    // Visibility.
    if matches!(&tokens[i..], [TokenTree::Ident(id), ..] if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => panic!("serde_derive: expected `struct` or `enum`"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => panic!("serde_derive: expected type name"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported (type {name})");
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::TupleStruct(count_top_level_fields(&inner))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: unexpected struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g))
            }
            other => panic!("serde_derive: unexpected enum body: {other:?}"),
        },
        other => panic!("serde_derive: expected `struct` or `enum`, got `{other}`"),
    };

    Input {
        name,
        shape,
        from_ty,
        into_ty,
    }
}

/// Derive the shim's `Serialize` (value-tree) impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;

    if let Some(into_ty) = &input.into_ty {
        let code = format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     let proxy: {into_ty} = ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
                     ::serde::Serialize::to_value(&proxy)\n\
                 }}\n\
             }}"
        );
        return code.parse().unwrap();
    }

    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    VariantShape::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"
                    ),
                    VariantShape::Tuple(1) => format!(
                        "{name}::{v}(x0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(x0))]),"
                    ),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };

    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// Derive the shim's `Deserialize` (value-tree) impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;

    if let Some(from_ty) = &input.from_ty {
        let code = format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                     let proxy: {from_ty} = ::serde::Deserialize::from_value(v)?;\n\
                     ::core::result::Result::Ok(::core::convert::From::from(proxy))\n\
                 }}\n\
             }}"
        );
        return code.parse().unwrap();
    }

    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: match v.get(\"{f}\") {{\n\
                             Some(fv) => ::serde::Deserialize::from_value(fv)?,\n\
                             None => ::serde::Deserialize::from_value(&::serde::Value::Null)\n\
                                 .map_err(|_| ::serde::DeError::msg(\n\
                                     \"missing field `{f}` in {name}\"))?,\n\
                         }},"
                    )
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Object(_) => ::core::result::Result::Ok({name} {{ {} }}),\n\
                     other => ::core::result::Result::Err(::serde::DeError::msg(format!(\n\
                         \"expected object for {name}, got {{other:?}}\"))),\n\
                 }}",
                inits.join("\n")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| \
                         ::serde::DeError::msg(\"{name}: missing tuple element {i}\"))?)?"
                    )
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Array(items) => ::core::result::Result::Ok({name}({})),\n\
                     other => ::core::result::Result::Err(::serde::DeError::msg(format!(\n\
                         \"expected array for {name}, got {{other:?}}\"))),\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("::core::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let str_arms: Vec<String> = variants
                .iter()
                .filter(|(_, s)| matches!(s, VariantShape::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::core::result::Result::Ok({name}::{v}),"))
                .collect();
            let obj_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, s)| match s {
                    VariantShape::Unit => None,
                    VariantShape::Tuple(1) => Some(format!(
                        "\"{v}\" => ::core::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(payload)?)),"
                    )),
                    VariantShape::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| \
                                     ::serde::DeError::msg(\"{name}::{v}: missing element {i}\"))?)?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => match payload {{\n\
                                 ::serde::Value::Array(items) => ::core::result::Result::Ok({name}::{v}({})),\n\
                                 _ => ::core::result::Result::Err(::serde::DeError::msg(\n\
                                     \"{name}::{v}: expected array payload\")),\n\
                             }},",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {str_arms}\n\
                         other => ::core::result::Result::Err(::serde::DeError::msg(format!(\n\
                             \"unknown variant `{{other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                         let (tag, payload) = &fields[0];\n\
                         match tag.as_str() {{\n\
                             {obj_arms}\n\
                             other => ::core::result::Result::Err(::serde::DeError::msg(format!(\n\
                                 \"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::core::result::Result::Err(::serde::DeError::msg(format!(\n\
                         \"expected variant for {name}, got {{other:?}}\"))),\n\
                 }}",
                str_arms = str_arms.join("\n"),
                obj_arms = obj_arms.join("\n"),
            )
        }
    };

    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
