//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of proptest it uses: the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `boxed`, range and tuple strategies,
//! [`collection::vec`], [`option::of`], `Just`, `prop_oneof!`, and the
//! [`proptest!`] test macro with `prop_assert*`. Cases are generated from
//! a deterministic per-test RNG; there is **no shrinking** — a failure
//! reports the offending case via `Debug` of the asserted expressions.

pub mod test_runner {
    //! Test execution plumbing: deterministic RNG, config and errors.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;

    /// Per-test deterministic RNG.
    pub struct TestRng(pub StdRng);

    impl TestRng {
        /// Derive a deterministic RNG from the test's name.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Number of generated cases and related knobs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases generated per property.
        pub cases: u32,
        /// Unused (accepted for API compatibility).
        pub max_shrink_iters: u32,
        /// Unused (accepted for API compatibility).
        pub timeout: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
                timeout: 0,
            }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;
    use rand::RngExt;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy derived from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Erase the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.new_value(rng)))
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Weighted union of same-typed strategies (backs `prop_oneof!`).
    pub struct OneOf<S> {
        arms: Vec<(u32, S)>,
        total: u32,
    }

    impl<S: Strategy> OneOf<S> {
        /// Build from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, S)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs positive total weight");
            OneOf { arms, total }
        }
    }

    impl<S: Strategy> Strategy for OneOf<S> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            let mut pick = rng.random_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.new_value(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for ::core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::core::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }
}

pub mod arbitrary {
    //! `any::<T>()` — whole-domain strategies for primitives.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::{RngCore, RngExt};

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate one uniform value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.random_range(-1.0e9..1.0e9)
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(::core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(::core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::RngExt;

    /// Length specification for [`vec()`]: an exact size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<::core::ops::Range<usize>> for SizeRange {
        fn from(r: ::core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<::core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `proptest::collection::vec` — vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::RngExt;

    /// Strategy for `Option<S::Value>` (`Some` with probability 1/2).
    pub struct OfStrategy<S>(S);

    impl<S: Strategy> Strategy for OfStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.random_bool(0.5) {
                Some(self.0.new_value(rng))
            } else {
                None
            }
        }
    }

    /// `proptest::option::of` — optional values.
    pub fn of<S: Strategy>(element: S) -> OfStrategy<S> {
        OfStrategy(element)
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: generates `#[test]` functions that run the body
/// over `config.cases` generated cases. No shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                    let mut inputs = ::std::string::String::new();
                    $(
                        inputs.push_str(stringify!($arg));
                        inputs.push_str(" = ");
                        inputs.push_str(&::std::format!("{:?}", $arg));
                        inputs.push_str("; ");
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        ::core::panic!(
                            "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, config.cases, e, inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} at {}:{}: {}",
                    stringify!($cond), file!(), line!(), ::std::format!($($fmt)+),
                ),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n at {}:{}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r,
                    file!(),
                    line!(),
                ),
            ));
        }
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}\n at {}:{}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    file!(),
                    line!(),
                ),
            ));
        }
    }};
}

/// Weighted choice between same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![$(($weight as u32, $strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![$((1u32, $strat)),+])
    };
}
