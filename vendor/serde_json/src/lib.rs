//! Minimal JSON text layer over the vendored serde shim.
//!
//! Provides [`to_string`] / [`from_str`] with round-trip-faithful float
//! formatting (Rust's shortest `{:?}` representation). Only what the
//! workspace needs to persist statistics and reports as JSON.

pub use serde::Value;

use std::fmt;

/// JSON serialization/parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize any [`serde::Serialize`] value to a JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parse a JSON string into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parse a JSON string into a raw [`Value`] tree.
pub fn value_from_str(s: &str) -> Result<Value, Error> {
    parse_value(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float form; it always
                // contains `.` or `e`, keeping floats distinguishable.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Int(-3)),
            ("b".to_string(), Value::Float(0.25)),
            (
                "c".to_string(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("d".to_string(), Value::Str("x\"y\\z\n".to_string())),
        ]);
        let mut s = String::new();
        write_value(&v, &mut s);
        let back = parse_value(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn float_shortest_form_round_trips() {
        for f in [0.1, 1.0 / 3.0, 1e-300, 123456.789, f64::MAX] {
            let mut s = String::new();
            write_value(&Value::Float(f), &mut s);
            match parse_value(&s).unwrap() {
                Value::Float(g) => assert_eq!(f, g),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }
}
