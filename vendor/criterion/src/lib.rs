//! Minimal, dependency-free stand-in for the `criterion` bench harness.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of the criterion API its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros. Timing is a
//! simple calibrated loop (warm-up, then a fixed measurement budget) with
//! mean/min reported to stdout — enough to compare hot paths locally,
//! with none of upstream's statistics machinery.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Default measurement budget per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Default warm-up budget per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Drives per-iteration timing inside a benchmark closure.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Run `f` repeatedly until the measurement budget is consumed,
    /// recording total iterations and wall time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up (untimed).
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(f());
        }
        // Measurement: batches of doubling size to amortize clock reads.
        let mut batch = 1u64;
        let start = Instant::now();
        loop {
            for _ in 0..batch {
                black_box(f());
            }
            self.iters_done += batch;
            self.elapsed = start.elapsed();
            if self.elapsed >= self.budget {
                break;
            }
            batch = batch.saturating_mul(2).min(1 << 20);
        }
    }

    fn report(&self, label: &str) {
        if self.iters_done == 0 {
            println!("bench {label:<50} (no iterations)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() as f64 / self.iters_done as f64;
        println!(
            "bench {label:<50} {:>12.1} ns/iter ({} iters)",
            per_iter, self.iters_done
        );
    }
}

/// Identifier for one benchmark within a group: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark label — accepts `&str`, `String` and
/// [`BenchmarkId`] so `bench_function` mirrors criterion's flexibility.
pub trait IntoBenchmarkId {
    /// The label text.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            budget: self.budget,
        };
        f(&mut b);
        b.report(&label);
        self
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            budget: self.budget,
        };
        f(&mut b, input);
        b.report(&label);
        self
    }

    /// Accepted for API compatibility (sampling is time-budgeted here).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Adjust this group's measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    /// Finish the group (prints a trailing separator).
    pub fn finish(self) {
        println!();
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    budget: Option<Duration>,
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let budget = self.budget.unwrap_or(MEASURE_BUDGET);
        BenchmarkGroup {
            name: name.into(),
            budget,
            _criterion: self,
        }
    }

    /// Benchmark a standalone closure.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            budget: self.budget.unwrap_or(MEASURE_BUDGET),
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Set the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.budget = Some(d);
        self
    }

    /// Accepted for API compatibility.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
