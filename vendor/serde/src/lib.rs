//! Minimal, dependency-free stand-in for `serde` (+`serde_derive`).
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of serde it uses: `#[derive(Serialize, Deserialize)]` on
//! plain structs and unit enums, the `#[serde(from = "T", into = "T")]`
//! container attribute, and JSON round-trips via the sibling vendored
//! `serde_json`. Instead of upstream's visitor machinery, both traits go
//! through an owned [`Value`] tree — ample for persisting statistics and
//! reports, which is all this workspace needs.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// An owned, self-describing data tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also encodes `None` and non-finite floats).
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (covers every integer type used in the workspace).
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Finite float.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Array(Vec<Value>),
    /// Map with string keys, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialize into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialize from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError::msg(format!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self as u64 <= i64::MAX as u64 {
                    Value::Int(*self as i64)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) if *i >= 0 => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(DeError::msg(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

ser_de_uint!(u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::msg(format!("expected float, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! ser_de_tuple {
    ($(($($t:ident . $idx:tt),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            {
                                let slot = it.next().ok_or_else(|| {
                                    DeError::msg("tuple: too few elements")
                                })?;
                                $t::from_value(slot)?
                            },
                        )+);
                        if it.next().is_some() {
                            return Err(DeError::msg("tuple: too many elements"));
                        }
                        Ok(out)
                    }
                    other => Err(DeError::msg(format!("expected array, got {other:?}"))),
                }
            }
        }
    )*};
}

ser_de_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

impl<K: ToString + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::msg(format!("expected array of length {N}, got {n}")))
    }
}
