//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of the `rand` API it actually uses: [`SeedableRng`],
//! [`rngs::StdRng`] and the [`RngExt`] extension trait with
//! `random_range` / `random_bool`. Only determinism matters for this
//! workspace (every experiment is replayed from explicit seeds); the
//! streams are *not* bit-compatible with upstream `rand`.

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of an RNG from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded to a full seed via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used to expand `u64` seeds and as the seeding PRNG.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace-standard deterministic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut buf = [0u8; 8];
                buf.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(buf);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }
}

/// Types that can be sampled uniformly from a range by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `0..span` (`span >= 1`), bias-free via rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    if span == 1 {
        return 0;
    }
    // Largest `zone` such that `zone + 1` is a multiple of `span`.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return x % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for ::core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for ::core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as $u as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

impl SampleRange<f64> for ::core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for ::core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + u * (self.end - self.start)
    }
}

/// Extension methods on any [`RngCore`] (the subset of `rand::Rng` used here).
pub trait RngExt: RngCore {
    /// Uniform value in `range` (half-open or inclusive).
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }

    /// Uniform value of a primitive type.
    fn random<T: Standard>(&mut self) -> T {
        T::random_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias so `rand::Rng` bounds also resolve against this shim.
pub use RngExt as Rng;

/// Types drawable uniformly over their whole domain by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! int_standard {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random_range(0..u64::MAX), b.random_range(0..u64::MAX));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(-5i64..7);
            assert!((-5..7).contains(&v));
            let u = rng.random_range(3usize..=9);
            assert!((3..=9).contains(&u));
            let f = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
    }
}
