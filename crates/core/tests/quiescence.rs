//! Quiescence equivalence: ingest that ends at the same data must be
//! invisible to the whole pipeline.
//!
//! Two scenarios, each compared against a fresh static database with
//! identical contents, across the executor matrix threads {1,4} ×
//! columnar {off,on}:
//!
//! * **Zero-row ingest** — an empty append bumps the [`DataVersion`] but
//!   changes nothing else; incremental ANALYZE must reuse or tail-merge
//!   to bit-identical statistics, and every downstream artifact (plan
//!   fingerprints per round, estimates, validated costs, Γ, the chosen
//!   plan, the executed row sets) must be bit-identical.
//! * **Arbitrary appends** — a database grown in batches through the
//!   ingest API, re-ANALYZEd incrementally after every batch, must be
//!   indistinguishable from one bulk-loaded with the final contents.
//!
//! Version stamps themselves (`DataVersion`, `TableStats::as_of`, Γ's
//! observation stamps) are *expected* to differ — they record history,
//! not state. Everything derived from the data may not.

use std::sync::Arc;

use reopt_common::{ColId, RelSet, TableId};
use reopt_core::ReoptEngine;
use reopt_executor::{ExecOpts, Executor};
use reopt_optimizer::CardOverrides;
use reopt_plan::query::ColRef;
use reopt_plan::{Predicate, Query, QueryBuilder};
use reopt_sampling::{SampleConfig, SampleStore};
use reopt_stats::{analyze_incremental, AnalyzeOpts, DatabaseStats};
use reopt_storage::{Column, ColumnDef, Database, LogicalType, Table, TableSchema, Value};

const TABLES: usize = 4;
const VALUES: i64 = 40;
const ROWS_PER_VALUE: usize = 8;

/// Column data for values `lo..hi`, each repeated `ROWS_PER_VALUE` times —
/// the layout both bulk load and append-growth must converge to.
fn column_data(lo: i64, hi: i64) -> Vec<i64> {
    let mut data = Vec::new();
    for v in lo..hi {
        data.extend(std::iter::repeat_n(v, ROWS_PER_VALUE));
    }
    data
}

/// A `TABLES`-chain OTT-style database holding values `0..hi` per table.
fn ott_db(hi: i64) -> Database {
    let mut db = Database::new();
    for t in 0..TABLES {
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("a", LogicalType::Int),
                ColumnDef::new("b", LogicalType::Int),
            ])?;
            let data = column_data(0, hi);
            let mut tbl = Table::new(
                id,
                format!("e{t}"),
                schema,
                vec![
                    Column::from_i64(LogicalType::Int, data.clone()),
                    Column::from_i64(LogicalType::Int, data),
                ],
            )?;
            tbl.create_index(ColId::new(0))?;
            tbl.create_index(ColId::new(1))?;
            Ok(tbl)
        })
        .unwrap();
    }
    db
}

fn ott_query(consts: &[i64]) -> Query {
    let mut qb = QueryBuilder::new();
    let rels: Vec<_> = (0..TABLES)
        .map(|i| qb.add_relation(TableId::from(i)))
        .collect();
    for (i, &r) in rels.iter().enumerate() {
        qb.add_predicate(Predicate::eq(r, ColId::new(0), consts[i]));
    }
    for w in rels.windows(2) {
        qb.add_join(
            ColRef::new(w[0], ColId::new(1)),
            ColRef::new(w[1], ColId::new(1)),
        );
    }
    qb.build()
}

/// Γ as comparable content: `(set, rows, exact)` in set order, stamps
/// stripped (they legitimately differ across histories).
fn gamma_entries(g: &CardOverrides) -> Vec<(RelSet, f64, bool)> {
    let mut v: Vec<_> = g.iter().map(|(s, r)| (s, r, g.is_exact(s))).collect();
    v.sort_by_key(|&(s, _, _)| s);
    v
}

fn engine_over(db: Arc<Database>, stats: DatabaseStats, threads: usize) -> ReoptEngine {
    let samples = Arc::new(SampleStore::build(&db, SampleConfig::default()).expect("sample build"));
    ReoptEngine::new(db, Arc::new(stats), samples).with_validation_threads(threads)
}

/// The whole-pipeline equivalence assertion: identical re-optimization
/// trajectory, identical Γ content, identical chosen plan, identical
/// executed rows.
fn assert_pipeline_equivalent(
    fresh: &ReoptEngine,
    grown: &ReoptEngine,
    q: &Query,
    threads: usize,
    columnar: bool,
) {
    let label = format!("threads={threads} columnar={columnar}");
    let a = fresh.reoptimize(q).expect("fresh reopt");
    let b = grown.reoptimize(q).expect("grown reopt");
    assert_eq!(a.num_rounds(), b.num_rounds(), "{label}: rounds diverged");
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        let round = ra.round;
        assert_eq!(
            ra.plan.fingerprint(),
            rb.plan.fingerprint(),
            "{label}: round {round} plan fingerprint"
        );
        assert_eq!(ra.est_rows, rb.est_rows, "{label}: round {round} est_rows");
        assert_eq!(ra.est_cost, rb.est_cost, "{label}: round {round} est_cost");
        assert_eq!(
            ra.validated_cost, rb.validated_cost,
            "{label}: round {round} validated cost"
        );
        assert_eq!(
            ra.gamma_new_entries, rb.gamma_new_entries,
            "{label}: round {round} gamma growth"
        );
    }
    assert_eq!(a.converged, b.converged, "{label}: convergence");
    assert_eq!(
        a.final_plan.fingerprint(),
        b.final_plan.fingerprint(),
        "{label}: chosen plan"
    );
    assert_eq!(
        gamma_entries(&a.gamma),
        gamma_entries(&b.gamma),
        "{label}: final Γ content"
    );

    let opts = ExecOpts {
        threads,
        columnar: Some(columnar),
        ..Default::default()
    };
    let oa = Executor::with_opts(fresh.db(), opts.clone())
        .run(q, &a.final_plan)
        .expect("fresh exec");
    let ob = Executor::with_opts(grown.db(), opts)
        .run(q, &b.final_plan)
        .expect("grown exec");
    assert_eq!(oa.join_rows, ob.join_rows, "{label}: executed join rows");
    match (&oa.agg, &ob.agg) {
        (None, None) => {}
        (Some(x), Some(y)) => assert_eq!(x, y, "{label}: aggregate output"),
        _ => panic!("{label}: aggregate presence diverged"),
    }
}

#[test]
fn zero_row_ingest_is_invisible_to_the_whole_pipeline() {
    let opts = AnalyzeOpts::default();
    let fresh_db = Arc::new(ott_db(VALUES));
    let fresh_stats = reopt_stats::analyze_database(&fresh_db, &opts).unwrap();

    // Same contents, but the version clock has moved: one empty append
    // per table, each re-ANALYZEd incrementally.
    let mut grown = Database::clone(&fresh_db);
    let mut grown_stats = fresh_stats.clone();
    for t in 0..TABLES {
        grown.append_rows(TableId::from(t), &[]).unwrap();
        let inc = analyze_incremental(&grown, &grown_stats, &opts).unwrap();
        assert_eq!(
            inc.tables_rescanned, 0,
            "zero-row ingest must never trigger a rescan"
        );
        grown_stats = inc.stats;
    }
    assert!(grown.data_version() > fresh_db.data_version());
    let grown_db = Arc::new(grown);

    let q = ott_query(&[0, 0, 0, 1]);
    for threads in [1usize, 4] {
        let fresh = engine_over(Arc::clone(&fresh_db), fresh_stats.clone(), threads);
        let grown = engine_over(Arc::clone(&grown_db), grown_stats.clone(), threads);
        for columnar in [false, true] {
            assert_pipeline_equivalent(&fresh, &grown, &q, threads, columnar);
        }
    }
}

#[test]
fn append_grown_database_matches_bulk_loaded_equivalent() {
    let opts = AnalyzeOpts::default();

    // Bulk-loaded reference with the final contents.
    let fresh_db = Arc::new(ott_db(VALUES));
    let fresh_stats = reopt_stats::analyze_database(&fresh_db, &opts).unwrap();

    // Grown copy: start at 25 of the 40 values, then append the rest in
    // uneven batches, incrementally re-ANALYZing after each batch.
    let mut grown = ott_db(25);
    let mut grown_stats = reopt_stats::analyze_database(&grown, &opts).unwrap();
    for (lo, hi) in [(25i64, 31i64), (31, 32), (32, 40)] {
        for t in 0..TABLES {
            let rows: Vec<Vec<Value>> = column_data(lo, hi)
                .into_iter()
                .map(|v| vec![Value::Int(v), Value::Int(v)])
                .collect();
            grown.append_rows(TableId::from(t), &rows).unwrap();
        }
        let inc = analyze_incremental(&grown, &grown_stats, &opts).unwrap();
        assert_eq!(inc.tables_merged, TABLES, "appends must tail-merge");
        assert_eq!(inc.tables_rescanned, 0, "appends must not rescan");
        grown_stats = inc.stats;
    }
    let grown_db = Arc::new(grown);
    for t in 0..TABLES {
        let id = TableId::from(t);
        assert_eq!(
            grown_db.table(id).unwrap().row_count(),
            fresh_db.table(id).unwrap().row_count(),
        );
    }

    let q = ott_query(&[0, 0, 0, 1]);
    for threads in [1usize, 4] {
        let fresh = engine_over(Arc::clone(&fresh_db), fresh_stats.clone(), threads);
        let grown = engine_over(Arc::clone(&grown_db), grown_stats.clone(), threads);
        for columnar in [false, true] {
            assert_pipeline_equivalent(&fresh, &grown, &q, threads, columnar);
        }
    }
}
