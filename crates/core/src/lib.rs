//! The paper's contribution: **sampling-based query re-optimization**
//! (Algorithm 1 of Wu, Naughton & Singh, SIGMOD 2016).
//!
//! Given an [`Optimizer`](reopt_optimizer::Optimizer) and a
//! [`SampleStore`](reopt_sampling::SampleStore), the
//! [`reopt::ReOptimizer`] repeatedly asks the optimizer for a
//! plan, dry-runs the plan's join subtrees over the samples, feeds the
//! validated cardinalities (Γ) back, and stops when the plan no longer
//! changes. [`report::ReoptReport`] captures the full trace —
//! enough to regenerate every re-optimization figure of the paper and to
//! machine-check Theorems 1, 2 and 5 on real runs.

pub mod engine;
pub mod midquery;
pub mod multi_seed;
pub mod reopt;
pub mod report;

pub use engine::ReoptEngine;
pub use midquery::{execute_mid_query, MidQueryOpts, MidQueryReport, MidQueryRun, MidQueryStats};
pub use multi_seed::{run_multi_seed, run_multi_seed_parallel, MultiSeedReport};
pub use reopt::{ExecutedReopt, ReOptConfig, ReOptimizer};
pub use report::{ReoptReport, ReoptSummary, RoundReport};
