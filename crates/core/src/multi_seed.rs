//! Multi-seed re-optimization — the paper's first §7 future-work item:
//!
//! > "rather than just returning one plan, the optimizer could return
//! > several candidates and let the re-optimization procedure work on each
//! > of them. This might make up for the potentially bad situation … that
//! > it may start with a bad seed plan."
//!
//! [`run_multi_seed`] runs Algorithm 1 once per seed optimizer
//! configuration (e.g. bushy + left-deep, or several cost-unit vectors),
//! **sharing Γ across runs**: validations from one seed's trajectory are
//! visible to the next, so later runs start with more of the space
//! validated and typically converge faster. The final answer is the
//! cheapest converged plan under the merged Γ.

use reopt_common::{Error, Result, Stopwatch};
use reopt_optimizer::{CardOverrides, Optimizer};
use reopt_plan::{PhysicalPlan, Query};
use reopt_sampling::SampleStore;

use crate::reopt::{IncrementalCaches, ReOptConfig};
use crate::report::RoundReport;
use reopt_plan::transform::{classify_transformation, is_covered_by};
use reopt_plan::JoinTree;
use std::time::Duration;

/// Outcome of a multi-seed run.
#[derive(Debug, Clone)]
pub struct MultiSeedReport {
    /// Index (into the seeds slice) of the winning run.
    pub winner: usize,
    /// The chosen plan.
    pub final_plan: PhysicalPlan,
    /// Cost of the chosen plan under the merged Γ.
    pub final_cost: f64,
    /// Rounds used by each seed's loop.
    pub rounds_per_seed: Vec<usize>,
    /// The merged Γ across all runs.
    pub gamma: CardOverrides,
    /// Total wall time.
    pub elapsed: Duration,
}

/// Run Algorithm 1 from several seed optimizers, sharing Γ, and return the
/// best final plan under the merged statistics.
pub fn run_multi_seed(
    seeds: &[&Optimizer<'_>],
    samples: &SampleStore,
    query: &Query,
    config: &ReOptConfig,
) -> Result<MultiSeedReport> {
    if seeds.is_empty() {
        return Err(Error::invalid("multi-seed re-optimization needs ≥1 seed"));
    }
    let start = Stopwatch::start();
    let mut gamma = CardOverrides::new();
    let mut finals: Vec<PhysicalPlan> = Vec::with_capacity(seeds.len());
    let mut rounds_per_seed = Vec::with_capacity(seeds.len());
    // The sample dry-run cache depends only on (query, samples), so it is
    // shared across *all* seeds — later seeds validate mostly from cache,
    // the same effect the shared Γ has on their round counts.
    let mut caches = IncrementalCaches::new(config.incremental);

    for optimizer in seeds {
        // Algorithm 1 with a *pre-seeded* Γ (the merge of everything
        // validated so far across seeds). The DP memo is bound to one
        // optimizer configuration, so each seed starts a fresh one.
        caches.reset_memo();
        let rounds = seed_loop(
            optimizer,
            samples,
            query,
            config,
            start,
            &mut gamma,
            &mut caches,
        )?;
        rounds_per_seed.push(rounds.len());
        let last = rounds
            .last()
            .ok_or_else(|| Error::internal("seed_loop returned zero rounds"))?;
        finals.push(last.plan.clone());
    }

    pick_winner(seeds, query, finals, rounds_per_seed, gamma, start)
}

/// Run Algorithm 1 once per seed, **one scoped thread per seed** — the
/// fan-out regime for when cores outnumber seeds. Unlike
/// [`run_multi_seed`], seeds cannot see each other's Γ mid-flight
/// (cross-seed Γ sharing is inherently sequential): each runs from an
/// empty Γ with private caches, the per-seed Γs are merged in seed order
/// afterwards, and the winner is judged under the merged Γ exactly like
/// the sequential tournament. With `time_budget: None` (the default)
/// every seed's trajectory depends only on its own inputs, so the outcome
/// is deterministic and independent of thread interleaving; a set budget
/// is shared wall-clock, and which round a seed's elapsed check trips on
/// then depends on scheduling — exactly as in the sequential tournament,
/// where later seeds inherit whatever time earlier ones left. The trade
/// is wall-clock for the sequential version's warm-start acceleration of
/// later seeds.
///
/// Each seed's *dry runs* additionally exploit
/// [`ValidationOpts::threads`], so the two levels of parallelism compose.
pub fn run_multi_seed_parallel(
    seeds: &[&Optimizer<'_>],
    samples: &SampleStore,
    query: &Query,
    config: &ReOptConfig,
) -> Result<MultiSeedReport> {
    if seeds.is_empty() {
        return Err(Error::invalid("multi-seed re-optimization needs ≥1 seed"));
    }
    let start = Stopwatch::start();
    let per_seed: Vec<(Vec<RoundReport>, CardOverrides)> = std::thread::scope(|s| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|optimizer| {
                s.spawn(move || -> Result<(Vec<RoundReport>, CardOverrides)> {
                    let mut gamma = CardOverrides::new();
                    let mut caches = IncrementalCaches::new(config.incremental);
                    let rounds = seed_loop(
                        optimizer,
                        samples,
                        query,
                        config,
                        start,
                        &mut gamma,
                        &mut caches,
                    )?;
                    Ok((rounds, gamma))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| Error::internal("multi-seed worker panicked"))?
            })
            .collect::<Result<Vec<_>>>()
    })?;

    // Merge Γ in seed order. Validation is deterministic, so seeds that
    // validated the same set agree on its value; the fixed order still
    // pins the iteration-order-sensitive internals for reproducibility.
    let mut gamma = CardOverrides::new();
    let mut finals = Vec::with_capacity(seeds.len());
    let mut rounds_per_seed = Vec::with_capacity(seeds.len());
    for (rounds, seed_gamma) in per_seed {
        gamma.merge(&seed_gamma);
        rounds_per_seed.push(rounds.len());
        let last = rounds
            .last()
            .ok_or_else(|| Error::internal("seed_loop returned zero rounds"))?;
        finals.push(last.plan.clone());
    }
    pick_winner(seeds, query, finals, rounds_per_seed, gamma, start)
}

/// One seed's Algorithm 1 loop against a caller-owned Γ and cache set —
/// the body shared by the sequential and parallel tournaments.
fn seed_loop(
    optimizer: &Optimizer<'_>,
    samples: &SampleStore,
    query: &Query,
    config: &ReOptConfig,
    start: Stopwatch,
    gamma: &mut CardOverrides,
    caches: &mut IncrementalCaches,
) -> Result<Vec<RoundReport>> {
    let mut rounds: Vec<RoundReport> = Vec::new();
    let mut prev_plan: Option<PhysicalPlan> = None;
    let mut prev_trees: Vec<JoinTree> = Vec::new();
    loop {
        // Same contract as ReOptimizer::run: a blown budget must not
        // buy another optimize+validate cycle. Every seed still gets
        // one round — each needs a final plan to enter the tournament.
        if !rounds.is_empty() {
            if let Some(budget) = config.time_budget {
                if start.elapsed() > budget {
                    break;
                }
            }
        }
        let round = rounds.len() + 1;
        let t0 = Stopwatch::start();
        let planned = caches.plan(optimizer, query, gamma)?;
        let optimize_time = t0.elapsed();
        let tree = planned.plan.logical_tree();
        let same = prev_plan
            .as_ref()
            .is_some_and(|p| p.same_structure(&planned.plan));
        let transform = prev_plan
            .as_ref()
            .map(|p| classify_transformation(&p.logical_tree(), &tree));
        let covered = {
            let refs: Vec<&JoinTree> = prev_trees.iter().collect();
            is_covered_by(&tree, &refs)
        };
        if same {
            let (_, vcost) = optimizer.cost_plan(query, &planned.plan, gamma)?;
            rounds.push(RoundReport {
                round,
                est_rows: planned.plan.est_rows(),
                est_cost: planned.plan.est_cost(),
                plan: planned.plan,
                transform,
                covered_by_previous: covered,
                gamma_new_entries: 0,
                validated_cost: vcost,
                optimize_time,
                validation_time: Duration::ZERO,
                dp_subsets_reused: planned.search.subsets_reused,
                dp_subsets_replanned: planned.search.subsets_replanned,
                sample_cache_hits: 0,
                sample_subtrees_executed: 0,
            });
            break;
        }
        let v = caches.validate(query, &planned.plan, samples, &config.validation)?;
        caches.note_delta(gamma, &v.delta);
        let fresh = gamma.merge(&v.delta);
        let (_, vcost) = optimizer.cost_plan(query, &planned.plan, gamma)?;
        rounds.push(RoundReport {
            round,
            est_rows: planned.plan.est_rows(),
            est_cost: planned.plan.est_cost(),
            plan: planned.plan.clone(),
            transform,
            covered_by_previous: covered,
            gamma_new_entries: fresh,
            validated_cost: vcost,
            optimize_time,
            validation_time: v.elapsed,
            dp_subsets_reused: planned.search.subsets_reused,
            dp_subsets_replanned: planned.search.subsets_replanned,
            sample_cache_hits: v.cache_hits,
            sample_subtrees_executed: v.subtrees_executed,
        });
        prev_trees.push(tree);
        prev_plan = Some(planned.plan);
        if rounds.len() >= config.max_rounds {
            break;
        }
    }
    Ok(rounds)
}

/// Pick the cheapest final plan under the merged Γ, costed by its own
/// seed optimizer (each seed may use different cost units; the winner
/// is judged by its owner's model — a tie-break documented choice).
fn pick_winner(
    seeds: &[&Optimizer<'_>],
    query: &Query,
    finals: Vec<PhysicalPlan>,
    rounds_per_seed: Vec<usize>,
    gamma: CardOverrides,
    start: Stopwatch,
) -> Result<MultiSeedReport> {
    let mut winner = 0usize;
    let mut best_cost = f64::INFINITY;
    for (i, (plan, optimizer)) in finals.iter().zip(seeds).enumerate() {
        let (_, cost) = optimizer.cost_plan(query, plan, &gamma)?;
        if cost < best_cost {
            best_cost = cost;
            winner = i;
        }
    }
    Ok(MultiSeedReport {
        winner,
        final_plan: finals[winner].clone(),
        final_cost: best_cost,
        rounds_per_seed,
        gamma,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_common::{ColId, TableId};
    use reopt_optimizer::OptimizerConfig;
    use reopt_plan::query::ColRef;
    use reopt_plan::{Predicate, QueryBuilder};
    use reopt_sampling::SampleConfig;
    use reopt_stats::{analyze_database, AnalyzeOpts};
    use reopt_storage::{Column, ColumnDef, Database, LogicalType, Table, TableSchema};

    fn ott_db(k: usize, vals: i64, per: usize) -> Database {
        let mut db = Database::new();
        for t in 0..k {
            db.add_table_with(|id| {
                let schema = TableSchema::new(vec![
                    ColumnDef::new("a", LogicalType::Int),
                    ColumnDef::new("b", LogicalType::Int),
                ])?;
                let mut data = Vec::new();
                for v in 0..vals {
                    data.extend(std::iter::repeat_n(v, per));
                }
                let mut tbl = Table::new(
                    id,
                    format!("m{t}"),
                    schema,
                    vec![
                        Column::from_i64(LogicalType::Int, data.clone()),
                        Column::from_i64(LogicalType::Int, data),
                    ],
                )?;
                tbl.create_index(ColId::new(0))?;
                tbl.create_index(ColId::new(1))?;
                Ok(tbl)
            })
            .unwrap();
        }
        db
    }

    fn ott_query(k: usize, consts: &[i64]) -> reopt_plan::Query {
        let mut qb = QueryBuilder::new();
        let rels: Vec<_> = (0..k).map(|i| qb.add_relation(TableId::from(i))).collect();
        for (i, &r) in rels.iter().enumerate() {
            qb.add_predicate(Predicate::eq(r, ColId::new(0), consts[i]));
        }
        for w in rels.windows(2) {
            qb.add_join(
                ColRef::new(w[0], ColId::new(1)),
                ColRef::new(w[1], ColId::new(1)),
            );
        }
        qb.build()
    }

    #[test]
    fn multi_seed_beats_or_matches_each_seed() {
        let db = ott_db(5, 40, 10);
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let samples = SampleStore::build(
            &db,
            SampleConfig {
                ratio: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        let bushy = Optimizer::new(&db, &stats);
        let left_deep = Optimizer::with_config(
            &db,
            &stats,
            OptimizerConfig {
                left_deep_only: true,
                ..OptimizerConfig::postgres_like()
            },
        );
        let q = ott_query(5, &[0, 0, 1, 0, 0]);
        let config = ReOptConfig::default();
        let report = run_multi_seed(&[&bushy, &left_deep], &samples, &q, &config).unwrap();
        assert!(report.winner < 2);
        assert_eq!(report.rounds_per_seed.len(), 2);
        // The winning cost can't exceed what a single bushy run achieves.
        let single = crate::reopt::ReOptimizer::new(&bushy, &samples)
            .run(&q)
            .unwrap();
        let (_, single_cost) = bushy
            .cost_plan(&q, &single.final_plan, &report.gamma)
            .unwrap();
        assert!(report.final_cost <= single_cost * (1.0 + 1e-9));
    }

    #[test]
    fn shared_gamma_accelerates_later_seeds() {
        let db = ott_db(5, 40, 10);
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let samples = SampleStore::build(
            &db,
            SampleConfig {
                ratio: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        let opt = Optimizer::new(&db, &stats);
        let q = ott_query(5, &[0, 0, 0, 0, 1]);
        let config = ReOptConfig::default();
        // Same optimizer twice: the second run sees the first run's Γ and
        // must converge in at most as many rounds.
        let report = run_multi_seed(&[&opt, &opt], &samples, &q, &config).unwrap();
        assert!(
            report.rounds_per_seed[1] <= report.rounds_per_seed[0],
            "{:?}",
            report.rounds_per_seed
        );
        // Second run should converge almost immediately (plan + confirm).
        assert!(report.rounds_per_seed[1] <= 2);
    }

    #[test]
    fn incremental_multi_seed_matches_from_scratch() {
        let db = ott_db(5, 40, 10);
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let samples = SampleStore::build(
            &db,
            SampleConfig {
                ratio: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        let bushy = Optimizer::new(&db, &stats);
        let left_deep = Optimizer::with_config(
            &db,
            &stats,
            OptimizerConfig {
                left_deep_only: true,
                ..OptimizerConfig::postgres_like()
            },
        );
        let q = ott_query(5, &[0, 0, 0, 0, 1]);
        let inc = run_multi_seed(
            &[&bushy, &left_deep],
            &samples,
            &q,
            &ReOptConfig {
                incremental: true,
                ..Default::default()
            },
        )
        .unwrap();
        let scratch = run_multi_seed(
            &[&bushy, &left_deep],
            &samples,
            &q,
            &ReOptConfig {
                incremental: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(inc.winner, scratch.winner);
        assert_eq!(inc.rounds_per_seed, scratch.rounds_per_seed);
        assert!(inc.final_plan.same_structure(&scratch.final_plan));
        assert_eq!(inc.gamma.len(), scratch.gamma.len());
        for (set, rows) in inc.gamma.iter() {
            assert_eq!(scratch.gamma.get(set), Some(rows), "Γ({set})");
        }
    }

    #[test]
    fn parallel_multi_seed_is_deterministic_and_sound() {
        let db = ott_db(5, 40, 10);
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let samples = SampleStore::build(
            &db,
            SampleConfig {
                ratio: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        let bushy = Optimizer::new(&db, &stats);
        let left_deep = Optimizer::with_config(
            &db,
            &stats,
            OptimizerConfig {
                left_deep_only: true,
                ..OptimizerConfig::postgres_like()
            },
        );
        let q = ott_query(5, &[0, 0, 1, 0, 0]);
        let config = ReOptConfig::default();
        let seeds: [&Optimizer<'_>; 2] = [&bushy, &left_deep];

        // Determinism: two parallel fan-outs land in exactly the same
        // place — seed trajectories are interleaving-independent.
        let a = run_multi_seed_parallel(&seeds, &samples, &q, &config).unwrap();
        let b = run_multi_seed_parallel(&seeds, &samples, &q, &config).unwrap();
        assert_eq!(a.winner, b.winner);
        assert_eq!(a.rounds_per_seed, b.rounds_per_seed);
        assert!(a.final_plan.same_structure(&b.final_plan));
        assert_eq!(a.gamma.len(), b.gamma.len());
        for (set, rows) in a.gamma.iter() {
            assert_eq!(b.gamma.get(set), Some(rows), "Γ({set})");
        }

        // Soundness: every seed's trajectory equals a solo cold run of
        // that seed (no mid-flight Γ sharing by construction), so each
        // per-seed round count matches the solo run's.
        for (i, opt) in seeds.iter().enumerate() {
            let solo = crate::reopt::ReOptimizer::with_config(opt, &samples, config.clone())
                .run(&q)
                .unwrap();
            assert_eq!(
                a.rounds_per_seed[i],
                solo.num_rounds(),
                "seed {i} diverged from its solo run"
            );
        }
    }

    #[test]
    fn empty_seed_list_rejected() {
        let db = ott_db(2, 10, 4);
        let samples = SampleStore::build(&db, SampleConfig::default()).unwrap();
        let q = ott_query(2, &[0, 0]);
        let r = run_multi_seed(&[], &samples, &q, &ReOptConfig::default());
        assert!(r.is_err());
    }
}
