//! An owned, `Arc`-shareable re-optimization engine.
//!
//! [`crate::ReOptimizer`] and [`Optimizer`] are deliberately borrow-based
//! — cheap to construct, zero setup cost per query — which is perfect for
//! experiments but awkward for a long-lived server: a thread can't park a
//! `ReOptimizer<'a>` inside an `Arc` without dragging `'a` through every
//! API. [`ReoptEngine`] closes that gap. It *owns* the database, its
//! statistics and the sample store behind `Arc`s, plus the optimizer and
//! re-optimizer configurations, and materializes the short-lived borrowing
//! optimizers internally on each call. The engine is `Send + Sync`
//! (everything inside is immutable shared data), so a query service can
//! hold one in an `Arc` and serve any number of sessions from it.

use std::sync::Arc;

use crate::reopt::{ReOptConfig, ReOptimizer};
use crate::report::ReoptReport;
use reopt_common::Result;
use reopt_optimizer::{Optimizer, OptimizerConfig};
use reopt_plan::Query;
use reopt_sampling::{SampleConfig, SampleStore, SharedSampleRunCache};
use reopt_stats::{analyze_database, AnalyzeOpts, DatabaseStats};
use reopt_storage::Database;

/// Owned re-optimization pipeline: database + statistics + samples +
/// configuration, usable behind an `Arc` from many threads at once.
#[derive(Debug, Clone)]
pub struct ReoptEngine {
    db: Arc<Database>,
    stats: Arc<DatabaseStats>,
    samples: Arc<SampleStore>,
    optimizer_config: OptimizerConfig,
    reopt_config: ReOptConfig,
    /// The ANALYZE knobs the statistics were (re)built with — retained so
    /// the serving layer's incremental re-ANALYZE after an ingest uses the
    /// exact same derivation.
    analyze: AnalyzeOpts,
}

impl ReoptEngine {
    /// Engine over pre-built statistics and samples, with default
    /// (PostgreSQL-like optimizer, incremental re-optimization) configs.
    pub fn new(db: Arc<Database>, stats: Arc<DatabaseStats>, samples: Arc<SampleStore>) -> Self {
        Self::with_configs(
            db,
            stats,
            samples,
            OptimizerConfig::postgres_like(),
            ReOptConfig::default(),
        )
    }

    /// Engine with explicit optimizer and re-optimization configuration.
    pub fn with_configs(
        db: Arc<Database>,
        stats: Arc<DatabaseStats>,
        samples: Arc<SampleStore>,
        optimizer_config: OptimizerConfig,
        reopt_config: ReOptConfig,
    ) -> Self {
        ReoptEngine {
            db,
            stats,
            samples,
            optimizer_config,
            reopt_config,
            analyze: AnalyzeOpts::default(),
        }
    }

    /// Convenience bootstrap: ANALYZE the database and draw samples, then
    /// build the engine — the one-stop entry point for a serving layer
    /// that starts from raw tables.
    pub fn from_database(
        db: Arc<Database>,
        analyze: &AnalyzeOpts,
        sample: SampleConfig,
    ) -> Result<Self> {
        Self::from_database_with_configs(
            db,
            analyze,
            sample,
            OptimizerConfig::postgres_like(),
            ReOptConfig::default(),
        )
    }

    /// [`ReoptEngine::from_database`] with explicit optimizer and
    /// re-optimization configuration.
    pub fn from_database_with_configs(
        db: Arc<Database>,
        analyze: &AnalyzeOpts,
        sample: SampleConfig,
        optimizer_config: OptimizerConfig,
        reopt_config: ReOptConfig,
    ) -> Result<Self> {
        let stats = Arc::new(analyze_database(&db, analyze)?);
        let samples = Arc::new(SampleStore::build(&db, sample)?);
        let mut engine = Self::with_configs(db, stats, samples, optimizer_config, reopt_config);
        engine.analyze = analyze.clone();
        Ok(engine)
    }

    /// The database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The statistics the optimizer plans against.
    pub fn stats(&self) -> &Arc<DatabaseStats> {
        &self.stats
    }

    /// The sample store validations run against.
    pub fn samples(&self) -> &Arc<SampleStore> {
        &self.samples
    }

    /// The ANALYZE knobs this engine's statistics were built with.
    pub fn analyze_opts(&self) -> &AnalyzeOpts {
        &self.analyze
    }

    /// The database's [`reopt_storage::DataVersion`] this engine serves.
    pub fn data_version(&self) -> reopt_storage::DataVersion {
        self.db.data_version()
    }

    /// Rebuild the engine around new data, statistics and samples, keeping
    /// every configuration knob — the serving layer's refresh path after
    /// an ingest (cheap: the configs are plain structs, the data is
    /// `Arc`-shared).
    pub fn with_data(
        &self,
        db: Arc<Database>,
        stats: Arc<DatabaseStats>,
        samples: Arc<SampleStore>,
    ) -> Self {
        ReoptEngine {
            db,
            stats,
            samples,
            optimizer_config: self.optimizer_config.clone(),
            reopt_config: self.reopt_config.clone(),
            analyze: self.analyze.clone(),
        }
    }

    /// The re-optimization configuration.
    pub fn reopt_config(&self) -> &ReOptConfig {
        &self.reopt_config
    }

    /// Set the dry-run executor's worker-thread knob (`0` = available
    /// parallelism, `1` = serial) and return the engine. Dry runs are
    /// bit-identical at every setting, so this trades nothing but
    /// wall-clock — see
    /// [`ValidationOpts::threads`](reopt_sampling::ValidationOpts).
    pub fn with_validation_threads(mut self, threads: usize) -> Self {
        self.reopt_config.validation.threads = threads;
        self
    }

    /// Toggle mid-query re-optimization (see
    /// [`ReOptConfig::mid_query`](crate::ReOptConfig)) and return the
    /// engine.
    pub fn with_mid_query(mut self, on: bool) -> Self {
        self.reopt_config.mid_query = on;
        self
    }

    /// The optimizer configuration.
    pub fn optimizer_config(&self) -> &OptimizerConfig {
        &self.optimizer_config
    }

    /// Run Algorithm 1 on `query` with a run-private sample cache.
    pub fn reoptimize(&self, query: &Query) -> Result<ReoptReport> {
        self.with_reoptimizer(|re| re.run(query))
    }

    /// [`Self::reoptimize`] with spans recorded under `tracer` (see
    /// [`reopt_telemetry`]). A disabled tracer makes this identical to
    /// `reoptimize`; recording never changes any planning decision.
    pub fn reoptimize_traced(
        &self,
        query: &Query,
        tracer: &reopt_telemetry::Tracer,
    ) -> Result<ReoptReport> {
        self.with_reoptimizer(|re| re.run_traced(query, tracer))
    }

    /// Run Algorithm 1 on `query`, pooling sample dry-run work through
    /// `sample_cache` (see [`ReOptimizer::run_shared`]). The cache must
    /// have been used only with this engine's sample store and validation
    /// options.
    pub fn reoptimize_shared(
        &self,
        query: &Query,
        sample_cache: &SharedSampleRunCache,
    ) -> Result<ReoptReport> {
        self.with_reoptimizer(|re| re.run_shared(query, sample_cache))
    }

    /// [`Self::reoptimize_shared`] with spans recorded under `tracer`.
    pub fn reoptimize_shared_traced(
        &self,
        query: &Query,
        sample_cache: &SharedSampleRunCache,
        tracer: &reopt_telemetry::Tracer,
    ) -> Result<ReoptReport> {
        self.with_reoptimizer(|re| re.run_shared_traced(query, sample_cache, tracer))
    }

    /// Re-validate an already-chosen plan against this engine's (fresh)
    /// samples without running the re-optimization loop: one dry run
    /// yields Δ(plan), and the plan is re-costed under it. For a plan
    /// whose final Γ entries all came from its own subtrees — which holds
    /// for every plan Algorithm 1 returns — this reproduces
    /// [`ReoptReport::final_validated_cost`] exactly when the samples
    /// haven't moved, so the serving layer can compare the two costs to
    /// decide whether a surgically-evicted plan is still good.
    pub fn revalidate_plan(
        &self,
        query: &Query,
        plan: &reopt_plan::PhysicalPlan,
        tracer: &reopt_telemetry::Tracer,
    ) -> Result<f64> {
        let mut cache = reopt_sampling::SampleRunCache::new();
        self.revalidate_with_cache(query, plan, tracer, &mut cache)
    }

    /// [`Self::revalidate_plan`], pooling the dry run through the serving
    /// layer's shared sample-run cache — subtrees another session already
    /// validated against the current samples are replayed, not re-run.
    pub fn revalidate_plan_shared(
        &self,
        query: &Query,
        plan: &reopt_plan::PhysicalPlan,
        sample_cache: &SharedSampleRunCache,
        tracer: &reopt_telemetry::Tracer,
    ) -> Result<f64> {
        let mut handle = sample_cache.clone();
        self.revalidate_with_cache(query, plan, tracer, &mut handle)
    }

    fn revalidate_with_cache<C: reopt_sampling::ValidationCache>(
        &self,
        query: &Query,
        plan: &reopt_plan::PhysicalPlan,
        tracer: &reopt_telemetry::Tracer,
        cache: &mut C,
    ) -> Result<f64> {
        let mut opts = self.reopt_config.validation.clone();
        opts.tracer = tracer.clone();
        let v = reopt_sampling::validate_plan_cached(query, plan, &self.samples, &opts, cache)?;
        let optimizer =
            Optimizer::with_config(&self.db, &self.stats, self.optimizer_config.clone());
        let (_, cost) = optimizer.cost_plan(query, plan, &v.delta)?;
        Ok(cost)
    }

    /// Execute an already-chosen plan with the mid-query suspend → refine
    /// → replan → resume loop (see [`crate::midquery`]) — the serving
    /// layer's execute path for cached plans. Γ starts empty: replans draw
    /// on native statistics plus the exact cardinalities observed so far
    /// (the admitted plan itself already encodes the sampling loop's
    /// repairs). Result-equivalent to running `plan` straight through.
    pub fn execute_plan_mid_query(
        &self,
        query: &Query,
        plan: &reopt_plan::PhysicalPlan,
        exec_opts: reopt_executor::ExecOpts,
    ) -> Result<crate::midquery::MidQueryRun> {
        let optimizer =
            Optimizer::with_config(&self.db, &self.stats, self.optimizer_config.clone());
        crate::midquery::execute_mid_query(
            &self.db,
            &optimizer,
            query,
            plan,
            crate::midquery::MidQueryOpts {
                exec: exec_opts,
                max_suspensions: self.reopt_config.max_suspensions,
                replan_discrepancy: self.reopt_config.replan_discrepancy,
                ..crate::midquery::MidQueryOpts::new()
            },
        )
    }

    /// Materialize the borrowing optimizer + re-optimizer and hand them to
    /// `f`. Construction is a few clones of plain config structs — cheap
    /// relative to even one optimizer invocation.
    fn with_reoptimizer<T>(&self, f: impl FnOnce(&ReOptimizer<'_>) -> Result<T>) -> Result<T> {
        let optimizer =
            Optimizer::with_config(&self.db, &self.stats, self.optimizer_config.clone());
        let re = ReOptimizer::with_config(&optimizer, &self.samples, self.reopt_config.clone());
        f(&re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_common::{ColId, TableId};
    use reopt_plan::query::ColRef;
    use reopt_plan::{Predicate, QueryBuilder};
    use reopt_storage::{Column, ColumnDef, LogicalType, Table, TableSchema};

    fn ott_db(k: usize, vals: i64, per: usize) -> Database {
        let mut db = Database::new();
        for t in 0..k {
            db.add_table_with(|id| {
                let schema = TableSchema::new(vec![
                    ColumnDef::new("a", LogicalType::Int),
                    ColumnDef::new("b", LogicalType::Int),
                ])?;
                let mut data = Vec::new();
                for v in 0..vals {
                    data.extend(std::iter::repeat_n(v, per));
                }
                let mut tbl = Table::new(
                    id,
                    format!("e{t}"),
                    schema,
                    vec![
                        Column::from_i64(LogicalType::Int, data.clone()),
                        Column::from_i64(LogicalType::Int, data),
                    ],
                )?;
                tbl.create_index(ColId::new(0))?;
                tbl.create_index(ColId::new(1))?;
                Ok(tbl)
            })
            .unwrap();
        }
        db
    }

    fn ott_query(k: usize, consts: &[i64]) -> Query {
        let mut qb = QueryBuilder::new();
        let rels: Vec<_> = (0..k).map(|i| qb.add_relation(TableId::from(i))).collect();
        for (i, &r) in rels.iter().enumerate() {
            qb.add_predicate(Predicate::eq(r, ColId::new(0), consts[i]));
        }
        for w in rels.windows(2) {
            qb.add_join(
                ColRef::new(w[0], ColId::new(1)),
                ColRef::new(w[1], ColId::new(1)),
            );
        }
        qb.build()
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ReoptEngine>();
    }

    #[test]
    fn engine_matches_borrowing_reoptimizer() {
        let db = Arc::new(ott_db(4, 50, 20));
        let engine = ReoptEngine::from_database(
            db.clone(),
            &AnalyzeOpts::default(),
            SampleConfig::default(),
        )
        .unwrap();
        let q = ott_query(4, &[0, 0, 0, 1]);
        let from_engine = engine.reoptimize(&q).unwrap();

        let optimizer = Optimizer::new(&db, engine.stats());
        let re = ReOptimizer::new(&optimizer, engine.samples());
        let from_borrowed = re.run(&q).unwrap();
        assert_eq!(from_engine.num_rounds(), from_borrowed.num_rounds());
        assert!(from_engine
            .final_plan
            .same_structure(&from_borrowed.final_plan));
    }

    #[test]
    fn revalidation_reproduces_final_validated_cost_without_drift() {
        let db = Arc::new(ott_db(4, 50, 20));
        let engine =
            ReoptEngine::from_database(db, &AnalyzeOpts::default(), SampleConfig::default())
                .unwrap();
        let q = ott_query(4, &[0, 0, 0, 1]);
        let report = engine.reoptimize(&q).unwrap();
        let tracer = reopt_telemetry::Tracer::disabled();
        let cost = engine
            .revalidate_plan(&q, &report.final_plan, &tracer)
            .unwrap();
        assert!(
            (cost - report.final_validated_cost).abs()
                < 1e-6 * report.final_validated_cost.max(1.0),
            "revalidated {cost} vs loop {0}",
            report.final_validated_cost
        );
        // The shared-cache variant agrees and leaves entries behind.
        let shared = SharedSampleRunCache::new();
        let c2 = engine
            .revalidate_plan_shared(&q, &report.final_plan, &shared, &tracer)
            .unwrap();
        assert_eq!(c2, cost);
        assert!(shared.stats().entries > 0);
    }

    #[test]
    fn engine_runs_concurrently_from_many_threads() {
        let db = Arc::new(ott_db(4, 50, 20));
        let engine = Arc::new(
            ReoptEngine::from_database(db, &AnalyzeOpts::default(), SampleConfig::default())
                .unwrap(),
        );
        let shared = SharedSampleRunCache::new();
        let baseline = engine.reoptimize(&ott_query(4, &[0, 0, 0, 1])).unwrap();
        std::thread::scope(|s| {
            for i in 0..4 {
                let engine = Arc::clone(&engine);
                let shared = shared.clone();
                let baseline_plan = baseline.final_plan.clone();
                s.spawn(move || {
                    // Half the threads share the cache, half run private.
                    let q = ott_query(4, &[0, 0, 0, 1]);
                    let r = if i % 2 == 0 {
                        engine.reoptimize_shared(&q, &shared).unwrap()
                    } else {
                        engine.reoptimize(&q).unwrap()
                    };
                    assert!(r.final_plan.same_structure(&baseline_plan));
                });
            }
        });
        assert!(shared.stats().executed > 0);
    }
}
