//! Algorithm 1 — sampling-based query re-optimization.
//!
//! ```text
//! Γ ← ∅; P₀ ← null; i ← 1
//! loop:
//!     Pᵢ ← GetPlanFromOptimizer(Γ)
//!     if Pᵢ = Pᵢ₋₁: break
//!     Δᵢ ← GetCardinalityEstimatesBySampling(Pᵢ)
//!     Γ ← Γ ∪ Δᵢ
//!     i ← i + 1
//! return Pᵢ
//! ```
//!
//! The loop is guaranteed to terminate (Corollary 1): each non-terminal
//! round must add at least one previously unseen join to Γ, and the join
//! space is finite. [`ReOptConfig`] adds the practical stopping strategies
//! the paper discusses in §5.4 (round cap, time budget, best-plan-so-far
//! fallback), all of which are *off* by default so the textbook algorithm
//! runs unmodified.

use std::time::Duration;

use crate::report::{ReoptReport, RoundReport};
use reopt_common::{Error, RelSet, Result, Stopwatch};
use reopt_optimizer::{CardOverrides, Optimizer, PlanMemo};
use reopt_plan::transform::{classify_transformation, is_covered_by};
use reopt_plan::{JoinTree, PhysicalPlan, Query};
use reopt_sampling::{
    validate_plan, validate_plan_cached, SampleRunCache, SampleStore, SharedSampleRunCache,
    Validation, ValidationCache, ValidationOpts,
};
use reopt_telemetry::{names, Tracer};

/// Stopping strategy and validation knobs for the re-optimization loop.
#[derive(Debug, Clone)]
pub struct ReOptConfig {
    /// Hard cap on optimizer invocations (safety net; the paper observed
    /// fewer than 10 rounds for every tested query).
    pub max_rounds: usize,
    /// Optional wall-clock budget for the whole loop (§5.4's timeout
    /// strategy).
    pub time_budget: Option<Duration>,
    /// When the loop is stopped early (cap or budget), re-cost all plans
    /// generated so far under the final Γ and return the cheapest (§5.4's
    /// "best plan among the plans generated so far").
    pub pick_best_on_stop: bool,
    /// Sampling validation options.
    pub validation: ValidationOpts,
    /// Conservative acceptance (§7's second future-work item): only accept
    /// a sampling-validated cardinality into Γ when it disagrees with the
    /// optimizer's native estimate by at least this factor (in either
    /// direction). `None` (the default) reproduces the paper's
    /// "unconditionally accept" behaviour; `Some(2.0)` ignores corrections
    /// smaller than 2×, trading repair opportunities for robustness to
    /// sampling noise.
    pub min_discrepancy_factor: Option<f64>,
    /// Reuse work across rounds (on by default): the optimizer keeps its
    /// DP table in a [`PlanMemo`] and re-plans only the subsets whose
    /// cardinalities the latest Δ can affect, and plan validation replays
    /// sample dry-run subtrees from a [`SampleRunCache`] instead of
    /// re-executing them. Both caches are exact — the final plan and Γ are
    /// structurally identical to the from-scratch path (`incremental:
    /// false`, kept for A/B comparison and the `bench_incremental`
    /// harness).
    pub incremental: bool,
    /// Mid-query re-optimization (off by default): execution suspends at
    /// every materialization point (non-root join), folds the exact
    /// observed cardinalities into Γ, re-plans the remainder with the
    /// completed subtrees pinned as zero-cost leaves, and resumes —
    /// completed work is never re-executed (see [`crate::midquery`]).
    /// Result-equivalent to straight-through execution: only the plan that
    /// *finishes* the query can change, never the answer. Honored by
    /// [`ReOptimizer::execute`]/[`ReOptimizer::execute_with_opts`] and the
    /// serving layer's execute path.
    pub mid_query: bool,
    /// Safety cap on mid-query suspensions per query (the loop terminates
    /// on its own — every suspension checkpoints a new breaker — so this
    /// only guards against pathological plans; once reached, the current
    /// plan runs to completion unchanged).
    pub max_suspensions: usize,
    /// Mid-query replan gate: re-enter the optimizer only when a newly
    /// observed join cardinality disagrees with the current belief by at
    /// least this factor in either direction (or was never estimated at
    /// all). Observations always land in Γ as exact entries either way —
    /// the gate only skips DP invocations that could not change the plan
    /// in any interesting way, which is what keeps the knob's overhead
    /// negligible on well-estimated queries. `None` replans at every
    /// suspension (the exhaustive mode the conformance suite also
    /// exercises).
    pub replan_discrepancy: Option<f64>,
}

impl Default for ReOptConfig {
    fn default() -> Self {
        ReOptConfig {
            max_rounds: 32,
            time_budget: None,
            pick_best_on_stop: true,
            validation: ValidationOpts::default(),
            min_discrepancy_factor: None,
            incremental: true,
            mid_query: false,
            max_suspensions: 64,
            replan_discrepancy: Some(2.0),
        }
    }
}

impl ReOptConfig {
    /// Default configuration with the dry-run executor's thread knob set
    /// (`0` = available parallelism, `1` = serial). Sample dry-runs are
    /// bit-identical at every setting, so this only changes how fast the
    /// loop turns, never where it lands.
    pub fn with_threads(threads: usize) -> Self {
        let mut config = ReOptConfig::default();
        config.validation.threads = threads;
        config
    }

    /// Default configuration with the executor engine pinned: columnar
    /// (batch-at-a-time) when `true`, row-at-a-time when `false`. Both
    /// engines are bit-identical, so Δ, the plan trajectory, and final
    /// rows never depend on this knob — only wall-clock does. The default
    /// (`None`) follows [`reopt_executor::default_columnar`], i.e. the
    /// `REOPT_COLUMNAR` environment variable.
    pub fn with_columnar(columnar: bool) -> Self {
        let mut config = ReOptConfig::default();
        config.validation.columnar = Some(columnar);
        config
    }
}

/// The cross-round caches of one incremental run, owning the shared round
/// protocol (plan → validate → note Δ) so [`ReOptimizer::run`] and
/// [`crate::multi_seed::run_multi_seed`] cannot drift apart. With
/// `enabled: false` every call falls through to the from-scratch path.
///
/// Generic over the sample-cache handle: a run owns a private
/// [`SampleRunCache`] by default, while the serving layer passes a
/// [`SharedSampleRunCache`] so concurrent sessions pool validated
/// subtrees ([`ReOptimizer::run_shared`]).
#[derive(Debug)]
pub(crate) struct IncrementalCaches<C = SampleRunCache> {
    memo: PlanMemo,
    sample_cache: C,
    enabled: bool,
}

impl IncrementalCaches<SampleRunCache> {
    pub(crate) fn new(enabled: bool) -> Self {
        Self::with_sample_cache(enabled, SampleRunCache::new())
    }
}

impl<C: ValidationCache> IncrementalCaches<C> {
    pub(crate) fn with_sample_cache(enabled: bool, sample_cache: C) -> Self {
        IncrementalCaches {
            memo: PlanMemo::new(),
            sample_cache,
            enabled,
        }
    }

    /// Drop the DP memo — required when switching to a differently
    /// configured optimizer (the sample cache, keyed by (query, samples)
    /// only, stays valid).
    pub(crate) fn reset_memo(&mut self) {
        self.memo.clear();
    }

    /// Pin the memo and sample cache to the data version the run's
    /// samples were drawn at: the memo self-clears on a version change,
    /// and the sample cache's lookups/stores become qualified with it.
    pub(crate) fn pin_data_version(&mut self, version: reopt_storage::DataVersion) {
        self.memo.set_data_version(version);
        self.sample_cache.set_data_version(version);
    }

    /// `GetPlanFromOptimizer(Γ)`, reusing the memo when enabled.
    pub(crate) fn plan(
        &mut self,
        optimizer: &Optimizer<'_>,
        query: &Query,
        gamma: &CardOverrides,
    ) -> Result<reopt_optimizer::Planned> {
        if self.enabled {
            optimizer.optimize_incremental(query, gamma, &mut self.memo)
        } else {
            optimizer.optimize_with(query, gamma)
        }
    }

    /// `GetCardinalityEstimatesBySampling(P)`, replaying cached dry-run
    /// subtrees when enabled.
    pub(crate) fn validate(
        &mut self,
        query: &Query,
        plan: &PhysicalPlan,
        samples: &SampleStore,
        opts: &ValidationOpts,
    ) -> Result<Validation> {
        if self.enabled {
            validate_plan_cached(query, plan, samples, opts, &mut self.sample_cache)
        } else {
            validate_plan(query, plan, samples, opts)
        }
    }

    /// Evict the DP entries the accepted Δ can affect — the cost of a set
    /// depends only on cardinalities of its subsets, so only supersets of
    /// changed sets are stale. Δ re-lists sets Γ already holds
    /// (validation is deterministic, so with the same value); those change
    /// nothing and must not evict anything. Call *before* `gamma.merge`.
    pub(crate) fn note_delta(&mut self, gamma: &CardOverrides, delta: &CardOverrides) {
        if !self.enabled {
            return;
        }
        let changed: Vec<RelSet> = delta
            .iter()
            .filter(|&(s, v)| gamma.get(s) != Some(v))
            .map(|(s, _)| s)
            .collect();
        self.memo.invalidate_supersets(&changed);
    }
}

/// The result of [`ReOptimizer::execute`]: the sampling loop's trace plus
/// the (possibly mid-query re-optimized) execution.
#[derive(Debug, Clone)]
pub struct ExecutedReopt {
    /// Algorithm 1's round-by-round report; `report.final_plan` is the
    /// plan execution *started* with.
    pub report: ReoptReport,
    /// The execution: rows, aggregates, metrics, and — when mid-query
    /// re-optimization ran — its suspension/replan trace.
    pub run: crate::midquery::MidQueryRun,
}

/// The re-optimizer: an optimizer plus a sample store.
#[derive(Debug)]
pub struct ReOptimizer<'a> {
    optimizer: &'a Optimizer<'a>,
    samples: &'a SampleStore,
    config: ReOptConfig,
}

impl<'a> ReOptimizer<'a> {
    /// Re-optimizer with default configuration.
    pub fn new(optimizer: &'a Optimizer<'a>, samples: &'a SampleStore) -> Self {
        Self::with_config(optimizer, samples, ReOptConfig::default())
    }

    /// Re-optimizer with explicit configuration.
    pub fn with_config(
        optimizer: &'a Optimizer<'a>,
        samples: &'a SampleStore,
        config: ReOptConfig,
    ) -> Self {
        ReOptimizer {
            optimizer,
            samples,
            config,
        }
    }

    /// The underlying optimizer.
    pub fn optimizer(&self) -> &'a Optimizer<'a> {
        self.optimizer
    }

    /// The sample store.
    pub fn samples(&self) -> &'a SampleStore {
        self.samples
    }

    /// Run Algorithm 1 on `query`.
    pub fn run(&self, query: &Query) -> Result<ReoptReport> {
        // Cross-round caches (incremental mode): the DP table survives
        // between optimizer calls minus the stale frontier, and sample
        // dry-run subtrees are replayed instead of re-executed.
        let mut caches = IncrementalCaches::new(self.config.incremental);
        self.run_with_caches(query, &mut caches, &self.config.validation.tracer)
    }

    /// [`ReOptimizer::run`] with an explicit span recorder: the loop emits
    /// `reopt.loop` → `reopt.round` → (`optimizer.dp`, `sampling.dry_run`)
    /// spans under the caller's tracer. Recording never feeds back into
    /// planning, so the report is identical to an untraced run's.
    pub fn run_traced(&self, query: &Query, tracer: &Tracer) -> Result<ReoptReport> {
        let mut caches = IncrementalCaches::new(self.config.incremental);
        self.run_with_caches(query, &mut caches, tracer)
    }

    /// Run Algorithm 1 on `query`, pooling sample dry-run work through a
    /// [`SharedSampleRunCache`] instead of a run-private cache. Subtrees
    /// this run validates become visible to every other sharer (and vice
    /// versa) — the serving layer uses this so cold misses on different
    /// query templates share validated subtree estimates. The final plan
    /// and Γ are identical to [`ReOptimizer::run`]'s: the cache is exact,
    /// whoever filled it. Requires `config.incremental` (the default);
    /// with `incremental: false` validation bypasses caches entirely and
    /// this behaves exactly like `run`. The shared cache must belong to
    /// the same ([`SampleStore`], [`ValidationOpts`]) contract as this
    /// re-optimizer.
    pub fn run_shared(
        &self,
        query: &Query,
        sample_cache: &SharedSampleRunCache,
    ) -> Result<ReoptReport> {
        let mut caches =
            IncrementalCaches::with_sample_cache(self.config.incremental, sample_cache.clone());
        self.run_with_caches(query, &mut caches, &self.config.validation.tracer)
    }

    /// [`ReOptimizer::run_shared`] with an explicit span recorder (see
    /// [`ReOptimizer::run_traced`]).
    pub fn run_shared_traced(
        &self,
        query: &Query,
        sample_cache: &SharedSampleRunCache,
        tracer: &Tracer,
    ) -> Result<ReoptReport> {
        let mut caches =
            IncrementalCaches::with_sample_cache(self.config.incremental, sample_cache.clone());
        self.run_with_caches(query, &mut caches, tracer)
    }

    /// Run Algorithm 1, then execute the chosen plan against the full
    /// database — with the suspend → refine → replan → resume loop when
    /// `config.mid_query` is on, straight through otherwise. Exec options
    /// default to the validation thread knob (`0` = auto); use
    /// [`ReOptimizer::execute_with_opts`] for explicit executor control.
    pub fn execute(&self, query: &Query) -> Result<ExecutedReopt> {
        self.execute_with_opts(
            query,
            reopt_executor::ExecOpts {
                threads: self.config.validation.threads,
                columnar: self.config.validation.columnar,
                ..Default::default()
            },
        )
    }

    /// [`ReOptimizer::execute`] with explicit executor options. The
    /// mid-query loop seeds Γ with the sampling loop's final Γ (sets never
    /// observed keep their validated estimates while observed sets are
    /// upgraded to exact counts) and inherits the loop's DP memo, so the
    /// first suspension's replan re-costs only what the new exact entries
    /// touch instead of re-running the whole search.
    pub fn execute_with_opts(
        &self,
        query: &Query,
        exec_opts: reopt_executor::ExecOpts,
    ) -> Result<ExecutedReopt> {
        let mut caches = IncrementalCaches::new(self.config.incremental);
        // One tracer covers the whole journey: the sampling loop's spans
        // and the execution's land in the same trace.
        let tracer = exec_opts.tracer.clone();
        let report = self.run_with_caches(query, &mut caches, &tracer)?;
        let run = if self.config.mid_query {
            crate::midquery::execute_mid_query(
                self.optimizer.database(),
                self.optimizer,
                query,
                &report.final_plan,
                crate::midquery::MidQueryOpts {
                    gamma: report.gamma.clone(),
                    memo: caches.memo,
                    exec: exec_opts,
                    max_suspensions: self.config.max_suspensions,
                    replan_discrepancy: self.config.replan_discrepancy,
                },
            )?
        } else {
            crate::midquery::execute_straight(
                self.optimizer.database(),
                query,
                &report.final_plan,
                report.gamma.clone(),
                exec_opts,
            )?
        };
        Ok(ExecutedReopt { report, run })
    }

    fn run_with_caches<C: ValidationCache>(
        &self,
        query: &Query,
        caches: &mut IncrementalCaches<C>,
        tracer: &Tracer,
    ) -> Result<ReoptReport> {
        let t_start = Stopwatch::start();
        let mut loop_span = tracer.span(names::REOPT_LOOP);
        let loop_tracer = tracer.under(&loop_span);
        // Pin every per-run cache to the data state the samples were
        // drawn from: the DP memo self-clears if it was (improperly)
        // carried across an ingest, and Γ entries carry the stamp drift
        // rebasing later relies on.
        caches.pin_data_version(self.samples.data_version());
        let mut gamma = CardOverrides::new();
        gamma.set_data_version(self.samples.data_version());
        let mut rounds: Vec<RoundReport> = Vec::new();
        let mut prev_plan: Option<PhysicalPlan> = None;
        let mut prev_trees: Vec<JoinTree> = Vec::new();
        let mut converged = false;

        loop {
            // A blown budget must not buy a whole extra round: check
            // *before* starting the next optimize+validate cycle, not only
            // after finishing one. Round 1 always runs — the caller needs
            // at least one plan.
            if !rounds.is_empty() {
                if let Some(budget) = self.config.time_budget {
                    if t_start.elapsed() > budget {
                        break;
                    }
                }
            }

            let round = rounds.len() + 1;
            let mut round_span = loop_tracer.span(names::REOPT_ROUND);
            round_span.attr_u64("round", round as u64);
            let round_tracer = loop_tracer.under(&round_span);
            let t0 = Stopwatch::start();
            let planned = {
                let mut dp_span = round_tracer.span(names::OPTIMIZER_DP);
                let planned = caches.plan(self.optimizer, query, &gamma)?;
                if dp_span.is_recording() {
                    dp_span.attr_u64("subsets_reused", planned.search.subsets_reused as u64);
                    dp_span.attr_u64("subsets_replanned", planned.search.subsets_replanned as u64);
                    dp_span.attr_f64("est_cost", planned.plan.est_cost());
                }
                planned
            };
            let optimize_time = t0.elapsed();
            let tree = planned.plan.logical_tree();
            let transform = prev_plan
                .as_ref()
                .map(|p| classify_transformation(&p.logical_tree(), &tree));
            let covered = {
                let refs: Vec<&JoinTree> = prev_trees.iter().collect();
                is_covered_by(&tree, &refs)
            };
            let same = prev_plan
                .as_ref()
                .is_some_and(|p| p.same_structure(&planned.plan));

            if same {
                // Terminal round: Pᵢ = Pᵢ₋₁, no validation needed.
                let (_, vcost) = self.optimizer.cost_plan(query, &planned.plan, &gamma)?;
                rounds.push(RoundReport {
                    round,
                    est_rows: planned.plan.est_rows(),
                    est_cost: planned.plan.est_cost(),
                    plan: planned.plan,
                    transform,
                    covered_by_previous: covered,
                    gamma_new_entries: 0,
                    validated_cost: vcost,
                    optimize_time,
                    validation_time: Duration::ZERO,
                    dp_subsets_reused: planned.search.subsets_reused,
                    dp_subsets_replanned: planned.search.subsets_replanned,
                    sample_cache_hits: 0,
                    sample_subtrees_executed: 0,
                });
                round_span.attr_bool("terminal", true);
                converged = true;
                break;
            }

            // Hand the round's tracer to the validator so the dry-run's
            // spans nest under this round. Clone-on-enabled keeps the
            // common untraced path allocation-free.
            let v = if round_tracer.is_enabled() {
                let mut vopts = self.config.validation.clone();
                vopts.tracer = round_tracer.clone();
                caches.validate(query, &planned.plan, self.samples, &vopts)?
            } else {
                caches.validate(query, &planned.plan, self.samples, &self.config.validation)?
            };
            let delta = match self.config.min_discrepancy_factor {
                Some(factor) => self.filter_small_corrections(query, &gamma, &v.delta, factor)?,
                None => v.delta,
            };
            caches.note_delta(&gamma, &delta);
            let fresh = gamma.merge(&delta);
            let (_, vcost) = self.optimizer.cost_plan(query, &planned.plan, &gamma)?;
            rounds.push(RoundReport {
                round,
                est_rows: planned.plan.est_rows(),
                est_cost: planned.plan.est_cost(),
                plan: planned.plan.clone(),
                transform,
                covered_by_previous: covered,
                gamma_new_entries: fresh,
                validated_cost: vcost,
                optimize_time,
                validation_time: v.elapsed,
                dp_subsets_reused: planned.search.subsets_reused,
                dp_subsets_replanned: planned.search.subsets_replanned,
                sample_cache_hits: v.cache_hits,
                sample_subtrees_executed: v.subtrees_executed,
            });
            if round_span.is_recording() {
                round_span.attr_u64("gamma_new", fresh as u64);
                round_span.attr_f64("validated_cost", vcost);
            }
            prev_trees.push(tree);
            prev_plan = Some(planned.plan);

            if rounds.len() >= self.config.max_rounds {
                break;
            }
        }

        // Final plan selection. The loop above always runs round 1, so
        // `rounds` is non-empty; surface a corrupted state as an error
        // rather than a panic.
        let last_round = rounds
            .last()
            .ok_or_else(|| Error::internal("re-optimization loop produced zero rounds"))?;
        let (final_plan, final_validated_cost) = if !converged && self.config.pick_best_on_stop {
            // §5.4: under the final Γ, the cheapest of the generated plans.
            let mut best: Option<(f64, &PhysicalPlan)> = None;
            for r in &rounds {
                let (_, cost) = self.optimizer.cost_plan(query, &r.plan, &gamma)?;
                if best.is_none_or(|(c, _)| cost < c) {
                    best = Some((cost, &r.plan));
                }
            }
            match best {
                Some((cost, p)) => (p.clone(), cost),
                None => (last_round.plan.clone(), last_round.validated_cost),
            }
        } else {
            // Every round records its plan's cost under the then-current Γ;
            // the terminal round's entry is already the final plan under
            // the final Γ (no new Δ was merged after it).
            (last_round.plan.clone(), last_round.validated_cost)
        };

        if loop_span.is_recording() {
            loop_span.attr_u64("rounds", rounds.len() as u64);
            loop_span.attr_bool("converged", converged);
            loop_span.attr_u64("gamma_len", gamma.len() as u64);
        }
        Ok(ReoptReport {
            rounds,
            final_plan,
            final_validated_cost,
            converged,
            reopt_time: t_start.elapsed(),
            gamma,
        })
    }

    /// Conservative acceptance: drop Δ entries whose sampling estimate is
    /// within `factor` of the optimizer's current estimate (native stats
    /// overridden by the Γ accumulated so far).
    fn filter_small_corrections(
        &self,
        query: &Query,
        gamma: &CardOverrides,
        delta: &CardOverrides,
        factor: f64,
    ) -> Result<CardOverrides> {
        let factor = factor.max(1.0);
        let mut kept = CardOverrides::new();
        for (set, sampled) in delta.iter() {
            let native = self.optimizer.estimate_rows(query, gamma, set)?;
            let (lo, hi) = (native / factor, native * factor);
            if sampled < lo || sampled > hi {
                kept.insert(set, sampled);
            }
        }
        Ok(kept)
    }

    /// Theorem 6 check: the final plan costs no more (under the final Γ)
    /// than any of its local transformations — operand swaps and
    /// single-node operator substitutions. Returns the number of
    /// alternatives examined.
    pub fn verify_theorem6(&self, query: &Query, report: &ReoptReport) -> Result<usize> {
        let (_, final_cost) = self
            .optimizer
            .cost_plan(query, &report.final_plan, &report.gamma)?;
        let alternatives = reopt_plan::local_transformations(&report.final_plan);
        let examined = alternatives.len();
        for alt in alternatives {
            let (_, alt_cost) = self.optimizer.cost_plan(query, &alt, &report.gamma)?;
            if final_cost > alt_cost * (1.0 + 1e-9) {
                return Err(reopt_common::Error::internal(format!(
                    "Theorem 6 violated: local transformation costs {alt_cost}, final costs {final_cost}\n{}",
                    alt.explain()
                )));
            }
        }
        Ok(examined)
    }

    /// Theorem 5 check: under the final Γ (which prices every plan the
    /// loop generated), the final plan's estimated cost must not exceed
    /// any earlier plan's. Returns the (final_cost, costs-per-round) pair
    /// for reporting.
    pub fn verify_final_optimality(
        &self,
        query: &Query,
        report: &ReoptReport,
    ) -> Result<(f64, Vec<f64>)> {
        let mut costs = Vec::with_capacity(report.rounds.len());
        for r in &report.rounds {
            let (_, c) = self.optimizer.cost_plan(query, &r.plan, &report.gamma)?;
            costs.push(c);
        }
        let (_, final_cost) = self
            .optimizer
            .cost_plan(query, &report.final_plan, &report.gamma)?;
        Ok((final_cost, costs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_common::{ColId, TableId};
    use reopt_plan::query::ColRef;
    use reopt_plan::{Predicate, QueryBuilder};
    use reopt_sampling::SampleConfig;
    use reopt_stats::{analyze_database, AnalyzeOpts};
    use reopt_storage::{Column, ColumnDef, Database, LogicalType, Table, TableSchema};

    /// OTT-style chain database: `k` relations R(A, B) with B = A,
    /// `vals` distinct values × `per` rows.
    fn ott_db(k: usize, vals: i64, per: usize) -> Database {
        let mut db = Database::new();
        for t in 0..k {
            db.add_table_with(|id| {
                let schema = TableSchema::new(vec![
                    ColumnDef::new("a", LogicalType::Int),
                    ColumnDef::new("b", LogicalType::Int),
                ])?;
                let mut data = Vec::new();
                for v in 0..vals {
                    data.extend(std::iter::repeat_n(v, per));
                }
                let mut tbl = Table::new(
                    id,
                    format!("r{t}"),
                    schema,
                    vec![
                        Column::from_i64(LogicalType::Int, data.clone()),
                        Column::from_i64(LogicalType::Int, data),
                    ],
                )?;
                tbl.create_index(ColId::new(0))?;
                tbl.create_index(ColId::new(1))?;
                Ok(tbl)
            })
            .unwrap();
        }
        db
    }

    fn ott_query(k: usize, consts: &[i64]) -> Query {
        let mut qb = QueryBuilder::new();
        let rels: Vec<_> = (0..k).map(|i| qb.add_relation(TableId::from(i))).collect();
        for (i, &r) in rels.iter().enumerate() {
            qb.add_predicate(Predicate::eq(r, ColId::new(0), consts[i]));
        }
        for w in rels.windows(2) {
            qb.add_join(
                ColRef::new(w[0], ColId::new(1)),
                ColRef::new(w[1], ColId::new(1)),
            );
        }
        qb.build()
    }

    struct Fixture {
        db: Database,
    }

    impl Fixture {
        fn new(k: usize, vals: i64, per: usize) -> Self {
            Fixture {
                db: ott_db(k, vals, per),
            }
        }
    }

    #[test]
    fn trivial_queries_converge_in_two_rounds() {
        // A 2-relation non-empty query: sampling confirms the estimates
        // roughly, the plan should stabilize quickly (≤ 3 rounds).
        let f = Fixture::new(2, 100, 20);
        let stats = analyze_database(&f.db, &AnalyzeOpts::default()).unwrap();
        let samples = SampleStore::build(&f.db, SampleConfig::default()).unwrap();
        let opt = Optimizer::new(&f.db, &stats);
        let re = ReOptimizer::new(&opt, &samples);
        let q = ott_query(2, &[0, 0]);
        let report = re.run(&q).unwrap();
        assert!(report.converged);
        assert!(report.num_rounds() <= 3, "rounds: {}", report.num_rounds());
        // Final round is Identical to its predecessor.
        assert!(report.rounds.last().unwrap().transform.is_some());
    }

    #[test]
    fn ott_empty_join_first_after_reoptimization() {
        // 4-relation OTT chain with constants (0,0,0,1): the r2 ⋈ r3 edge
        // is empty. Re-optimization must discover a near-zero join and the
        // final plan must be dramatically cheaper under Γ.
        let f = Fixture::new(4, 50, 20); // 1000 rows per table
        let stats = analyze_database(&f.db, &AnalyzeOpts::default()).unwrap();
        let samples = SampleStore::build(&f.db, SampleConfig::default()).unwrap();
        let opt = Optimizer::new(&f.db, &stats);
        let re = ReOptimizer::new(&opt, &samples);
        let q = ott_query(4, &[0, 0, 0, 1]);
        let report = re.run(&q).unwrap();
        assert!(report.converged, "did not converge");
        // Γ must contain at least one near-empty validated join.
        let has_empty = report
            .gamma
            .iter()
            .any(|(s, rows)| s.len() >= 2 && rows <= 1.5);
        assert!(has_empty, "no empty join discovered in Γ");
        // Theorem 5: final plan no worse than any generated plan under Γ.
        let (final_cost, costs) = re.verify_final_optimality(&q, &report).unwrap();
        for (i, c) in costs.iter().enumerate() {
            assert!(
                final_cost <= c * (1.0 + 1e-9),
                "round {} plan is cheaper ({c}) than final ({final_cost})",
                i + 1
            );
        }
    }

    #[test]
    fn theorem2_transformation_chain_holds() {
        let f = Fixture::new(5, 50, 20);
        let stats = analyze_database(&f.db, &AnalyzeOpts::default()).unwrap();
        let samples = SampleStore::build(&f.db, SampleConfig::default()).unwrap();
        let opt = Optimizer::new(&f.db, &stats);
        let re = ReOptimizer::new(&opt, &samples);
        for consts in [[0, 0, 0, 0, 1], [0, 0, 0, 1, 1], [0, 1, 0, 1, 0]] {
            let q = ott_query(5, &consts);
            let report = re.run(&q).unwrap();
            report
                .verify_theorem2()
                .unwrap_or_else(|e| panic!("theorem 2 violated for {consts:?}: {e}"));
        }
    }

    #[test]
    fn max_rounds_cap_stops_loop() {
        let f = Fixture::new(4, 50, 20);
        let stats = analyze_database(&f.db, &AnalyzeOpts::default()).unwrap();
        let samples = SampleStore::build(&f.db, SampleConfig::default()).unwrap();
        let opt = Optimizer::new(&f.db, &stats);
        let config = ReOptConfig {
            max_rounds: 1,
            ..Default::default()
        };
        let re = ReOptimizer::with_config(&opt, &samples, config);
        let q = ott_query(4, &[0, 0, 0, 1]);
        let report = re.run(&q).unwrap();
        assert_eq!(report.num_rounds(), 1);
        // With one round the loop cannot have converged...
        assert!(!report.converged);
        // ...and pick_best_on_stop returns the only plan generated.
        assert!(report.final_plan.same_structure(&report.rounds[0].plan));
    }

    #[test]
    fn reoptimization_is_deterministic() {
        let f = Fixture::new(4, 50, 20);
        let stats = analyze_database(&f.db, &AnalyzeOpts::default()).unwrap();
        let samples = SampleStore::build(&f.db, SampleConfig::default()).unwrap();
        let opt = Optimizer::new(&f.db, &stats);
        let re = ReOptimizer::new(&opt, &samples);
        let q = ott_query(4, &[0, 0, 1, 0]);
        let r1 = re.run(&q).unwrap();
        let r2 = re.run(&q).unwrap();
        assert_eq!(r1.num_rounds(), r2.num_rounds());
        assert!(r1.final_plan.same_structure(&r2.final_plan));
    }

    #[test]
    fn conservative_acceptance_suppresses_small_corrections() {
        let f = Fixture::new(4, 50, 20);
        let stats = analyze_database(&f.db, &AnalyzeOpts::default()).unwrap();
        let samples = SampleStore::build(
            &f.db,
            SampleConfig {
                ratio: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        let opt = Optimizer::new(&f.db, &stats);
        let q = ott_query(4, &[0, 0, 0, 1]);

        // An absurd discrepancy threshold: every correction is suppressed,
        // Γ never grows, and the loop terminates with the original plan.
        let config = ReOptConfig {
            min_discrepancy_factor: Some(1e12),
            ..Default::default()
        };
        let re = ReOptimizer::with_config(&opt, &samples, config);
        let report = re.run(&q).unwrap();
        assert!(report.converged);
        assert_eq!(report.gamma.len(), 0);
        assert!(!report.plan_changed());
        assert_eq!(report.num_rounds(), 2);

        // A moderate threshold still lets the orders-of-magnitude OTT
        // errors through: the plan is repaired as usual.
        let config = ReOptConfig {
            min_discrepancy_factor: Some(3.0),
            ..Default::default()
        };
        let re = ReOptimizer::with_config(&opt, &samples, config);
        let report = re.run(&q).unwrap();
        assert!(report.converged);
        assert!(
            !report.gamma.is_empty(),
            "large errors must still be accepted"
        );
        // Only the big-discrepancy sets were recorded.
        for (set, rows) in report.gamma.iter() {
            let native = opt.estimate_rows(&q, &CardOverrides::new(), set).unwrap();
            let ratio = (rows.max(1e-9) / native.max(1e-9)).max(native / rows.max(1e-9));
            assert!(
                ratio >= 2.0,
                "small correction slipped through: {set} {rows} vs {native}"
            );
        }
    }

    #[test]
    fn incremental_reuses_dp_and_sample_work() {
        // OTT chains with an empty edge, sampled densely enough
        // (ratio 0.5) that validation repairs the plan over several
        // global transformations — rounds ≥ 2 must then demonstrably
        // reuse round-1 work. The 4-relation case is the acceptance
        // fixture; 5 relations exercises a longer trajectory.
        for (k, consts) in [(4usize, vec![0i64, 0, 0, 1]), (5, vec![0, 0, 0, 0, 1])] {
            let f = Fixture::new(k, 50, 20);
            let stats = analyze_database(&f.db, &AnalyzeOpts::default()).unwrap();
            let samples = SampleStore::build(
                &f.db,
                SampleConfig {
                    ratio: 0.5,
                    ..Default::default()
                },
            )
            .unwrap();
            let opt = Optimizer::new(&f.db, &stats);
            let re = ReOptimizer::new(&opt, &samples); // incremental by default
            let q = ott_query(k, &consts);
            let report = re.run(&q).unwrap();
            assert!(report.converged);
            assert!(report.plan_changed(), "k={k}: fixture must repair the plan");
            assert!(report.num_rounds() > 2, "k={k}: need >2 rounds");

            // A changed plan in round 2 shares at least its leaf scans
            // with round 1's validated plan: the dry-run must replay them.
            assert!(
                report.rounds[1].sample_cache_hits >= 1,
                "k={k}: round 2 validation hit nothing"
            );

            let r1 = &report.rounds[0];
            // Round 1 starts cold: everything planned, nothing reused.
            assert_eq!(r1.dp_subsets_reused, 0);
            assert!(r1.dp_subsets_replanned > 0);
            assert_eq!(r1.sample_cache_hits, 0);
            for r in &report.rounds[1..] {
                // Every later round re-plans strictly fewer DP subsets...
                assert!(
                    r.dp_subsets_replanned < r1.dp_subsets_replanned,
                    "k={k}: round {} re-planned {} ≥ round 1's {}",
                    r.round,
                    r.dp_subsets_replanned,
                    r1.dp_subsets_replanned
                );
                assert!(
                    r.dp_subsets_reused > 0,
                    "k={k}: round {} reused nothing",
                    r.round
                );
            }
            // ...and the dry-runs of rounds 2.. hit the sample cache at
            // least once (shared leaf scans at minimum).
            assert!(
                report.total_sample_cache_hits() >= 1,
                "k={k}: no sample-cache hit recorded"
            );

            // The caches are pure work-avoidance: from-scratch mode ends
            // in the same place.
            let scratch = ReOptimizer::with_config(
                &opt,
                &samples,
                ReOptConfig {
                    incremental: false,
                    ..Default::default()
                },
            )
            .run(&q)
            .unwrap();
            assert!(report.final_plan.same_structure(&scratch.final_plan));
        }
    }

    #[test]
    fn incremental_and_from_scratch_agree() {
        // Multi-round plan-changing trajectories (ratio 0.5, see
        // incremental_reuses_dp_and_sample_work) and trivial ones must all
        // end in the same plan with the same Γ under both modes.
        let f = Fixture::new(5, 50, 20);
        let stats = analyze_database(&f.db, &AnalyzeOpts::default()).unwrap();
        let samples = SampleStore::build(
            &f.db,
            SampleConfig {
                ratio: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        let opt = Optimizer::new(&f.db, &stats);
        let inc = ReOptimizer::new(&opt, &samples);
        let scratch = ReOptimizer::with_config(
            &opt,
            &samples,
            ReOptConfig {
                incremental: false,
                ..Default::default()
            },
        );
        for consts in [
            [0, 0, 0, 0, 1],
            [0, 0, 1, 0, 0],
            [0, 1, 0, 1, 0],
            [0, 0, 0, 0, 0],
        ] {
            let q = ott_query(5, &consts);
            let a = inc.run(&q).unwrap();
            let b = scratch.run(&q).unwrap();
            assert_eq!(a.num_rounds(), b.num_rounds(), "{consts:?}");
            for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
                assert!(
                    ra.plan.same_structure(&rb.plan),
                    "{consts:?}: round {} plans differ",
                    ra.round
                );
            }
            assert!(
                a.final_plan.same_structure(&b.final_plan),
                "{consts:?}: final plans differ"
            );
            assert_eq!(a.gamma.len(), b.gamma.len(), "{consts:?}");
            for (set, rows) in a.gamma.iter() {
                assert_eq!(b.gamma.get(set), Some(rows), "{consts:?}: Γ({set})");
            }
        }
    }

    #[test]
    fn shared_sample_cache_pools_work_across_queries() {
        // Two *different* queries over one database: a 5-chain and a
        // 4-chain whose shared prefix has identical predicates. Running
        // both through one SharedSampleRunCache must (a) change nothing
        // about the results and (b) let the second query replay subtrees
        // the first one executed.
        let f = Fixture::new(5, 50, 20);
        let stats = analyze_database(&f.db, &AnalyzeOpts::default()).unwrap();
        let samples = SampleStore::build(
            &f.db,
            SampleConfig {
                ratio: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        let opt = Optimizer::new(&f.db, &stats);
        let re = ReOptimizer::new(&opt, &samples);
        let qa = ott_query(5, &[0, 0, 0, 0, 1]);
        let qb = ott_query(4, &[0, 0, 0, 0]);

        // Equivalence: the shared-cache run ends where the private run does.
        let shared = SharedSampleRunCache::new();
        let ra = re.run_shared(&qa, &shared).unwrap();
        let base_a = re.run(&qa).unwrap();
        assert_eq!(ra.num_rounds(), base_a.num_rounds());
        assert!(ra.final_plan.same_structure(&base_a.final_plan));
        assert_eq!(ra.gamma.len(), base_a.gamma.len());
        for (set, rows) in ra.gamma.iter() {
            assert_eq!(base_a.gamma.get(set), Some(rows), "Γ({set})");
        }

        // Cross-query pooling: qb alone (fresh cache) vs qb after qa.
        let fresh = SharedSampleRunCache::new();
        let rb_alone = re.run_shared(&qb, &fresh).unwrap();
        let alone = fresh.stats();
        let before = shared.stats();
        let rb = re.run_shared(&qb, &shared).unwrap();
        let after = shared.stats();
        assert!(rb.final_plan.same_structure(&rb_alone.final_plan));
        assert!(
            after.hits - before.hits > alone.hits,
            "sharing must add cross-query hits: {} vs {} alone",
            after.hits - before.hits,
            alone.hits
        );
        assert!(
            after.executed - before.executed < alone.executed,
            "sharing must execute fewer subtrees: {} vs {} alone",
            after.executed - before.executed,
            alone.executed
        );
    }

    #[test]
    fn blown_budget_cannot_buy_an_extra_round() {
        // A zero budget is exceeded the moment round 1 finishes: the loop
        // must stop before doing any round-2 optimize/validate work.
        let f = Fixture::new(4, 50, 20);
        let stats = analyze_database(&f.db, &AnalyzeOpts::default()).unwrap();
        let samples = SampleStore::build(&f.db, SampleConfig::default()).unwrap();
        let opt = Optimizer::new(&f.db, &stats);
        let config = ReOptConfig {
            time_budget: Some(Duration::ZERO),
            ..Default::default()
        };
        let re = ReOptimizer::with_config(&opt, &samples, config);
        let q = ott_query(4, &[0, 0, 0, 1]);
        let report = re.run(&q).unwrap();
        assert_eq!(report.num_rounds(), 1, "budget bought an extra round");
        assert!(!report.converged);
    }

    #[test]
    fn gamma_growth_is_monotone_and_bounded() {
        let f = Fixture::new(4, 50, 20);
        let stats = analyze_database(&f.db, &AnalyzeOpts::default()).unwrap();
        let samples = SampleStore::build(&f.db, SampleConfig::default()).unwrap();
        let opt = Optimizer::new(&f.db, &stats);
        let re = ReOptimizer::new(&opt, &samples);
        let q = ott_query(4, &[0, 0, 0, 1]);
        let report = re.run(&q).unwrap();
        // Theorem 1: if a round adds nothing new to Γ (its plan was
        // covered by earlier plans), the *next* round must terminate the
        // loop with an identical plan.
        for (i, r) in report.rounds.iter().enumerate() {
            if i + 1 < report.rounds.len() && r.gamma_new_entries == 0 {
                let next = &report.rounds[i + 1];
                assert_eq!(
                    next.transform,
                    Some(reopt_plan::transform::TransformKind::Identical),
                    "round {} added nothing but round {} did not terminate",
                    r.round,
                    next.round
                );
            }
        }
        // And the loop did make progress: Γ is non-trivial at the end.
        assert!(
            report.gamma.len() >= 2,
            "Γ has {} entries",
            report.gamma.len()
        );
    }
}
