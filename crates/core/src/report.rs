//! Round-by-round instrumentation of the re-optimization loop.
//!
//! The paper's evaluation reads several metrics off this trace: the number
//! of plans generated during re-optimization (Figures 5, 8, 16, 20), the
//! time spent re-optimizing versus executing (Figures 6, 9, 17, 18), the
//! per-round plans whose true runtimes Figures 14–15 chart, and the
//! transformation-chain structure that Theorem 2 predicts.

use std::time::Duration;

use serde::Serialize;

use reopt_common::FxHashSet;
use reopt_optimizer::CardOverrides;
use reopt_plan::transform::TransformKind;
use reopt_plan::PhysicalPlan;

/// One round of Algorithm 1.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// 1-based round number.
    pub round: usize,
    /// The plan the optimizer returned this round.
    pub plan: PhysicalPlan,
    /// The optimizer's estimated output rows for the plan.
    pub est_rows: f64,
    /// The optimizer's estimated cost for the plan.
    pub est_cost: f64,
    /// Relationship to the previous round's plan (None in round 1).
    pub transform: Option<TransformKind>,
    /// Definition 2: was this plan's join set already covered by the
    /// earlier plans? (Theorem 1 predicts the *next* round terminates.)
    pub covered_by_previous: bool,
    /// Entries Δ added to Γ that were not present before.
    pub gamma_new_entries: usize,
    /// cost_s(P_i): this plan's cost under Γ *after* merging its own Δ —
    /// the paper's sampling-validated cost. Corollary 3 predicts this is
    /// non-increasing across rounds when all errors are overestimates.
    pub validated_cost: f64,
    /// Time spent inside the optimizer.
    pub optimize_time: Duration,
    /// Time spent validating over the samples (zero in the terminal
    /// round).
    pub validation_time: Duration,
    /// DP subsets reused from the cross-round memo (0 when incremental
    /// mode is off or the GEQO fallback planned the round).
    pub dp_subsets_reused: usize,
    /// DP subsets (re-)planned this round.
    pub dp_subsets_replanned: usize,
    /// Sample dry-run subtrees replayed from the cross-round cache (0 when
    /// incremental mode is off and in the terminal round, which skips
    /// validation).
    pub sample_cache_hits: usize,
    /// Sample dry-run subtrees actually executed this round.
    pub sample_subtrees_executed: usize,
}

/// The complete trace of one re-optimization run.
#[derive(Debug, Clone)]
pub struct ReoptReport {
    /// All rounds, in order. The last round repeats the previous plan when
    /// `converged` is true.
    pub rounds: Vec<RoundReport>,
    /// The plan Algorithm 1 returned.
    pub final_plan: PhysicalPlan,
    /// `final_plan`'s cost under the final Γ — the reference value the
    /// serving layer's cached-plan re-validation compares against.
    pub final_validated_cost: f64,
    /// Whether the loop terminated by plan repetition (vs round/time cap).
    pub converged: bool,
    /// Total wall time of the loop (optimize + validate, all rounds).
    pub reopt_time: Duration,
    /// Final Γ.
    pub gamma: CardOverrides,
}

impl ReoptReport {
    /// Number of optimizer invocations.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Number of *distinct* plans generated — the paper's "number of plans
    /// generated during re-optimization" (1 means the original plan was
    /// never changed).
    pub fn num_distinct_plans(&self) -> usize {
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        for r in &self.rounds {
            seen.insert(r.plan.fingerprint());
        }
        seen.len()
    }

    /// The distinct plans in first-appearance order.
    pub fn distinct_plans(&self) -> Vec<&PhysicalPlan> {
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        let mut out = Vec::new();
        for r in &self.rounds {
            if seen.insert(r.plan.fingerprint()) {
                out.push(&r.plan);
            }
        }
        out
    }

    /// Whether re-optimization changed the original plan at all.
    pub fn plan_changed(&self) -> bool {
        !self.final_plan.same_structure(&self.rounds[0].plan)
    }

    /// Total time spent running plans over samples.
    pub fn total_validation_time(&self) -> Duration {
        self.rounds.iter().map(|r| r.validation_time).sum()
    }

    /// Total time spent in the optimizer.
    pub fn total_optimize_time(&self) -> Duration {
        self.rounds.iter().map(|r| r.optimize_time).sum()
    }

    /// Total DP subsets reused from the cross-round memo.
    pub fn total_dp_subsets_reused(&self) -> usize {
        self.rounds.iter().map(|r| r.dp_subsets_reused).sum()
    }

    /// Total DP subsets (re-)planned across all rounds.
    pub fn total_dp_subsets_replanned(&self) -> usize {
        self.rounds.iter().map(|r| r.dp_subsets_replanned).sum()
    }

    /// Total sample dry-run subtrees replayed from the cross-round cache.
    pub fn total_sample_cache_hits(&self) -> usize {
        self.rounds.iter().map(|r| r.sample_cache_hits).sum()
    }

    /// Total sample dry-run subtrees executed across all rounds.
    pub fn total_sample_subtrees_executed(&self) -> usize {
        self.rounds.iter().map(|r| r.sample_subtrees_executed).sum()
    }

    /// Theorem 2: the chain P₁ → … → Pₙ of *distinct* plans consists of
    /// global transformations, with at most one local transformation which,
    /// if present, must be the last step. (The terminal repeat — an
    /// `Identical` transition — is excluded.)
    pub fn verify_theorem2(&self) -> Result<(), String> {
        let transitions: Vec<TransformKind> = self
            .rounds
            .iter()
            .filter_map(|r| r.transform)
            .filter(|t| *t != TransformKind::Identical)
            .collect();
        // `Identical` was filtered out above, so only Global/Local remain;
        // Global steps are always legal, leaving one check per step.
        for (i, t) in transitions.iter().enumerate() {
            if *t == TransformKind::Local && i + 1 != transitions.len() {
                return Err(format!(
                    "local transformation at step {} of {} — only the last step may be local",
                    i + 1,
                    transitions.len()
                ));
            }
        }
        Ok(())
    }

    /// Serializable summary for experiment logs.
    pub fn summary(&self) -> ReoptSummary {
        ReoptSummary {
            rounds: self.num_rounds(),
            distinct_plans: self.num_distinct_plans(),
            converged: self.converged,
            plan_changed: self.plan_changed(),
            reopt_time_us: self.reopt_time.as_micros() as u64,
            validation_time_us: self.total_validation_time().as_micros() as u64,
            optimize_time_us: self.total_optimize_time().as_micros() as u64,
            gamma_entries: self.gamma.len(),
            dp_subsets_reused: self.total_dp_subsets_reused(),
            dp_subsets_replanned: self.total_dp_subsets_replanned(),
            sample_cache_hits: self.total_sample_cache_hits(),
            sample_subtrees_executed: self.total_sample_subtrees_executed(),
            final_plan: self.final_plan.explain(),
            transforms: self
                .rounds
                .iter()
                .filter_map(|r| r.transform)
                .map(|t| format!("{t:?}"))
                .collect(),
        }
    }
}

/// JSON-friendly digest of a [`ReoptReport`].
#[derive(Debug, Clone, Serialize)]
pub struct ReoptSummary {
    /// Optimizer invocations.
    pub rounds: usize,
    /// Distinct plans generated.
    pub distinct_plans: usize,
    /// Terminated by convergence (vs cap).
    pub converged: bool,
    /// Final plan differs from the original.
    pub plan_changed: bool,
    /// Total loop time in microseconds.
    pub reopt_time_us: u64,
    /// Sampling time in microseconds.
    pub validation_time_us: u64,
    /// Optimizer time in microseconds.
    pub optimize_time_us: u64,
    /// Size of the final Γ.
    pub gamma_entries: usize,
    /// DP subsets reused from the cross-round memo (incremental mode).
    pub dp_subsets_reused: usize,
    /// DP subsets (re-)planned across all rounds.
    pub dp_subsets_replanned: usize,
    /// Sample dry-run subtrees replayed from the cross-round cache.
    pub sample_cache_hits: usize,
    /// Sample dry-run subtrees executed across all rounds.
    pub sample_subtrees_executed: usize,
    /// EXPLAIN rendering of the final plan.
    pub final_plan: String,
    /// Transformation kinds along the chain.
    pub transforms: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_common::{ColId, RelId, TableId};
    use reopt_plan::physical::PlanNodeInfo;
    use reopt_plan::query::ColRef;
    use reopt_plan::{AccessPath, JoinAlgo};

    fn scan(rel: u32) -> PhysicalPlan {
        PhysicalPlan::Scan {
            rel: RelId::new(rel),
            table: TableId::new(rel),
            access: AccessPath::SeqScan,
            info: PlanNodeInfo::default(),
        }
    }

    fn join(l: PhysicalPlan, r: PhysicalPlan) -> PhysicalPlan {
        PhysicalPlan::Join {
            algo: JoinAlgo::Hash,
            left: Box::new(l),
            right: Box::new(r),
            keys: vec![(
                ColRef::new(RelId::new(0), ColId::new(0)),
                ColRef::new(RelId::new(1), ColId::new(0)),
            )],
            info: PlanNodeInfo::default(),
        }
    }

    fn round(n: usize, plan: PhysicalPlan, t: Option<TransformKind>) -> RoundReport {
        RoundReport {
            round: n,
            plan,
            est_rows: 1.0,
            est_cost: 1.0,
            transform: t,
            covered_by_previous: false,
            gamma_new_entries: 1,
            validated_cost: 1.0,
            optimize_time: Duration::from_micros(10),
            validation_time: Duration::from_micros(20),
            dp_subsets_reused: 0,
            dp_subsets_replanned: 3,
            sample_cache_hits: 0,
            sample_subtrees_executed: 3,
        }
    }

    fn report(rounds: Vec<RoundReport>) -> ReoptReport {
        let last = rounds.last().unwrap();
        let (final_plan, final_validated_cost) = (last.plan.clone(), last.validated_cost);
        ReoptReport {
            rounds,
            final_plan,
            final_validated_cost,
            converged: true,
            reopt_time: Duration::from_micros(100),
            gamma: CardOverrides::new(),
        }
    }

    #[test]
    fn distinct_plan_counting() {
        let p1 = join(scan(0), scan(1));
        let p2 = join(scan(1), scan(0));
        let r = report(vec![
            round(1, p1.clone(), None),
            round(2, p2.clone(), Some(TransformKind::Local)),
            round(3, p2.clone(), Some(TransformKind::Identical)),
        ]);
        assert_eq!(r.num_rounds(), 3);
        assert_eq!(r.num_distinct_plans(), 2);
        assert_eq!(r.distinct_plans().len(), 2);
        assert!(r.plan_changed());
    }

    #[test]
    fn unchanged_plan_is_one_distinct() {
        let p1 = join(scan(0), scan(1));
        let r = report(vec![
            round(1, p1.clone(), None),
            round(2, p1.clone(), Some(TransformKind::Identical)),
        ]);
        assert_eq!(r.num_distinct_plans(), 1);
        assert!(!r.plan_changed());
    }

    #[test]
    fn theorem2_accepts_valid_chains() {
        let p1 = join(scan(0), scan(1));
        let p2 = join(join(scan(0), scan(1)), scan(2));
        let p3 = join(join(scan(1), scan(0)), scan(2));
        // Global then Local then Identical: valid (case 3).
        let r = report(vec![
            round(1, p1, None),
            round(2, p2, Some(TransformKind::Global)),
            round(3, p3.clone(), Some(TransformKind::Local)),
            round(4, p3, Some(TransformKind::Identical)),
        ]);
        assert!(r.verify_theorem2().is_ok());
    }

    #[test]
    fn theorem2_rejects_local_before_global() {
        let p = join(scan(0), scan(1));
        let r = report(vec![
            round(1, p.clone(), None),
            round(2, p.clone(), Some(TransformKind::Local)),
            round(3, p.clone(), Some(TransformKind::Global)),
        ]);
        assert!(r.verify_theorem2().is_err());
    }

    #[test]
    fn timing_accumulators() {
        let p = join(scan(0), scan(1));
        let r = report(vec![
            round(1, p.clone(), None),
            round(2, p, Some(TransformKind::Identical)),
        ]);
        assert_eq!(r.total_optimize_time(), Duration::from_micros(20));
        assert_eq!(r.total_validation_time(), Duration::from_micros(40));
    }

    #[test]
    fn summary_serializes() {
        let p = join(scan(0), scan(1));
        let r = report(vec![round(1, p, None)]);
        let s = r.summary();
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"rounds\":1"));
        assert!(json.contains("distinct_plans"));
    }
}
