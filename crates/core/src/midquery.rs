//! Mid-query re-optimization: suspend → refine → replan → resume.
//!
//! The sampling loop (Algorithm 1) re-optimizes *between* plan choices
//! using sampled estimates; this module closes the remaining gap by
//! re-optimizing *during* execution using the exact cardinalities the
//! executor observes for free (the direction of Perron et al., "On
//! Cardinality Estimation and Query Re-optimization", composed with the
//! incremental replanning of Liu, Ives & Loo):
//!
//! 1. **Suspend** — [`Executor::run_step`] runs the current plan up to its
//!    next materialization point (the first unfinished non-root join — a
//!    hash-join build or, at the top, the aggregate's input), checkpoints
//!    the materialized [`RowSet`] keyed by [`RelSet`], and hands back the
//!    exact observed cardinality of every completed node.
//! 2. **Refine** — the observed counts are folded into Γ as **exact**
//!    entries ([`CardOverrides::insert_exact`]): scale 1.0, overriding any
//!    sampled estimate for the same set, immune to later sampled merges.
//! 3. **Replan** — the optimizer re-plans the remaining join set with the
//!    completed subtrees pinned as zero-cost leaves
//!    ([`Optimizer::optimize_with_pinned`]), reusing the cross-round
//!    [`PlanMemo`] so only supersets of refined sets are re-costed.
//! 4. **Resume** — the next `run_step` call executes the (possibly new)
//!    plan, splicing every checkpointed subtree back in via the
//!    [`SubtreeCache`](reopt_executor::SubtreeCache) hook. Completed work
//!    is never re-executed; a remainder that replans to the same plan
//!    resumes with zero extra executor work.
//!
//! The mechanism only changes *which* plan finishes the query, never the
//! result: each checkpoint is the plan-shape-independent materialization
//! of its relation set (see [`reopt_executor::checkpoint`]), so the final
//! output is the same tuple set whatever trajectory the loop takes —
//! proven across workloads by `tests/midquery_equivalence.rs`. Row *order*
//! may differ between trajectories; consumers that need a canonical order
//! sort, exactly as they would across plan shapes.

use reopt_common::{RelSet, Result};
use reopt_executor::agg::aggregate_opts;
use reopt_executor::{
    AggOutput, CheckpointStore, ExecMetrics, ExecOpts, ExecStep, Executor, RowSet,
};
use reopt_optimizer::{CardOverrides, Optimizer, PinnedLeaf, PlanMemo};
use reopt_plan::{PhysicalPlan, Query};
use reopt_storage::Database;
use reopt_telemetry::names;
use serde::Serialize;

/// Small, copyable counters of one mid-query execution — what a serving
/// layer reports per query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct MidQueryStats {
    /// Times execution suspended at a materialization point.
    pub suspensions: usize,
    /// Replans run while suspended. At most `suspensions`; smaller
    /// whenever the discrepancy gate found every new observation in
    /// agreement with current beliefs (the common case under the default
    /// `replan_discrepancy: Some(2.0)`) or the suspension cap was hit.
    pub replans: usize,
    /// Replans that changed the remainder's plan structure.
    pub plan_switches: usize,
    /// Node results checkpointed across all segments.
    pub checkpoints: usize,
    /// Nodes answered by splicing a checkpoint instead of executing.
    pub splices: usize,
    /// Exact observed cardinalities folded into Γ.
    pub exact_gamma_entries: usize,
}

/// Full trace of one mid-query execution.
#[derive(Debug, Clone)]
pub struct MidQueryReport {
    /// Counters.
    pub stats: MidQueryStats,
    /// The plan in force at each segment, starting with the initial plan;
    /// `plans.last()` finished the query.
    pub plans: Vec<PhysicalPlan>,
    /// Γ after the run: the caller's entries plus one exact entry per
    /// observed node.
    pub gamma: CardOverrides,
}

impl MidQueryReport {
    /// The plan that finished the query.
    pub fn final_plan(&self) -> &PhysicalPlan {
        // lint: panic-ok(constructor invariant: every MidQueryReport is built with the initial plan as plans[0] and plans only grows)
        self.plans.last().expect("at least the initial plan")
    }
}

/// The result of executing one query with mid-query re-optimization.
#[derive(Debug, Clone)]
pub struct MidQueryRun {
    /// Final join result.
    pub rows: RowSet,
    /// Aggregate output, when the query has an aggregate stage.
    pub agg: Option<AggOutput>,
    /// Executor counters summed over every segment (splices do no work and
    /// add nothing, so a switch-free run's totals equal straight-through
    /// execution's exactly).
    pub metrics: ExecMetrics,
    /// What the loop did.
    pub report: MidQueryReport,
}

impl MidQueryRun {
    /// Cardinality of the join result (before aggregation).
    pub fn join_rows(&self) -> u64 {
        self.rows.len() as u64
    }
}

/// Inputs of [`execute_mid_query`] beyond the query itself.
#[derive(Debug, Clone)]
pub struct MidQueryOpts {
    /// Seed Γ: the sampling loop's final Γ keeps its validated estimates
    /// for never-observed sets; an empty Γ replans from native statistics
    /// plus exact observations only. Exact observations are folded in
    /// either way.
    pub gamma: CardOverrides,
    /// Seed DP table: the sampling loop's final memo (built under the same
    /// `(query, optimizer, gamma)`) lets each replan re-cost only
    /// supersets of refined sets; an empty memo is always valid, just
    /// colder.
    pub memo: PlanMemo,
    /// Executor options for every segment.
    pub exec: ExecOpts,
    /// Safety cap on suspensions (see
    /// [`ReOptConfig::max_suspensions`](crate::ReOptConfig)): once the
    /// cap is reached the current plan finishes in one sealed segment;
    /// 0 skips stepping entirely (straight-through execution).
    pub max_suspensions: usize,
    /// Replan gate (see
    /// [`ReOptConfig::replan_discrepancy`](crate::ReOptConfig)): `None`
    /// replans at every suspension; `Some(f)` only when a newly observed
    /// join cardinality disagrees with the current belief by ≥ `f` (or
    /// was never estimated).
    pub replan_discrepancy: Option<f64>,
}

impl Default for MidQueryOpts {
    fn default() -> Self {
        Self::new()
    }
}

impl MidQueryOpts {
    /// The [`ReOptConfig`](crate::ReOptConfig) defaults: empty seeds, cap
    /// 64, gate 2.0.
    pub fn new() -> Self {
        MidQueryOpts {
            gamma: CardOverrides::new(),
            memo: PlanMemo::new(),
            exec: ExecOpts::default(),
            max_suspensions: 64,
            replan_discrepancy: Some(2.0),
        }
    }
}

/// Execute `plan` for `query` against `db` with the suspend → refine →
/// replan → resume loop (the `ReOptConfig::mid_query` execution path).
///
/// Queries the optimizer would route to GEQO (beyond `geqo_threshold`
/// relations) execute straight through: the genetic search cannot honor
/// pin boundaries, and partial replans there would risk re-executing
/// completed work.
pub fn execute_mid_query(
    db: &Database,
    optimizer: &Optimizer<'_>,
    query: &Query,
    start_plan: &PhysicalPlan,
    opts: MidQueryOpts,
) -> Result<MidQueryRun> {
    let MidQueryOpts {
        mut gamma,
        mut memo,
        exec: exec_opts,
        max_suspensions,
        replan_discrepancy,
    } = opts;
    // Exact counts observed mid-query describe *this* database state; the
    // carried memo must likewise match it (it self-clears if not).
    gamma.set_data_version(db.data_version());
    memo.set_data_version(db.data_version());
    // Queries the DP cannot re-plan (GEQO territory) gain nothing from
    // stepping — and neither does a zero suspension budget: run those
    // straight through, no checkpoint copies.
    if query.num_relations() > optimizer.config().geqo_threshold || max_suspensions == 0 {
        return execute_straight(db, query, start_plan, gamma, exec_opts);
    }
    // Resolve the env-backed executor knobs once up front: segments below
    // each construct their own (cheap) executor so operator spans nest
    // under their segment span, and none of them may re-read environment
    // variables on the way.
    let tracer = exec_opts.tracer.clone();
    let mut exec_opts = exec_opts;
    exec_opts.threads = exec_opts.effective_threads();
    exec_opts.columnar = Some(exec_opts.effective_columnar());
    let columnar = exec_opts.effective_columnar();
    let mut run_span = tracer.span(names::MIDQUERY_RUN);
    let run_tracer = tracer.under(&run_span);
    let mut store = CheckpointStore::new();
    let mut plan = start_plan.clone();
    let mut plans = vec![plan.clone()];
    let mut stats = MidQueryStats::default();
    let mut metrics = ExecMetrics::default();
    let exact_before = gamma.exact_len();

    let run = loop {
        let seg_span = run_tracer.span(names::MIDQUERY_SEGMENT);
        let seg_tracer = run_tracer.under(&seg_span);
        let splices_before = store.splices();
        let exec = Executor::with_opts(
            db,
            ExecOpts {
                tracer: seg_tracer.clone(),
                ..exec_opts.clone()
            },
        );
        let step = exec.run_step(query, &plan, &mut store)?;
        if seg_span.is_recording() {
            let spliced = store.splices().saturating_sub(splices_before);
            if spliced > 0 {
                // Zero-duration marker: this segment reused checkpointed
                // work instead of executing it.
                let mut sp = seg_tracer.span(names::MIDQUERY_SPLICE);
                sp.attr_u64("reused", spliced as u64);
            }
        }
        match step {
            ExecStep::Complete(run) => break run,
            ExecStep::Suspended {
                breaker,
                breaker_rows,
                metrics: segment,
            } => {
                drop(seg_span);
                stats.suspensions += 1;
                metrics.merge(&segment);
                if stats.suspensions >= max_suspensions {
                    // Cap hit: no replan can follow, so finish the current
                    // plan in one sealed segment instead of stepping (and
                    // checkpointing) breaker by breaker for nothing.
                    store.seal();
                    let seal_span = run_tracer.span(names::MIDQUERY_SEGMENT);
                    let exec = Executor::with_opts(
                        db,
                        ExecOpts {
                            tracer: run_tracer.under(&seal_span),
                            ..exec_opts.clone()
                        },
                    );
                    break exec.run_traced_cached(query, &plan, &mut store)?;
                }
                let mut sus_span = run_tracer.span(names::MIDQUERY_SUSPEND);
                if sus_span.is_recording() {
                    sus_span.attr_display("breaker", &breaker);
                    sus_span.attr_u64("breaker_rows", breaker_rows);
                }

                // Refine: every observed count becomes an exact Γ entry.
                // Sets whose believed value actually moved invalidate
                // their memo supersets (the standard Δ rule). The replan
                // gate watches the same sweep: a newly observed *join*
                // whose count disagrees with the current belief — Γ's
                // entry, or the optimizer's native estimate when Γ is
                // silent (the serving path seeds an empty Γ) — by the
                // configured factor makes re-entering the optimizer worth
                // its cost; exact confirmations of what the planner
                // already believed cannot move any plan choice the prior
                // round didn't already make.
                let mut changed: Vec<RelSet> = Vec::new();
                let mut disagree = replan_discrepancy.is_none();
                for (set, rows) in store.observed() {
                    let v = rows as f64;
                    let prior = gamma.get(set);
                    if prior != Some(v) {
                        changed.push(set);
                        if let (Some(factor), true) = (replan_discrepancy, set.len() >= 2) {
                            let believed = match prior {
                                Some(p) => p,
                                None => optimizer.estimate_rows(query, &gamma, set)?,
                            };
                            // Compared on a max(rows, 64) basis: a
                            // disagreement confined below ~64 rows (e.g.
                            // a min_rows-clamped estimate of 1 vs an
                            // observed 5) cannot move any cost by a
                            // material amount, whatever the ratio says.
                            let (a, b) = (believed.max(64.0), v.max(64.0));
                            disagree |= a / b >= factor || b / a >= factor;
                        }
                    }
                    gamma.insert_exact(set, v);
                }
                memo.invalidate_supersets(&changed);
                if sus_span.is_recording() {
                    sus_span.attr_u64("refined", changed.len() as u64);
                    sus_span.attr_bool("replan", disagree);
                }
                if !disagree {
                    continue; // observations confirm the plan: keep going
                }

                // ...and every pin evicts its supersets unconditionally:
                // an entry planned before this subtree completed may
                // decompose across the new boundary even if no cardinality
                // moved.
                let pins: Vec<PinnedLeaf> = store
                    .pins()
                    .into_iter()
                    .map(|(set, plan, rows)| PinnedLeaf {
                        set,
                        plan,
                        rows: rows as f64,
                    })
                    .collect();
                let pin_sets: Vec<RelSet> = pins.iter().map(|p| p.set).collect();
                memo.invalidate_supersets(&pin_sets);

                // Replan the remainder with completed subtrees pinned.
                let mut replan_span = run_tracer.under(&sus_span).span(names::MIDQUERY_REPLAN);
                let planned = optimizer.optimize_with_pinned(query, &gamma, &pins, &mut memo)?;
                stats.replans += 1;
                let switched = !planned.plan.same_structure(&plan);
                if replan_span.is_recording() {
                    replan_span.attr_u64("pins", pins.len() as u64);
                    replan_span.attr_bool("switched", switched);
                }
                if switched {
                    stats.plan_switches += 1;
                    plans.push(planned.plan.clone());
                }
                plan = planned.plan;
            }
        }
    };

    metrics.merge(&run.metrics);
    let agg = match &query.aggregate {
        Some(spec) => Some(aggregate_opts(
            db,
            query,
            &run.rows,
            spec,
            columnar,
            &mut metrics,
        )?),
        None => None,
    };
    stats.checkpoints = store.len();
    stats.splices = store.splices();
    stats.exact_gamma_entries = gamma.exact_len() - exact_before;
    if run_span.is_recording() {
        run_span.attr_u64("suspensions", stats.suspensions as u64);
        run_span.attr_u64("replans", stats.replans as u64);
        run_span.attr_u64("plan_switches", stats.plan_switches as u64);
        run_span.attr_u64("splices", stats.splices as u64);
    }
    Ok(MidQueryRun {
        rows: run.rows,
        agg,
        metrics,
        report: MidQueryReport {
            stats,
            plans,
            gamma,
        },
    })
}

/// Straight-through execution wrapped in the same result type — the
/// `mid_query: false` arm of [`crate::ReOptimizer::execute_with_opts`], so
/// A/B comparisons and the serving layer handle one shape.
pub fn execute_straight(
    db: &Database,
    query: &Query,
    plan: &PhysicalPlan,
    gamma: CardOverrides,
    exec_opts: ExecOpts,
) -> Result<MidQueryRun> {
    let columnar = exec_opts.effective_columnar();
    let exec = Executor::with_opts(db, exec_opts);
    let (rows, mut metrics) = exec.run_rowset(query, plan)?;
    let agg = match &query.aggregate {
        Some(spec) => Some(aggregate_opts(
            db,
            query,
            &rows,
            spec,
            columnar,
            &mut metrics,
        )?),
        None => None,
    };
    Ok(MidQueryRun {
        rows,
        agg,
        metrics,
        report: MidQueryReport {
            stats: MidQueryStats::default(),
            plans: vec![plan.clone()],
            gamma,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reopt::{ReOptConfig, ReOptimizer};
    use reopt_common::{ColId, RelId, TableId};
    use reopt_plan::query::ColRef;
    use reopt_plan::{Predicate, QueryBuilder};
    use reopt_sampling::{SampleConfig, SampleStore};
    use reopt_stats::{analyze_database, AnalyzeOpts};
    use reopt_storage::{Column, ColumnDef, LogicalType, Table, TableSchema};

    fn ott_db(k: usize, vals: i64, per: usize) -> Database {
        let mut db = Database::new();
        for t in 0..k {
            db.add_table_with(|id| {
                let schema = TableSchema::new(vec![
                    ColumnDef::new("a", LogicalType::Int),
                    ColumnDef::new("b", LogicalType::Int),
                ])?;
                let mut data = Vec::new();
                for v in 0..vals {
                    data.extend(std::iter::repeat_n(v, per));
                }
                let mut tbl = Table::new(
                    id,
                    format!("m{t}"),
                    schema,
                    vec![
                        Column::from_i64(LogicalType::Int, data.clone()),
                        Column::from_i64(LogicalType::Int, data),
                    ],
                )?;
                tbl.create_index(ColId::new(0))?;
                tbl.create_index(ColId::new(1))?;
                Ok(tbl)
            })
            .unwrap();
        }
        db
    }

    fn ott_query(k: usize, consts: &[i64]) -> Query {
        let mut qb = QueryBuilder::new();
        let rels: Vec<_> = (0..k).map(|i| qb.add_relation(TableId::from(i))).collect();
        for (i, &r) in rels.iter().enumerate() {
            qb.add_predicate(Predicate::eq(r, ColId::new(0), consts[i]));
        }
        for w in rels.windows(2) {
            qb.add_join(
                ColRef::new(w[0], ColId::new(1)),
                ColRef::new(w[1], ColId::new(1)),
            );
        }
        qb.build()
    }

    /// Canonical tuple-set view of a row set: relations in ascending id
    /// order, tuples sorted — plan-shape-independent result identity.
    fn canonical(rows: &RowSet) -> (Vec<RelId>, Vec<Vec<u32>>) {
        let mut rels: Vec<RelId> = rows.rels().to_vec();
        rels.sort();
        let mut tuples: Vec<Vec<u32>> = (0..rows.len())
            .map(|i| rels.iter().map(|&r| rows.rowids(r).unwrap()[i]).collect())
            .collect();
        tuples.sort_unstable();
        (rels, tuples)
    }

    #[test]
    fn mid_query_is_result_equivalent_to_straight_through() {
        let db = ott_db(4, 50, 20);
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let samples = SampleStore::build(&db, SampleConfig::default()).unwrap();
        let opt = reopt_optimizer::Optimizer::new(&db, &stats);
        for consts in [vec![0i64, 0, 0, 0], vec![0, 0, 0, 1]] {
            let q = ott_query(4, &consts);
            let straight = ReOptimizer::with_config(
                &opt,
                &samples,
                ReOptConfig {
                    mid_query: false,
                    ..ReOptConfig::with_threads(1)
                },
            )
            .execute(&q)
            .unwrap();
            let mid = ReOptimizer::with_config(
                &opt,
                &samples,
                ReOptConfig {
                    mid_query: true,
                    replan_discrepancy: None, // exhaustive: replan every time
                    ..ReOptConfig::with_threads(1)
                },
            )
            .execute(&q)
            .unwrap();
            assert_eq!(
                canonical(&straight.run.rows),
                canonical(&mid.run.rows),
                "{consts:?}"
            );
            // 4 relations, 3 joins, 2 non-root: exactly two suspensions.
            assert_eq!(mid.run.report.stats.suspensions, 2, "{consts:?}");
            assert_eq!(mid.run.report.stats.replans, 2, "{consts:?}");
            assert!(mid.run.report.stats.exact_gamma_entries > 0);
            // Every exact Γ entry matches the straight-through observation
            // of the same set wherever that set appears in its trace.
            let exec = Executor::with_opts(&db, ExecOpts::serial());
            let trace = exec
                .run_traced(&q, mid.run.report.final_plan())
                .unwrap()
                .node_cards;
            for (set, rows) in trace {
                if mid.run.report.gamma.is_exact(set) {
                    assert_eq!(
                        mid.run.report.gamma.get(set),
                        Some(rows as f64),
                        "{consts:?}: Γ({set}) not exact"
                    );
                }
            }
        }
    }

    #[test]
    fn unchanged_remainder_resumes_with_zero_extra_work() {
        // Drive Γ to an *exact fixpoint* first: plan, execute traced, fold
        // every observed cardinality in as exact, re-plan — until the plan
        // stabilizes. Mid-query execution from that plan then observes
        // nothing it didn't already know, every replan returns the same
        // plan, and the summed segment metrics must equal straight-through
        // execution of that plan exactly — resumption costs nothing.
        let db = ott_db(4, 50, 20);
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let opt = reopt_optimizer::Optimizer::new(&db, &stats);
        let q = ott_query(4, &[0, 0, 0, 0]);
        let exec = Executor::with_opts(&db, ExecOpts::serial());

        let mut gamma = CardOverrides::new();
        let mut plan = opt.optimize_with(&q, &gamma).unwrap().plan;
        for _ in 0..8 {
            let trace = exec.run_traced(&q, &plan).unwrap().node_cards;
            for (set, rows) in trace {
                gamma.insert_exact(set, rows as f64);
            }
            let next = opt.optimize_with(&q, &gamma).unwrap().plan;
            if next.same_structure(&plan) {
                break;
            }
            plan = next;
        }

        let base = exec.run_traced(&q, &plan).unwrap();
        let mid = execute_mid_query(
            &db,
            &opt,
            &q,
            &plan,
            MidQueryOpts {
                gamma,
                exec: ExecOpts::serial(),
                replan_discrepancy: None,
                ..MidQueryOpts::new()
            },
        )
        .unwrap();
        assert_eq!(
            mid.report.stats.plan_switches, 0,
            "exact-fixpoint remainder must replan to the same plan"
        );
        assert!(mid.report.stats.suspensions > 0);
        assert!(mid.report.stats.replans > 0);
        assert_eq!(mid.metrics.rows_scanned, base.metrics.rows_scanned);
        assert_eq!(mid.metrics.rows_produced, base.metrics.rows_produced);
        assert_eq!(mid.metrics.index_probes, base.metrics.index_probes);
        assert!(mid.report.stats.splices > 0, "resume must splice");
    }

    #[test]
    fn straight_wrapper_matches_plain_execution() {
        let db = ott_db(3, 20, 5);
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let samples = SampleStore::build(&db, SampleConfig::default()).unwrap();
        let opt = reopt_optimizer::Optimizer::new(&db, &stats);
        let q = ott_query(3, &[0, 0, 0]);
        let re = ReOptimizer::with_config(&opt, &samples, ReOptConfig::with_threads(1));
        let executed = re.execute(&q).unwrap();
        assert_eq!(executed.run.report.stats, MidQueryStats::default());
        let exec = Executor::with_opts(&db, ExecOpts::serial());
        let (rows, _) = exec.run_rowset(&q, &executed.report.final_plan).unwrap();
        assert_eq!(canonical(&rows), canonical(&executed.run.rows));
    }
}
