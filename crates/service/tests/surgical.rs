//! The surgical-refresh equivalence suite (ISSUE 10 acceptance): a
//! drift reaction that refreshes only the drifted tables must be
//! *bit-identical* — plans, validated costs, executed rows — to tearing
//! the whole service down and rebuilding it from the post-ingest data,
//! while everything the drift did not touch survives by pointer
//! identity (`Arc::ptr_eq`), not by recomputation.

use std::sync::Arc;

use reopt_executor::ExecOpts;
use reopt_plan::query::ColRef;
use reopt_plan::{Predicate, Query, QueryBuilder};
use reopt_sampling::SampleConfig;
use reopt_service::{DriftConfig, PlanSource, QueryService, ServiceConfig};
use reopt_stats::AnalyzeOpts;
use reopt_storage::{Database, Value};
use reopt_workloads::ott::{
    build_ott_database, ott_query, recommended_sample_ratio, OttConfig, COL_A, COL_B,
    OTT_TABLE_NAMES,
};

fn small_ott() -> OttConfig {
    OttConfig {
        rows_per_value: 12,
        distinct_values: [60, 50, 40, 30, 20, 10],
        ..Default::default()
    }
}

fn sample_config() -> SampleConfig {
    SampleConfig {
        ratio: recommended_sample_ratio(&small_ott()),
        ..Default::default()
    }
}

/// revalidate_ratio: None so a surgically-evicted template re-optimizes
/// in full — the equivalence below compares that full loop, not the
/// re-admission shortcut.
fn svc_config(threads: usize, columnar: bool) -> ServiceConfig {
    ServiceConfig {
        exec: ExecOpts {
            columnar: Some(columnar),
            ..ExecOpts::with_threads(threads)
        },
        drift: DriftConfig {
            revalidate_ratio: None,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn service_over(db: Arc<Database>, svc: ServiceConfig) -> Arc<QueryService> {
    Arc::new(
        QueryService::from_database(db, &AnalyzeOpts::default(), sample_config(), svc).unwrap(),
    )
}

/// A chain query over an arbitrary run of OTT tables (`ott_query` always
/// starts at table 0; the untouched-table templates must not).
fn chain_query(db: &Database, tables: &[usize], constant: i64) -> Query {
    let mut qb = QueryBuilder::new();
    let mut rels = Vec::new();
    for &t in tables {
        let rel = qb.add_relation(db.table_by_name(OTT_TABLE_NAMES[t]).unwrap().id());
        qb.add_predicate(Predicate::eq(rel, COL_A, constant));
        rels.push(rel);
    }
    for w in rels.windows(2) {
        qb.add_join(ColRef::new(w[0], COL_B), ColRef::new(w[1], COL_B));
    }
    qb.build()
}

/// The skew storm used throughout: quadruple `ott_lineitem` onto one hot
/// value, which crosses the default 0.25 drift threshold on its own.
fn storm(service: &QueryService) {
    let rows: Vec<Vec<Value>> = (0..3 * 60 * 12)
        .map(|_| vec![Value::Int(0), Value::Int(0)])
        .collect();
    let report = service.append_rows("ott_lineitem", &rows).unwrap();
    assert!(report.refreshed, "storm must trigger the surgical refresh");
}

/// After a surgical refresh, the service must serve exactly what a
/// from-scratch service over the post-ingest database serves: same plan
/// fingerprints, bit-equal validated costs, same executed rows — at every
/// thread count × executor engine.
#[test]
fn surgical_refresh_is_bit_identical_to_a_full_rebuild() {
    let mut reference: Option<(u64, u64)> = None;
    for threads in [1usize, 4] {
        for columnar in [false, true] {
            let surgical = service_over(
                Arc::new(build_ott_database(&small_ott()).unwrap()),
                svc_config(threads, columnar),
            );
            let touched = ott_query(surgical.engine().db(), &[0, 0, 0, 0]).unwrap();
            let untouched = chain_query(surgical.engine().db(), &[1, 2, 3], 0);
            surgical.execute(&touched).unwrap();
            surgical.execute(&untouched).unwrap();

            storm(&surgical);

            let s_touched = surgical.execute(&touched).unwrap();
            let s_untouched = surgical.execute(&untouched).unwrap();
            assert_eq!(
                s_touched.response.source,
                PlanSource::ColdMiss,
                "drifted template re-optimizes ({threads} threads, columnar={columnar})"
            );
            assert_eq!(
                s_untouched.response.source,
                PlanSource::WarmHit,
                "untouched template keeps serving warm"
            );

            // The from-scratch control: fresh ANALYZE, fresh samples, empty
            // caches — over the identical post-ingest database.
            let rebuilt = service_over(
                Arc::clone(surgical.engine().db()),
                svc_config(threads, columnar),
            );
            let r_touched = rebuilt.execute(&touched).unwrap();
            let r_untouched = rebuilt.execute(&untouched).unwrap();

            for (label, s, r) in [
                ("touched", &s_touched, &r_touched),
                ("untouched", &s_untouched, &r_untouched),
            ] {
                let tag = format!("{label} ({threads} threads, columnar={columnar})");
                assert_eq!(
                    s.response.plan.fingerprint(),
                    r.response.plan.fingerprint(),
                    "plan diverged: {tag}"
                );
                assert_eq!(
                    s.response.validated_cost.to_bits(),
                    r.response.validated_cost.to_bits(),
                    "validated cost diverged ({} vs {}): {tag}",
                    s.response.validated_cost,
                    r.response.validated_cost
                );
                assert_eq!(
                    s.output.join_rows, r.output.join_rows,
                    "executed rows diverged: {tag}"
                );
                assert_eq!(s.output.agg, r.output.agg, "aggregates diverged: {tag}");
            }

            // And every (threads, columnar) combination agrees with the first.
            let rows = (s_touched.output.join_rows, s_untouched.output.join_rows);
            match reference {
                None => reference = Some(rows),
                Some(want) => assert_eq!(
                    rows, want,
                    "rows moved across ({threads} threads, columnar={columnar})"
                ),
            }
        }
    }
}

/// The proportionality claim, checked by pointer: everything a
/// single-table storm did not touch — the other five tables' samples, the
/// untouched template's cached plan, the disjoint dry-run row sets —
/// survives the refresh as the *same allocation*, not an equal rebuild.
#[test]
fn untouched_state_survives_a_surgical_refresh_by_pointer() {
    let service = service_over(
        Arc::new(build_ott_database(&small_ott()).unwrap()),
        svc_config(1, false),
    );
    let db = Arc::clone(service.engine().db());
    let touched = ott_query(&db, &[0, 0]).unwrap();
    let untouched = chain_query(&db, &[2, 3, 4], 0);
    service.submit(&touched).unwrap();
    let warm_plan = service.submit(&untouched).unwrap().plan;

    let before: Vec<_> = (0..6)
        .map(|t| {
            let engine = service.engine();
            let samples = engine.samples().database();
            samples.table_arc(db.table_by_name(OTT_TABLE_NAMES[t]).unwrap().id())
        })
        .collect::<Result<_, _>>()
        .unwrap();
    let entries_before = service.sample_cache().stats().entries;
    assert!(entries_before > 0, "dry runs populated the shared cache");

    storm(&service);

    // Samples: only the stormed table was redrawn.
    for (t, old) in before.iter().enumerate() {
        let engine = service.engine();
        let samples = engine.samples().database();
        let new = samples
            .table_arc(db.table_by_name(OTT_TABLE_NAMES[t]).unwrap().id())
            .unwrap();
        if t == 0 {
            assert!(
                !Arc::ptr_eq(old, &new),
                "the drifted table's sample must be redrawn"
            );
        } else {
            assert!(
                Arc::ptr_eq(old, &new),
                "untouched sample {} was rebuilt instead of reused",
                OTT_TABLE_NAMES[t]
            );
        }
    }

    // Plans: the untouched template still serves the identical Arc; the
    // touched one was surgically marked.
    let still_warm = service.submit(&untouched).unwrap();
    assert_eq!(still_warm.source, PlanSource::WarmHit);
    assert!(
        Arc::ptr_eq(&still_warm.plan, &warm_plan),
        "untouched cached plan must survive as the same allocation"
    );
    assert_eq!(
        service.submit(&touched).unwrap().source,
        PlanSource::ColdMiss
    );
    let stats = service.stats();
    assert_eq!(stats.table_evictions, 1, "{stats:?}");
    assert_eq!(stats.stale_evictions, 0, "{stats:?}");

    // Dry-run row sets disjoint from the storm migrated to the new data
    // version instead of being dropped with it.
    let entries_after = service.sample_cache().stats().entries;
    assert!(
        entries_after > 0,
        "disjoint sample-cache entries must survive the refresh"
    );
    assert!(entries_after <= entries_before);
}
