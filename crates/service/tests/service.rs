//! End-to-end service tests over the OTT workload: single-flight
//! admission, template reuse across literals, staleness/LRU eviction, and
//! cross-template sample-cache pooling.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use reopt_common::{ColId, TableId};
use reopt_plan::query::ColRef;
use reopt_plan::{Predicate, Query, QueryBuilder};
use reopt_sampling::SampleConfig;
use reopt_service::{PlanSource, QueryService, ServiceConfig};
use reopt_stats::AnalyzeOpts;
use reopt_storage::{Column, ColumnDef, Database, LogicalType, Table, TableSchema};
use reopt_workloads::ott::{build_ott_database, ott_query, recommended_sample_ratio, OttConfig};

fn ott_db(config: &OttConfig) -> Arc<Database> {
    Arc::new(build_ott_database(config).unwrap())
}

fn service_with(config: &OttConfig, svc: ServiceConfig) -> Arc<QueryService> {
    Arc::new(
        QueryService::from_database(
            ott_db(config),
            &AnalyzeOpts::default(),
            SampleConfig {
                ratio: recommended_sample_ratio(config),
                ..Default::default()
            },
            svc,
        )
        .unwrap(),
    )
}

fn small_ott() -> OttConfig {
    OttConfig {
        rows_per_value: 12,
        distinct_values: [60, 50, 40, 30, 20, 10],
        ..Default::default()
    }
}

/// ISSUE acceptance: K threads submit the same template concurrently;
/// exactly one re-optimization runs, every thread gets the identical
/// plan, and subsequent warm hits are an order of magnitude faster than
/// the cold miss.
#[test]
fn single_flight_coalesces_concurrent_sessions() {
    const K: usize = 8;
    let service = service_with(&small_ott(), ServiceConfig::default());
    let q = ott_query(service.engine().db(), &[0, 0, 0, 0, 1]).unwrap();
    let barrier = Barrier::new(K);

    let responses: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..K)
            .map(|_| {
                let service = &service;
                let q = &q;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    service.submit(q).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let stats = service.stats();
    // Exactly one re-optimization ran, however the K arrivals raced.
    assert_eq!(stats.reopts_run, 1, "{stats:?}");
    assert_eq!(stats.cold_misses, 1, "{stats:?}");
    assert_eq!(stats.submitted, K as u64);
    assert_eq!(stats.errors, 0);
    assert_eq!(
        stats.warm_hits + stats.coalesced,
        (K - 1) as u64,
        "{stats:?}"
    );

    // All K sessions hold the identical plan.
    let fp0 = responses[0].plan.fingerprint();
    for r in &responses {
        assert_eq!(r.plan.fingerprint(), fp0);
        assert!(r.plan.same_structure(&responses[0].plan));
        assert!(r.rounds >= 1);
    }
    let cold: Vec<_> = responses
        .iter()
        .filter(|r| r.source == PlanSource::ColdMiss)
        .collect();
    assert_eq!(cold.len(), 1);

    // Warm hits must be >10× cheaper than the cold miss. Average over a
    // batch so one scheduler hiccup can't flip the assertion.
    let cold_latency = cold[0].latency;
    let warm_batch = 50;
    let mut warm_total = Duration::ZERO;
    for _ in 0..warm_batch {
        let r = service.submit(&q).unwrap();
        assert_eq!(r.source, PlanSource::WarmHit);
        warm_total += r.latency;
    }
    let warm_mean = warm_total / warm_batch;
    assert!(
        cold_latency > warm_mean * 10,
        "cold {cold_latency:?} not >10x warm mean {warm_mean:?}"
    );
}

#[test]
fn different_literals_share_one_template() {
    let service = service_with(&small_ott(), ServiceConfig::default());
    let engine = service.engine();
    let db = engine.db();
    let cold = service
        .submit(&ott_query(db, &[0, 0, 0, 1]).unwrap())
        .unwrap();
    assert_eq!(cold.source, PlanSource::ColdMiss);
    // Same shape, different constants: a warm hit on the same entry.
    let warm = service
        .submit(&ott_query(db, &[3, 1, 2, 0]).unwrap())
        .unwrap();
    assert_eq!(warm.source, PlanSource::WarmHit);
    assert_eq!(warm.template, cold.template);
    assert!(warm.plan.same_structure(&cold.plan));
    // A different shape is its own entry.
    let other = service.submit(&ott_query(db, &[0, 0, 0]).unwrap()).unwrap();
    assert_eq!(other.source, PlanSource::ColdMiss);
    assert_ne!(other.template, cold.template);
    assert_eq!(service.stats().reopts_run, 2);
}

#[test]
fn stats_bump_lazily_reoptimizes() {
    let service = service_with(&small_ott(), ServiceConfig::default());
    let q = ott_query(service.engine().db(), &[0, 0, 0, 1]).unwrap();
    assert_eq!(service.submit(&q).unwrap().source, PlanSource::ColdMiss);
    assert_eq!(service.submit(&q).unwrap().source, PlanSource::WarmHit);
    let v = service.bump_stats_version();
    assert_eq!(v, 1);
    // The stale plan is evicted on touch and re-optimized once.
    assert_eq!(service.submit(&q).unwrap().source, PlanSource::ColdMiss);
    assert_eq!(service.submit(&q).unwrap().source, PlanSource::WarmHit);
    let stats = service.stats();
    assert_eq!(stats.stale_evictions, 1, "{stats:?}");
    assert_eq!(stats.reopts_run, 2, "{stats:?}");
    // The sample cache was flushed with the stats.
    assert_eq!(service.stats_version(), 1);
}

#[test]
fn plan_cache_respects_capacity() {
    let service = service_with(
        &small_ott(),
        ServiceConfig {
            plan_cache_capacity: 2,
            ..Default::default()
        },
    );
    let engine = service.engine();
    let db = engine.db();
    let q2 = ott_query(db, &[0, 0]).unwrap();
    let q3 = ott_query(db, &[0, 0, 0]).unwrap();
    let q4 = ott_query(db, &[0, 0, 0, 0]).unwrap();
    service.submit(&q2).unwrap();
    service.submit(&q3).unwrap();
    // Touch q2 so q3 is the LRU victim when q4 lands.
    assert_eq!(service.submit(&q2).unwrap().source, PlanSource::WarmHit);
    service.submit(&q4).unwrap();
    let stats = service.stats();
    assert_eq!(stats.cached_templates, 2, "{stats:?}");
    assert_eq!(stats.lru_evictions, 1, "{stats:?}");
    assert_eq!(service.submit(&q2).unwrap().source, PlanSource::WarmHit);
    assert_eq!(service.submit(&q3).unwrap().source, PlanSource::ColdMiss);
}

/// Uniform chain database: `k` identical tables R(A, B) with B = A,
/// `vals` distinct values × `per` rows — the fixture whose re-optimized
/// plans demonstrably overlap in subtrees across chain lengths (OTT's
/// selective-first chains pivot around the odd filtered relation, so
/// prefix queries share nothing there).
fn uniform_db(k: usize, vals: i64, per: usize) -> Arc<Database> {
    let mut db = Database::new();
    for t in 0..k {
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("a", LogicalType::Int),
                ColumnDef::new("b", LogicalType::Int),
            ])?;
            let mut data = Vec::new();
            for v in 0..vals {
                data.extend(std::iter::repeat_n(v, per));
            }
            let mut tbl = Table::new(
                id,
                format!("u{t}"),
                schema,
                vec![
                    Column::from_i64(LogicalType::Int, data.clone()),
                    Column::from_i64(LogicalType::Int, data),
                ],
            )?;
            tbl.create_index(ColId::new(0))?;
            tbl.create_index(ColId::new(1))?;
            Ok(tbl)
        })
        .unwrap();
    }
    Arc::new(db)
}

fn chain_query(consts: &[i64]) -> Query {
    let mut qb = QueryBuilder::new();
    let rels: Vec<_> = (0..consts.len())
        .map(|i| qb.add_relation(TableId::from(i)))
        .collect();
    for (i, &r) in rels.iter().enumerate() {
        qb.add_predicate(Predicate::eq(r, ColId::new(0), consts[i]));
    }
    for w in rels.windows(2) {
        qb.add_join(
            ColRef::new(w[0], ColId::new(1)),
            ColRef::new(w[1], ColId::new(1)),
        );
    }
    qb.build()
}

#[test]
fn cold_misses_on_different_templates_share_sample_runs() {
    let db = uniform_db(5, 50, 20);
    let mk_service = |share: bool| {
        Arc::new(
            QueryService::from_database(
                db.clone(),
                &AnalyzeOpts::default(),
                SampleConfig {
                    ratio: 0.5,
                    ..Default::default()
                },
                ServiceConfig {
                    share_sample_runs: share,
                    ..Default::default()
                },
            )
            .unwrap(),
        )
    };
    // Shared service: the 4-chain reuses subtrees the 5-chain validated
    // (same tables, identical predicates on the shared prefix).
    let shared = mk_service(true);
    shared.submit(&chain_query(&[0, 0, 0, 0, 1])).unwrap();
    let executed_after_first = shared.stats().sample_cache.executed;
    shared.submit(&chain_query(&[0, 0, 0, 0])).unwrap();
    let second_executed = shared.stats().sample_cache.executed - executed_after_first;

    // Isolated service: the 4-chain alone, from a cold cache.
    let isolated = mk_service(true);
    isolated.submit(&chain_query(&[0, 0, 0, 0])).unwrap();
    let alone_executed = isolated.stats().sample_cache.executed;

    assert!(
        second_executed < alone_executed,
        "sharing must skip subtree executions: {second_executed} vs {alone_executed} alone"
    );

    // With sharing off the pooled cache stays untouched.
    let private = mk_service(false);
    private.submit(&chain_query(&[0, 0, 0, 0])).unwrap();
    assert_eq!(private.stats().sample_cache.executed, 0);
}

#[test]
fn invalid_queries_error_and_are_never_cached() {
    let service = service_with(&small_ott(), ServiceConfig::default());
    let engine = service.engine();
    let db = engine.db();
    // Disconnected join graph: relations 0 and 1 with no join edge.
    let mut qb = reopt_plan::QueryBuilder::new();
    let t0 = db.table_by_name("ott_lineitem").unwrap().id();
    let t1 = db.table_by_name("ott_orders").unwrap().id();
    qb.add_relation(t0);
    qb.add_relation(t1);
    let bad = qb.build();
    assert!(service.submit(&bad).is_err());
    assert!(service.submit(&bad).is_err());
    let stats = service.stats();
    assert_eq!(stats.errors, 2, "{stats:?}");
    assert_eq!(stats.cached_templates, 0, "{stats:?}");
    assert_eq!(stats.reopts_run, 0, "validation failures never plan");
}

#[test]
fn served_queries_execute_identically_at_every_thread_count() {
    use reopt_executor::ExecOpts;
    // One service per thread setting (the exec knob is service-wide);
    // the plan, join cardinality, and aggregate-free output must agree.
    let mk = |threads: usize| {
        service_with(
            &small_ott(),
            ServiceConfig {
                exec: ExecOpts::with_threads(threads),
                ..Default::default()
            },
        )
    };
    let serial_svc = mk(1);
    let q = ott_query(serial_svc.engine().db(), &[0, 0, 0, 0]).unwrap();
    let serial = serial_svc.execute(&q).unwrap();
    assert_eq!(serial.response.source, PlanSource::ColdMiss);
    // A second execute is a warm hit that still runs the plan.
    let warm = serial_svc.execute(&q).unwrap();
    assert_eq!(warm.response.source, PlanSource::WarmHit);
    assert_eq!(warm.output.join_rows, serial.output.join_rows);
    for threads in [2, 8] {
        let svc = mk(threads);
        let q = ott_query(svc.engine().db(), &[0, 0, 0, 0]).unwrap();
        let out = svc.execute(&q).unwrap();
        assert_eq!(out.output.join_rows, serial.output.join_rows, "{threads}");
        assert!(out
            .response
            .plan
            .same_structure(&serial.response.plan.clone()));
    }
}

#[test]
fn sessions_are_independent_handles() {
    let service = service_with(&small_ott(), ServiceConfig::default());
    let q = ott_query(service.engine().db(), &[0, 0]).unwrap();
    let mut a = service.session();
    let mut b = service.session();
    assert_ne!(a.id(), b.id());
    a.submit(&q).unwrap();
    a.submit(&q).unwrap();
    b.submit(&q).unwrap();
    assert_eq!(a.queries_submitted(), 2);
    assert_eq!(b.queries_submitted(), 1);
    assert_eq!(a.service().stats().submitted, 3);
}

/// Mid-query re-optimization behind `ReOptConfig::mid_query`: the execute
/// path suspends/replans/resumes, reports its counters, and returns the
/// same answer (and the same aggregates) as the straight-through service.
#[test]
fn mid_query_execute_is_result_equivalent() {
    let config = small_ott();
    let straight = service_with(&config, ServiceConfig::default());
    let mid = service_with(
        &config,
        ServiceConfig {
            reopt: reopt_core::ReOptConfig {
                mid_query: true,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    for consts in [vec![0i64, 0, 0, 0, 0], vec![0, 0, 0, 1, 0]] {
        let qa = ott_query(straight.engine().db(), &consts).unwrap();
        let qb = ott_query(mid.engine().db(), &consts).unwrap();
        let a = straight.execute(&qa).unwrap();
        let b = mid.execute(&qb).unwrap();
        assert!(a.mid_query.is_none());
        let stats = b.mid_query.expect("mid-query counters must be reported");
        assert_eq!(a.output.join_rows, b.output.join_rows, "{consts:?}");
        assert_eq!(a.output.agg, b.output.agg, "{consts:?}");
        assert!(stats.suspensions > 0, "{consts:?}: 5-way join must suspend");
        // The default discrepancy gate replans only on genuine surprise —
        // observations that merely confirm the (already-repaired) plan's
        // estimates skip the optimizer.
        assert!(stats.replans <= stats.suspensions);
        assert!(stats.splices > 0, "{consts:?}: resume must splice");
    }
    // Warm hits keep working with the knob on (plan cache unaffected).
    let q = ott_query(mid.engine().db(), &[0, 0, 0, 0, 0]).unwrap();
    let again = mid.execute(&q).unwrap();
    assert_eq!(again.response.source, PlanSource::WarmHit);
    assert!(again.mid_query.is_some());
}
