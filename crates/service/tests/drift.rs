//! The drifting-workload suite: cached plans must survive benign ingest
//! and die — automatically, from *measured* drift — when the data moves
//! underneath them. No test here calls `bump_stats_version`; eviction is
//! the drift monitor's job now.

use std::sync::Arc;

use reopt_sampling::SampleConfig;
use reopt_service::{DriftConfig, PlanSource, QueryService, ServiceConfig};
use reopt_stats::AnalyzeOpts;
use reopt_storage::Value;
use reopt_telemetry::names;
use reopt_workloads::ott::{build_ott_database, ott_query, recommended_sample_ratio, OttConfig};

fn small_ott() -> OttConfig {
    OttConfig {
        rows_per_value: 12,
        distinct_values: [60, 50, 40, 30, 20, 10],
        ..Default::default()
    }
}

fn service_with(svc: ServiceConfig) -> Arc<QueryService> {
    let config = small_ott();
    Arc::new(
        QueryService::from_database(
            Arc::new(build_ott_database(&config).unwrap()),
            &AnalyzeOpts::default(),
            SampleConfig {
                ratio: recommended_sample_ratio(&config),
                ..Default::default()
            },
            svc,
        )
        .unwrap(),
    )
}

/// `n` rows of `(v, v)` — OTT-shaped, so appends stay join-compatible.
fn rows_of(v: i64, n: usize) -> Vec<Vec<Value>> {
    (0..n).map(|_| vec![Value::Int(v), Value::Int(v)]).collect()
}

/// A small batch that follows the existing uniform distribution: one row
/// per live value. Nudges row counts without moving the shape much.
fn uniform_batch(values: i64) -> Vec<Vec<Value>> {
    (0..values)
        .map(|v| vec![Value::Int(v), Value::Int(v)])
        .collect()
}

#[test]
fn under_threshold_ingest_keeps_cached_plans() {
    let service = service_with(ServiceConfig::default());
    let q = {
        let engine = service.engine();
        ott_query(engine.db(), &[0, 0, 0, 1]).unwrap()
    };
    assert_eq!(service.submit(&q).unwrap().source, PlanSource::ColdMiss);
    assert_eq!(service.submit(&q).unwrap().source, PlanSource::WarmHit);

    let before = service.engine().data_version();
    let report = service
        .append_rows("ott_lineitem", &uniform_batch(60))
        .unwrap();
    assert_eq!(report.rows_appended, 60);
    assert!(!report.refreshed, "benign ingest must not refresh");
    assert!(
        report.drift < 0.25,
        "uniform one-per-value batch read as drift {}",
        report.drift
    );
    assert!(report.drift > 0.0, "row counts did move");
    assert!(report.data_version > before);
    assert_eq!(report.stats_version, 0);

    // The new rows are live (the served database grew) …
    let engine = service.engine();
    let table = engine.db().table_by_name("ott_lineitem").unwrap();
    assert_eq!(table.row_count(), 60 * 12 + 60);
    // … and the cached plan kept serving: no eviction of any kind.
    assert_eq!(service.submit(&q).unwrap().source, PlanSource::WarmHit);
    let stats = service.stats();
    assert_eq!(stats.stale_evictions, 0);
    assert_eq!(stats.reopts_run, 1);
}

#[test]
fn measured_drift_auto_evicts_stale_plans() {
    // revalidate_ratio: None pins the surgical path to a full
    // re-optimization on the next touch (the re-validation tiers get
    // their own tests below).
    let service = service_with(ServiceConfig {
        drift: DriftConfig {
            revalidate_ratio: None,
            ..Default::default()
        },
        ..Default::default()
    });
    let q = {
        let engine = service.engine();
        ott_query(engine.db(), &[0, 0, 0, 1]).unwrap()
    };
    let cold = service.submit(&q).unwrap();
    assert_eq!(cold.source, PlanSource::ColdMiss);
    assert_eq!(service.submit(&q).unwrap().source, PlanSource::WarmHit);

    // Skew storm: quadruple ott_lineitem with a single hot value. The MCV
    // mass collapses onto 0, so total-variation distance alone crosses the
    // threshold — nobody calls bump_stats_version.
    let report = service
        .append_rows("ott_lineitem", &rows_of(0, 3 * 60 * 12))
        .unwrap();
    assert!(
        report.drift >= 0.25,
        "skew storm only measured drift {}",
        report.drift
    );
    assert!(report.refreshed, "over-threshold drift must refresh");
    assert_eq!(
        report.drifted_tables,
        vec![service.engine().db().table_id("ott_lineitem").unwrap()],
        "exactly the stormed table drifted"
    );
    assert_eq!(
        report.stats_version, 0,
        "a surgical refresh must NOT bump the global stats version"
    );

    // The stale plan is marked on the surgical eviction and re-optimized
    // against the post-drift samples on its next touch.
    let redo = service.submit(&q).unwrap();
    assert_eq!(
        redo.source,
        PlanSource::ColdMiss,
        "stale plan must not keep serving after measured drift"
    );
    let stats = service.stats();
    assert!(stats.table_evictions >= 1, "{stats:?}");
    assert_eq!(
        stats.stale_evictions, 0,
        "surgical eviction must not masquerade as a version flush: {stats:?}"
    );
    assert_eq!(stats.reopts_run, 2, "{stats:?}");

    // Post-refresh, the template is warm again.
    assert_eq!(service.submit(&q).unwrap().source, PlanSource::WarmHit);
}

#[test]
fn revalidation_readmits_a_plan_within_the_band() {
    // An enormous acceptance band: whatever the re-validated cost is, the
    // stale plan is re-admitted after one dry run — no re-optimization.
    let service = service_with(ServiceConfig {
        drift: DriftConfig {
            revalidate_ratio: Some(1e18),
            ..Default::default()
        },
        ..Default::default()
    });
    let q = {
        let engine = service.engine();
        ott_query(engine.db(), &[0, 0, 0, 1]).unwrap()
    };
    assert_eq!(service.submit(&q).unwrap().source, PlanSource::ColdMiss);

    service
        .append_rows("ott_lineitem", &rows_of(0, 3 * 60 * 12))
        .unwrap();

    let redo = service.submit(&q).unwrap();
    assert_eq!(
        redo.source,
        PlanSource::Revalidated,
        "{:?}",
        service.stats()
    );
    let stats = service.stats();
    assert_eq!(
        stats.reopts_run, 1,
        "re-admission skips the loop: {stats:?}"
    );
    assert_eq!(stats.revalidations, 1, "{stats:?}");
    assert_eq!(stats.revalidations_saved, 1, "{stats:?}");
    // The re-admitted plan serves warm from here on.
    assert_eq!(service.submit(&q).unwrap().source, PlanSource::WarmHit);
}

#[test]
fn revalidation_rejects_an_out_of_band_cost() {
    // ratio 1.0 accepts only a bit-identical cost; the skew storm moves
    // the validated cost, so the re-validation runs — and then rejects.
    let service = service_with(ServiceConfig {
        drift: DriftConfig {
            revalidate_ratio: Some(1.0),
            ..Default::default()
        },
        ..Default::default()
    });
    let q = {
        let engine = service.engine();
        ott_query(engine.db(), &[0, 0, 0, 1]).unwrap()
    };
    assert_eq!(service.submit(&q).unwrap().source, PlanSource::ColdMiss);

    service
        .append_rows("ott_lineitem", &rows_of(0, 3 * 60 * 12))
        .unwrap();

    let redo = service.submit(&q).unwrap();
    assert_eq!(redo.source, PlanSource::ColdMiss, "{:?}", service.stats());
    let stats = service.stats();
    assert_eq!(stats.revalidations, 1, "the tier ran: {stats:?}");
    assert_eq!(stats.revalidations_saved, 0, "… and rejected: {stats:?}");
    assert_eq!(stats.reopts_run, 2, "{stats:?}");
}

#[test]
fn zero_row_ingest_is_a_quiescent_no_op() {
    let service = service_with(ServiceConfig::default());
    let q = {
        let engine = service.engine();
        ott_query(engine.db(), &[0, 0, 0, 1]).unwrap()
    };
    let cold = service.submit(&q).unwrap();

    let report = service.append_rows("ott_lineitem", &[]).unwrap();
    assert_eq!(report.rows_appended, 0);
    assert_eq!(report.drift, 0.0, "nothing changed, nothing drifted");
    assert!(!report.refreshed);
    // The touched table tail-merges an empty range; the other five are
    // reused verbatim; nobody rescans.
    assert_eq!(report.tables_merged, 1);
    assert_eq!(report.tables_reused, 5);
    assert_eq!(report.tables_rescanned, 0);

    let warm = service.submit(&q).unwrap();
    assert_eq!(warm.source, PlanSource::WarmHit);
    assert_eq!(warm.plan.fingerprint(), cold.plan.fingerprint());
    assert_eq!(service.stats().stale_evictions, 0);
}

#[test]
fn ttl_expiry_deletes_and_rescans() {
    let service = service_with(ServiceConfig::default());
    let before = {
        let engine = service.engine();
        engine
            .db()
            .table_by_name("ott_lineitem")
            .unwrap()
            .row_count()
    };

    // Expire the low half of the value domain out of ott_lineitem.
    let report = service.expire_older_than("ott_lineitem", "a", 30).unwrap();
    assert_eq!(report.rows_appended, 0);
    assert_eq!(report.rows_deleted, 30 * 12);
    // An in-place rewrite invalidates the append-only history: the table
    // must be fully re-scanned, not tail-merged.
    assert_eq!(report.tables_rescanned, 1);
    assert!(report.drift > 0.0);

    let engine = service.engine();
    let table = engine.db().table_by_name("ott_lineitem").unwrap();
    assert_eq!(table.row_count(), before - 30 * 12);
    // Every surviving `a` value is ≥ the cutoff.
    let col = table.column_by_name("a").unwrap();
    assert!(col.data().iter().all(|&v| v >= 30));
}

#[test]
fn auto_refresh_off_reports_drift_without_evicting() {
    let service = service_with(ServiceConfig {
        drift: DriftConfig {
            threshold: 0.25,
            auto_refresh: false,
            ..Default::default()
        },
        ..Default::default()
    });
    let q = {
        let engine = service.engine();
        ott_query(engine.db(), &[0, 0, 0, 1]).unwrap()
    };
    service.submit(&q).unwrap();

    let report = service
        .append_rows("ott_lineitem", &rows_of(0, 3 * 60 * 12))
        .unwrap();
    assert!(report.drift >= 0.25);
    assert!(!report.refreshed, "auto_refresh=false only observes");
    assert_eq!(report.stats_version, 0);
    assert!(
        !report.drifted_tables.is_empty(),
        "observation mode still names the drifted tables"
    );
    // Manual mode: the stale plan keeps serving until an operator acts.
    assert_eq!(service.submit(&q).unwrap().source, PlanSource::WarmHit);
    assert_eq!(service.stats().stale_evictions, 0);
}

#[test]
fn ingest_emits_spans_and_counters() {
    let service = service_with(ServiceConfig {
        trace: Some(true),
        ..Default::default()
    });

    // Benign ingest: root + analyze + drift spans, no refresh span.
    let benign = service
        .append_rows("ott_lineitem", &uniform_batch(60))
        .unwrap();
    assert!(benign.drifted_tables.is_empty());
    let trace = benign.trace.as_ref().expect("tracing is on");
    let root = trace.find(names::SERVICE_INGEST).expect("ingest root span");
    assert_eq!(root.attr_u64("rows_appended"), Some(60));
    let analyze = trace.find(names::INGEST_ANALYZE).expect("analyze span");
    assert_eq!(analyze.parent, root.id);
    assert_eq!(analyze.attr_u64("merged"), Some(1));
    let drift = trace.find(names::INGEST_DRIFT).expect("drift span");
    assert_eq!(drift.parent, root.id);
    assert_eq!(trace.count(names::INGEST_REFRESH), 0);

    // Drift storm: the refresh span appears, parented under the root.
    let storm = service
        .append_rows("ott_lineitem", &rows_of(0, 3 * 60 * 12))
        .unwrap();
    assert_eq!(storm.drifted_tables.len(), 1);
    let trace = storm.trace.as_ref().expect("tracing is on");
    let root = trace.find(names::SERVICE_INGEST).unwrap();
    let refresh = trace.find(names::INGEST_REFRESH).expect("refresh span");
    assert_eq!(refresh.parent, root.id);
    assert_eq!(refresh.attr_u64("tables_refreshed"), Some(1));

    // The unified registry saw all of it.
    let snap = service.telemetry_snapshot();
    assert_eq!(snap.counter("ingest.ops"), 2);
    assert_eq!(snap.counter("ingest.rows_appended"), 60 + 3 * 60 * 12);
    assert_eq!(snap.counter("ingest.refreshes"), 1);
    assert_eq!(snap.counter("ingest.tables_refreshed"), 1);
    assert!(snap.gauge("ingest.drift").unwrap() >= 0.25);
    assert!(snap.gauge("service.data_version").unwrap() >= 2.0);
}

#[test]
fn drift_config_validation_rejects_silent_misconfigurations() {
    let bad = [
        DriftConfig {
            threshold: f64::NAN,
            ..Default::default()
        },
        DriftConfig {
            threshold: -0.1,
            ..Default::default()
        },
        DriftConfig {
            revalidate_ratio: Some(f64::NAN),
            ..Default::default()
        },
        DriftConfig {
            revalidate_ratio: Some(0.5),
            ..Default::default()
        },
    ];
    for drift in bad {
        let err = drift.validate().expect_err(&format!("{drift:?}"));
        let msg = err.to_string();
        assert!(
            msg.contains("threshold") || msg.contains("revalidate_ratio"),
            "unhelpful diagnostic: {msg}"
        );

        // Service construction rejects the config up front — a NaN
        // threshold used to silently disable auto-refresh instead.
        let config = small_ott();
        let res = QueryService::from_database(
            Arc::new(build_ott_database(&config).unwrap()),
            &AnalyzeOpts::default(),
            SampleConfig::default(),
            ServiceConfig {
                drift: drift.clone(),
                ..Default::default()
            },
        );
        assert!(res.is_err(), "{drift:?} must not construct a service");
    }

    // Boundary values are legal: refresh-every-ingest and exact-match-only.
    DriftConfig {
        threshold: 0.0,
        revalidate_ratio: Some(1.0),
        ..Default::default()
    }
    .validate()
    .unwrap();
    DriftConfig {
        revalidate_ratio: None,
        ..Default::default()
    }
    .validate()
    .unwrap();
}
