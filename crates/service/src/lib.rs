//! Concurrent query serving over sampling-based re-optimization.
//!
//! The paper makes per-query re-optimization cheap; a serving system makes
//! it *rare*. This crate fronts the whole pipeline
//! ([`reopt_core::ReoptEngine`]) with a thread-safe [`QueryService`]:
//!
//! * **Template plan cache** — final plans are keyed by
//!   [`reopt_plan::template_fingerprint`] (query structure with literals
//!   parameterized out), so repeated arrivals of a query shape cost a hash
//!   lookup, not a sampling loop.
//! * **Single-flight admission** — N concurrent sessions hitting the same
//!   cold template trigger exactly one re-optimization; the other N−1
//!   block on the leader's result and receive the identical plan
//!   ([`cache::PlanCache`]).
//! * **LRU + staleness eviction** — the cache is capacity-bounded, and a
//!   statistics refresh ([`QueryService::bump_stats_version`]) lazily
//!   invalidates every plan computed under the old statistics.
//! * **Shared sampling state** — cold misses on *different* templates
//!   pool their dry-run work through one
//!   [`reopt_sampling::SharedSampleRunCache`], so a subtree validated for
//!   one template is replayed, not re-executed, for the next.
//!
//! `bench_service` (in `reopt-bench`) measures the cold / warm / contended
//! regimes and writes `BENCH_service.json`; the README's "Serving
//! architecture" section walks through the design.

pub mod cache;
pub mod ingest;
pub mod service;

pub use cache::{CachedPlan, PlanCache};
pub use ingest::{DriftConfig, IngestReport};
pub use service::{
    ExecutedQuery, PlanSource, QueryService, ServiceConfig, ServiceResponse, ServiceStats, Session,
};
