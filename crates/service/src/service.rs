//! The concurrent query service: sessions in, plans out.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::cache::{Admission, CachedPlan, PlanCache};
use reopt_common::{Result, Stopwatch};
use reopt_core::{MidQueryStats, ReOptConfig, ReoptEngine};
use reopt_executor::{ExecOpts, Executor, QueryOutput};
use reopt_optimizer::OptimizerConfig;
use reopt_plan::{template_fingerprint, PhysicalPlan, Query};
use reopt_sampling::{SampleCacheStats, SampleConfig, SharedSampleRunCache};
use reopt_stats::AnalyzeOpts;
use reopt_storage::Database;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Max templates held in the plan cache (LRU beyond this; ≥ 1).
    pub plan_cache_capacity: usize,
    /// Pool sample dry-run subtrees across sessions and templates through
    /// one [`SharedSampleRunCache`] (on by default). Off means every cold
    /// miss validates with a run-private cache.
    pub share_sample_runs: bool,
    /// Re-optimization knobs applied to every cold miss (the dry-run
    /// executor's thread knob lives at `reopt.validation.threads`).
    pub reopt: ReOptConfig,
    /// Optimizer configuration.
    pub optimizer: OptimizerConfig,
    /// Executor options for [`QueryService::execute`]: served queries run
    /// partition-parallel per [`ExecOpts::threads`] (default: available
    /// parallelism), with results bit-identical to serial execution.
    pub exec: ExecOpts,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            plan_cache_capacity: 128,
            share_sample_runs: true,
            reopt: ReOptConfig::default(),
            optimizer: OptimizerConfig::postgres_like(),
            exec: ExecOpts::default(),
        }
    }
}

/// How a submission obtained its plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// This session ran the sampling-based re-optimization itself.
    ColdMiss,
    /// The template was cached; no optimizer work at all.
    WarmHit,
    /// Another session was already re-optimizing this template; this one
    /// blocked on its result (single-flight).
    Coalesced,
}

/// What a session gets back for one query.
#[derive(Debug, Clone)]
pub struct ServiceResponse {
    /// The plan to execute — shared, never copied per session.
    pub plan: Arc<PhysicalPlan>,
    /// How the plan was obtained.
    pub source: PlanSource,
    /// The query's template fingerprint (the cache key).
    pub template: u64,
    /// Rounds of the re-optimization that produced the plan (cached or
    /// fresh).
    pub rounds: usize,
    /// Whether that re-optimization converged.
    pub converged: bool,
    /// Wall time of that re-optimization (zero only if the loop was
    /// degenerate; warm hits report the *original* cost, not their own).
    pub reopt_time: Duration,
    /// Service-side latency of *this* submission, admission to response.
    pub latency: Duration,
}

/// Point-in-time service counters. Totals are lifetime;
/// `submitted == warm_hits + cold_misses + coalesced + errors`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Queries submitted.
    pub submitted: u64,
    /// Answered from the plan cache.
    pub warm_hits: u64,
    /// Answered by running re-optimization in the submitting session.
    pub cold_misses: u64,
    /// Answered by waiting on another session's in-flight re-optimization.
    pub coalesced: u64,
    /// Re-optimizations actually run (= cold misses that reached the
    /// engine; the single-flight invariant under contention is
    /// `reopts_run == 1` per cold template however many sessions raced).
    pub reopts_run: u64,
    /// Submissions that returned an error.
    pub errors: u64,
    /// Plans evicted to respect the capacity bound.
    pub lru_evictions: u64,
    /// Plans evicted because statistics moved underneath them.
    pub stale_evictions: u64,
    /// Templates currently cached.
    pub cached_templates: usize,
    /// Current statistics version.
    pub stats_version: u64,
    /// Counters of the shared sample dry-run cache.
    pub sample_cache: SampleCacheStats,
}

/// A thread-safe query service over one database: many sessions submit
/// queries concurrently; the service answers each with a physical plan,
/// re-optimizing at most once per query template per statistics version.
///
/// All methods take `&self`; wrap the service in an `Arc` and hand clones
/// to your session threads (or use [`QueryService::session`]).
#[derive(Debug)]
pub struct QueryService {
    engine: ReoptEngine,
    plans: Arc<PlanCache>,
    sample_cache: SharedSampleRunCache,
    share_sample_runs: bool,
    exec_opts: ExecOpts,
    stats_version: AtomicU64,
    next_session: AtomicU64,
    submitted: AtomicU64,
    warm_hits: AtomicU64,
    cold_misses: AtomicU64,
    coalesced: AtomicU64,
    reopts_run: AtomicU64,
    errors: AtomicU64,
}

impl QueryService {
    /// Service over a pre-built engine.
    pub fn new(engine: ReoptEngine, config: ServiceConfig) -> Self {
        QueryService {
            engine,
            plans: Arc::new(PlanCache::new(config.plan_cache_capacity)),
            sample_cache: SharedSampleRunCache::new(),
            share_sample_runs: config.share_sample_runs,
            // Pin the auto thread and columnar knobs to concrete values
            // now, so the env-var/parallelism probes inside
            // `effective_threads`/`effective_columnar` run once per
            // service, not once per served query.
            exec_opts: ExecOpts {
                threads: config.exec.effective_threads(),
                columnar: Some(config.exec.effective_columnar()),
                ..config.exec.clone()
            },
            stats_version: AtomicU64::new(0),
            next_session: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            cold_misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            reopts_run: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// Bootstrap a service from raw tables: ANALYZE, sample, serve.
    pub fn from_database(
        db: Arc<Database>,
        analyze: &AnalyzeOpts,
        sample: SampleConfig,
        config: ServiceConfig,
    ) -> Result<Self> {
        let engine = ReoptEngine::from_database_with_configs(
            db,
            analyze,
            sample,
            config.optimizer.clone(),
            config.reopt.clone(),
        )?;
        Ok(Self::new(engine, config))
    }

    /// The engine the service plans with.
    pub fn engine(&self) -> &ReoptEngine {
        &self.engine
    }

    /// Submit one query. Thread-safe; blocks only when another session is
    /// already re-optimizing the same template (single-flight), in which
    /// case it returns that session's plan on completion.
    pub fn submit(&self, query: &Query) -> Result<ServiceResponse> {
        let t0 = Stopwatch::start();
        // lint: relaxed-ok(monotonic telemetry counter; only read by stats(), never drives a control decision)
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let r = self.submit_inner(query, t0);
        if r.is_err() {
            // lint: relaxed-ok(monotonic telemetry counter; only read by stats(), never drives a control decision)
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    fn submit_inner(&self, query: &Query, t0: Stopwatch) -> Result<ServiceResponse> {
        // Validate up front: a malformed query must fail identically
        // whether its template is cached or not.
        query.validate(self.engine.db())?;
        let template = template_fingerprint(query);
        let version = self.stats_version.load(Ordering::Acquire);
        match self.plans.begin(template, version) {
            Admission::Hit(cached) => {
                // lint: relaxed-ok(monotonic telemetry counter; only read by stats(), never drives a control decision)
                self.warm_hits.fetch_add(1, Ordering::Relaxed);
                Ok(respond(cached, PlanSource::WarmHit, template, t0))
            }
            Admission::Wait(flight) => {
                let cached = flight.wait()?;
                // lint: relaxed-ok(monotonic telemetry counter; only read by stats(), never drives a control decision)
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                Ok(respond(cached, PlanSource::Coalesced, template, t0))
            }
            Admission::Lead(guard) => {
                // lint: relaxed-ok(monotonic telemetry counter; only read by stats(), never drives a control decision)
                self.reopts_run.fetch_add(1, Ordering::Relaxed);
                let outcome = if self.share_sample_runs {
                    self.engine.reoptimize_shared(query, &self.sample_cache)
                } else {
                    self.engine.reoptimize(query)
                };
                match outcome {
                    Ok(report) => {
                        let cached = CachedPlan {
                            plan: Arc::new(report.final_plan),
                            rounds: report.rounds.len(),
                            converged: report.converged,
                            reopt_time: report.reopt_time,
                            stats_version: version,
                        };
                        guard.complete(Ok(cached.clone()));
                        // lint: relaxed-ok(monotonic telemetry counter; only read by stats(), never drives a control decision)
                        self.cold_misses.fetch_add(1, Ordering::Relaxed);
                        Ok(respond(cached, PlanSource::ColdMiss, template, t0))
                    }
                    Err(e) => {
                        guard.complete(Err(e.clone()));
                        Err(e)
                    }
                }
            }
        }
    }

    /// Submit one query *and run its plan to completion* against the full
    /// database with the service's executor options — plan admission is
    /// identical to [`QueryService::submit`], and the execution exploits
    /// [`ExecOpts::threads`] (partition-parallel scans and hash joins,
    /// bit-identical results at any thread count).
    ///
    /// With [`ReOptConfig::mid_query`] on, the admitted plan executes
    /// under the suspend → refine → replan → resume loop: execution pauses
    /// at each materialization point, exact observed cardinalities re-plan
    /// the remainder, and checkpointed subtrees are spliced into the
    /// successor — the result is equivalent either way, and
    /// [`ExecutedQuery::mid_query`] reports what the loop did.
    pub fn execute(&self, query: &Query) -> Result<ExecutedQuery> {
        let response = self.submit(query)?;
        if self.engine.reopt_config().mid_query {
            let t0 = Stopwatch::start();
            let run = self.engine.execute_plan_mid_query(
                query,
                &response.plan,
                self.exec_opts.clone(),
            )?;
            let mut metrics = run.metrics.clone();
            metrics.elapsed = t0.elapsed();
            let output = QueryOutput {
                join_rows: run.join_rows(),
                agg: run.agg,
                metrics,
            };
            return Ok(ExecutedQuery {
                response,
                output,
                mid_query: Some(run.report.stats),
            });
        }
        let exec = Executor::with_opts(self.engine.db(), self.exec_opts.clone());
        let output = exec.run(query, &response.plan)?;
        Ok(ExecutedQuery {
            response,
            output,
            mid_query: None,
        })
    }

    /// Declare the statistics (and/or samples) refreshed: every plan
    /// computed under an older version is lazily evicted and re-optimized
    /// on its next touch. Also clears the shared sample cache — its row
    /// sets were drawn from the old samples. Returns the new version.
    pub fn bump_stats_version(&self) -> u64 {
        let v = self.stats_version.fetch_add(1, Ordering::AcqRel) + 1;
        self.sample_cache.clear();
        v
    }

    /// Current statistics version.
    pub fn stats_version(&self) -> u64 {
        self.stats_version.load(Ordering::Acquire)
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            // lint: relaxed-ok(point-in-time telemetry snapshot; each counter is independently monotonic and no cross-counter invariant is promised)
            submitted: self.submitted.load(Ordering::Relaxed),
            // lint: relaxed-ok(point-in-time telemetry snapshot; each counter is independently monotonic and no cross-counter invariant is promised)
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            // lint: relaxed-ok(point-in-time telemetry snapshot; each counter is independently monotonic and no cross-counter invariant is promised)
            cold_misses: self.cold_misses.load(Ordering::Relaxed),
            // lint: relaxed-ok(point-in-time telemetry snapshot; each counter is independently monotonic and no cross-counter invariant is promised)
            coalesced: self.coalesced.load(Ordering::Relaxed),
            // lint: relaxed-ok(point-in-time telemetry snapshot; each counter is independently monotonic and no cross-counter invariant is promised)
            reopts_run: self.reopts_run.load(Ordering::Relaxed),
            // lint: relaxed-ok(point-in-time telemetry snapshot; each counter is independently monotonic and no cross-counter invariant is promised)
            errors: self.errors.load(Ordering::Relaxed),
            lru_evictions: self.plans.lru_evictions(),
            stale_evictions: self.plans.stale_evictions(),
            cached_templates: self.plans.len(),
            stats_version: self.stats_version(),
            sample_cache: self.sample_cache.stats(),
        }
    }

    /// The shared sample dry-run cache (empty and unused when
    /// `share_sample_runs` is off).
    pub fn sample_cache(&self) -> &SharedSampleRunCache {
        &self.sample_cache
    }

    /// Open a session — a thin per-client handle with an id and a local
    /// submission count.
    pub fn session(self: &Arc<Self>) -> Session {
        Session {
            service: Arc::clone(self),
            // lint: relaxed-ok(fetch_add RMWs on one atomic are totally ordered, so ids are unique; no other memory is published with the id)
            id: self.next_session.fetch_add(1, Ordering::Relaxed),
            submitted: 0,
        }
    }
}

/// The result of [`QueryService::execute`]: how the plan was obtained plus
/// what running it produced.
#[derive(Debug, Clone)]
pub struct ExecutedQuery {
    /// Plan admission outcome (source, template, latency, ...).
    pub response: ServiceResponse,
    /// Full-database execution result (join cardinality, aggregates,
    /// metrics — including the parallel-worker counters).
    pub output: QueryOutput,
    /// Mid-query re-optimization counters, present iff
    /// [`ReOptConfig::mid_query`] was on for this service.
    pub mid_query: Option<MidQueryStats>,
}

fn respond(
    cached: CachedPlan,
    source: PlanSource,
    template: u64,
    t0: Stopwatch,
) -> ServiceResponse {
    ServiceResponse {
        plan: cached.plan,
        source,
        template,
        rounds: cached.rounds,
        converged: cached.converged,
        reopt_time: cached.reopt_time,
        latency: t0.elapsed(),
    }
}

/// One client's handle on the service. Sessions are cheap (an `Arc` clone
/// and a counter) and independent: drop them freely, open one per thread.
/// Deliberately not `Clone` — ids are unique per service, so a new thread
/// gets its own [`QueryService::session`], never a copy.
#[derive(Debug)]
pub struct Session {
    service: Arc<QueryService>,
    id: u64,
    submitted: u64,
}

impl Session {
    /// This session's id (unique per service).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Queries this session has submitted.
    pub fn queries_submitted(&self) -> u64 {
        self.submitted
    }

    /// The service this session talks to.
    pub fn service(&self) -> &Arc<QueryService> {
        &self.service
    }

    /// Submit one query through this session.
    pub fn submit(&mut self, query: &Query) -> Result<ServiceResponse> {
        self.submitted += 1;
        self.service.submit(query)
    }

    /// Submit and execute one query through this session.
    pub fn execute(&mut self, query: &Query) -> Result<ExecutedQuery> {
        self.submitted += 1;
        self.service.execute(query)
    }
}
