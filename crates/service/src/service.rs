//! The concurrent query service: sessions in, plans out.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::cache::{Admission, CachedPlan, LeadGuard, PlanCache};
use crate::ingest::DriftConfig;
use reopt_common::{lock_unpoisoned, Result, Stopwatch, TableId};
use reopt_core::{MidQueryStats, ReOptConfig, ReoptEngine};
use reopt_executor::{ExecOpts, Executor, QueryOutput};
use reopt_optimizer::OptimizerConfig;
use reopt_plan::{PhysicalPlan, Query, QueryTemplate};
use reopt_sampling::{SampleCacheStats, SampleConfig, SharedSampleRunCache};
use reopt_stats::{AnalyzeOpts, DatabaseStats};
use reopt_storage::Database;
use reopt_telemetry::{
    env_trace_default, names, LatencySummary, MetricsRegistry, QueryTrace, TelemetrySnapshot,
    Tracer,
};
use std::sync::Mutex;

fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Max templates held in the plan cache (LRU beyond this; ≥ 1).
    pub plan_cache_capacity: usize,
    /// Pool sample dry-run subtrees across sessions and templates through
    /// one [`SharedSampleRunCache`] (on by default). Off means every cold
    /// miss validates with a run-private cache.
    pub share_sample_runs: bool,
    /// Re-optimization knobs applied to every cold miss (the dry-run
    /// executor's thread knob lives at `reopt.validation.threads`).
    pub reopt: ReOptConfig,
    /// Optimizer configuration.
    pub optimizer: OptimizerConfig,
    /// Executor options for [`QueryService::execute`]: served queries run
    /// partition-parallel per [`ExecOpts::threads`] (default: available
    /// parallelism), with results bit-identical to serial execution.
    pub exec: ExecOpts,
    /// Record a structured span trace for every submission (`Some(true)`),
    /// never (`Some(false)`), or per the `REOPT_TRACE` environment
    /// variable (`None`, the default; truthy values are `1`/`true`/`on`).
    /// Tracing is observability only — plan choice and row output are
    /// bit-identical either way.
    pub trace: Option<bool>,
    /// Drift monitoring for the ingest path (threshold + auto refresh);
    /// see [`crate::ingest`].
    pub drift: DriftConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            plan_cache_capacity: 128,
            share_sample_runs: true,
            reopt: ReOptConfig::default(),
            optimizer: OptimizerConfig::postgres_like(),
            exec: ExecOpts::default(),
            trace: None,
            drift: DriftConfig::default(),
        }
    }
}

/// How a submission obtained its plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// This session ran the sampling-based re-optimization itself.
    ColdMiss,
    /// The template was cached; no optimizer work at all.
    WarmHit,
    /// Another session was already re-optimizing this template; this one
    /// blocked on its result (single-flight).
    Coalesced,
    /// A surgically-evicted plan was re-validated against the fresh
    /// samples (one dry run, no re-optimization loop) and re-admitted —
    /// its cost still held within [`DriftConfig::revalidate_ratio`].
    Revalidated,
}

/// What a session gets back for one query.
#[derive(Debug, Clone)]
pub struct ServiceResponse {
    /// The plan to execute — shared, never copied per session.
    pub plan: Arc<PhysicalPlan>,
    /// How the plan was obtained.
    pub source: PlanSource,
    /// The query's template fingerprint (the cache key).
    pub template: u64,
    /// Rounds of the re-optimization that produced the plan (cached or
    /// fresh).
    pub rounds: usize,
    /// Whether that re-optimization converged.
    pub converged: bool,
    /// Wall time of that re-optimization (zero only if the loop was
    /// degenerate; warm hits report the *original* cost, not their own).
    pub reopt_time: Duration,
    /// The plan's validated cost: under the final Γ of the loop that
    /// produced it, or — for [`PlanSource::Revalidated`] — under the fresh
    /// Δ of the re-validation dry run.
    pub validated_cost: f64,
    /// Service-side latency of *this* submission, admission to response.
    pub latency: Duration,
    /// The finished span trace of this submission, present iff tracing was
    /// on (see [`ServiceConfig::trace`]) and the trace was not claimed by
    /// an enclosing [`QueryService::execute`] (which attaches the combined
    /// trace to [`ExecutedQuery::trace`] instead).
    pub trace: Option<Arc<QueryTrace>>,
}

/// Point-in-time service counters. Totals are lifetime;
/// `submitted == warm_hits + cold_misses + coalesced + errors`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Queries submitted.
    pub submitted: u64,
    /// Answered from the plan cache.
    pub warm_hits: u64,
    /// Answered by running re-optimization in the submitting session.
    pub cold_misses: u64,
    /// Answered by waiting on another session's in-flight re-optimization.
    pub coalesced: u64,
    /// Re-optimizations actually run (= cold misses that reached the
    /// engine; the single-flight invariant under contention is
    /// `reopts_run == 1` per cold template however many sessions raced).
    pub reopts_run: u64,
    /// Submissions that returned an error.
    pub errors: u64,
    /// Plans evicted to respect the capacity bound.
    pub lru_evictions: u64,
    /// Plans evicted because statistics moved underneath them.
    pub stale_evictions: u64,
    /// Plans marked for re-validation because a base table they touch had
    /// its sample surgically refreshed.
    pub table_evictions: u64,
    /// Cached-plan re-validations attempted (dry run + re-cost, no loop).
    pub revalidations: u64,
    /// Re-validations that re-admitted the cached plan, saving a full
    /// re-optimization.
    pub revalidations_saved: u64,
    /// Templates currently cached.
    pub cached_templates: usize,
    /// Current statistics version.
    pub stats_version: u64,
    /// Counters of the shared sample dry-run cache.
    pub sample_cache: SampleCacheStats,
    /// Submission latency distribution (µs): count, mean, max, and
    /// p50/p95/p99 upper bounds from a fixed-bucket log₂ histogram
    /// (≤ 12.5 % relative quantile error).
    pub latency: LatencySummary,
}

/// A thread-safe query service over one database: many sessions submit
/// queries concurrently; the service answers each with a physical plan,
/// re-optimizing at most once per query template per statistics version.
///
/// All methods take `&self`; wrap the service in an `Arc` and hand clones
/// to your session threads (or use [`QueryService::session`]).
/// The mutable heart of the service: the engine (data + statistics +
/// samples) and the statistics *baseline* the resident cached plans were
/// last validated against. Swapped atomically under one mutex by the
/// ingest path; submissions take a cheap snapshot (a handful of `Arc`
/// clones) at admission, so in-flight queries keep the exact data state
/// they were admitted under.
#[derive(Debug)]
pub(crate) struct EngineState {
    pub(crate) engine: ReoptEngine,
    /// Statistics the cached plans' validations are anchored to — drift is
    /// measured baseline → fresh, not last-ingest → fresh, so many small
    /// ingests accumulate instead of each hiding below the threshold.
    pub(crate) baseline: Arc<DatabaseStats>,
}

#[derive(Debug)]
pub struct QueryService {
    pub(crate) state: Mutex<EngineState>,
    plans: Arc<PlanCache>,
    sample_cache: SharedSampleRunCache,
    share_sample_runs: bool,
    exec_opts: ExecOpts,
    stats_version: AtomicU64,
    next_session: AtomicU64,
    submitted: AtomicU64,
    warm_hits: AtomicU64,
    cold_misses: AtomicU64,
    coalesced: AtomicU64,
    reopts_run: AtomicU64,
    errors: AtomicU64,
    revalidations: AtomicU64,
    revalidations_saved: AtomicU64,
    pub(crate) registry: MetricsRegistry,
    trace_default: bool,
    pub(crate) drift: DriftConfig,
}

impl QueryService {
    /// Service over a pre-built engine. Errors when the drift
    /// configuration is invalid (NaN or negative threshold, bad
    /// re-validation ratio) — a silent bad threshold would disable
    /// auto-refresh with no diagnostic.
    pub fn new(engine: ReoptEngine, config: ServiceConfig) -> Result<Self> {
        config.drift.validate()?;
        let baseline = Arc::clone(engine.stats());
        Ok(QueryService {
            state: Mutex::new(EngineState { engine, baseline }),
            plans: Arc::new(PlanCache::new(config.plan_cache_capacity)),
            sample_cache: SharedSampleRunCache::new(),
            share_sample_runs: config.share_sample_runs,
            // Pin the auto thread and columnar knobs to concrete values
            // now, so the env-var/parallelism probes inside
            // `effective_threads`/`effective_columnar` run once per
            // service, not once per served query.
            exec_opts: ExecOpts {
                threads: config.exec.effective_threads(),
                columnar: Some(config.exec.effective_columnar()),
                ..config.exec.clone()
            },
            stats_version: AtomicU64::new(0),
            next_session: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            cold_misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            reopts_run: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            revalidations: AtomicU64::new(0),
            revalidations_saved: AtomicU64::new(0),
            registry: MetricsRegistry::new(),
            // Like the executor knobs above: consult REOPT_TRACE once at
            // construction, never per submission.
            trace_default: config.trace.unwrap_or_else(env_trace_default),
            drift: config.drift,
        })
    }

    /// Bootstrap a service from raw tables: ANALYZE, sample, serve.
    pub fn from_database(
        db: Arc<Database>,
        analyze: &AnalyzeOpts,
        sample: SampleConfig,
        config: ServiceConfig,
    ) -> Result<Self> {
        config.drift.validate()?;
        let engine = ReoptEngine::from_database_with_configs(
            db,
            analyze,
            sample,
            config.optimizer.clone(),
            config.reopt.clone(),
        )?;
        Self::new(engine, config)
    }

    /// A snapshot of the engine the service currently plans with. Owned
    /// (a few `Arc` clones): the ingest path swaps the live engine
    /// underneath, and a snapshot keeps reading its own consistent
    /// (database, statistics, samples) triple.
    pub fn engine(&self) -> ReoptEngine {
        lock_unpoisoned(&self.state).engine.clone()
    }

    /// The database snapshot the service currently serves.
    pub fn database(&self) -> Arc<Database> {
        Arc::clone(lock_unpoisoned(&self.state).engine.db())
    }

    /// The statistics the optimizer currently plans against.
    pub fn database_stats(&self) -> Arc<DatabaseStats> {
        Arc::clone(lock_unpoisoned(&self.state).engine.stats())
    }

    /// Submit one query. Thread-safe; blocks only when another session is
    /// already re-optimizing the same template (single-flight), in which
    /// case it returns that session's plan on completion.
    ///
    /// With tracing on (see [`ServiceConfig::trace`]) the finished span
    /// trace rides back on [`ServiceResponse::trace`].
    pub fn submit(&self, query: &Query) -> Result<ServiceResponse> {
        let tracer = self.new_tracer();
        let mut r = self.submit_with_tracer(query, &tracer)?;
        if tracer.is_enabled() {
            r.trace = Some(Arc::new(tracer.finish()));
        }
        Ok(r)
    }

    /// [`QueryService::submit`] with an explicit tracer: spans record under
    /// `tracer`'s current parent and the caller keeps ownership of the
    /// trace (so [`ServiceResponse::trace`] stays `None`). This is how
    /// [`QueryService::execute`] nests admission spans under its own root.
    pub fn submit_with_tracer(&self, query: &Query, tracer: &Tracer) -> Result<ServiceResponse> {
        let t0 = Stopwatch::start();
        // lint: relaxed-ok(monotonic telemetry counter; only read by stats(), never drives a control decision)
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let r = self.submit_inner(query, t0, tracer);
        match &r {
            Ok(resp) => self
                .registry
                .observe_micros("service.submit_us", micros(resp.latency)),
            Err(_) => {
                // lint: relaxed-ok(monotonic telemetry counter; only read by stats(), never drives a control decision)
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        r
    }

    fn submit_inner(
        &self,
        query: &Query,
        t0: Stopwatch,
        tracer: &Tracer,
    ) -> Result<ServiceResponse> {
        let mut root = tracer.span(names::SERVICE_SUBMIT);
        let sub = tracer.under(&root);
        // One engine snapshot per submission: everything below — validation,
        // re-optimization, caching — sees a single consistent data state
        // even if an ingest swaps the live engine mid-flight.
        let engine = self.engine();
        // Validate up front: a malformed query must fail identically
        // whether its template is cached or not.
        query.validate(engine.db())?;
        let tmpl = QueryTemplate::of(query);
        let template = tmpl.fingerprint();
        let version = self.stats_version.load(Ordering::Acquire);
        let mut adm_span = sub.span(names::SERVICE_ADMISSION);
        if adm_span.is_recording() {
            adm_span.attr_u64("template", template);
            adm_span.attr_u64("stats_version", version);
        }
        let out = match self.plans.begin(template, version) {
            Admission::Hit(cached) => {
                adm_span.attr_str("source", "warm_hit");
                drop(adm_span);
                // lint: relaxed-ok(monotonic telemetry counter; only read by stats(), never drives a control decision)
                self.warm_hits.fetch_add(1, Ordering::Relaxed);
                self.registry.add("service.warm_hits", 1);
                Ok(respond(cached, PlanSource::WarmHit, template, t0))
            }
            Admission::Wait(flight) => {
                adm_span.attr_str("source", "coalesced");
                // The wait on the leading session's re-optimization stays
                // inside the admission span: its duration is this
                // submission's admission cost.
                let cached = flight.wait()?;
                drop(adm_span);
                // lint: relaxed-ok(monotonic telemetry counter; only read by stats(), never drives a control decision)
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                self.registry.add("service.coalesced", 1);
                Ok(respond(cached, PlanSource::Coalesced, template, t0))
            }
            Admission::Lead(guard) => {
                adm_span.attr_str("source", "cold_miss");
                drop(adm_span);
                self.lead_reoptimize(query, &engine, &tmpl, version, guard, &sub, t0)
            }
            Admission::Revalidate { guard, stale } => {
                adm_span.attr_str("source", "revalidate");
                drop(adm_span);
                // Cheapest tier first: one dry run of the stale plan. On
                // acceptance the plan is re-admitted under the fresh
                // samples; otherwise (ratio unset, dry-run error, or cost
                // moved too far) fall through to a full re-optimization —
                // the guard transfers, so waiters still get one verdict.
                match self.try_revalidate(query, &engine, &stale, version, &sub) {
                    Some(cached) => {
                        guard.complete(Ok(cached.clone()));
                        // lint: relaxed-ok(monotonic telemetry counter; only read by stats(), never drives a control decision)
                        self.revalidations_saved.fetch_add(1, Ordering::Relaxed);
                        self.registry.add("plan_cache.revalidations_saved", 1);
                        Ok(respond(cached, PlanSource::Revalidated, template, t0))
                    }
                    None => self.lead_reoptimize(query, &engine, &tmpl, version, guard, &sub, t0),
                }
            }
        };
        if root.is_recording() {
            if let Ok(resp) = &out {
                root.attr_u64("template", template);
                root.attr_str(
                    "source",
                    match resp.source {
                        PlanSource::ColdMiss => "cold_miss",
                        PlanSource::WarmHit => "warm_hit",
                        PlanSource::Coalesced => "coalesced",
                        PlanSource::Revalidated => "revalidated",
                    },
                );
                root.attr_u64("rounds", resp.rounds as u64);
            }
        }
        out
    }

    /// Run the full re-optimization loop as the leading session and
    /// publish the outcome through `guard` — the cold-miss path, also the
    /// fallback when a re-validation rejects its cached plan.
    #[allow(clippy::too_many_arguments)]
    fn lead_reoptimize(
        &self,
        query: &Query,
        engine: &ReoptEngine,
        tmpl: &QueryTemplate,
        version: u64,
        guard: LeadGuard,
        sub: &Tracer,
        t0: Stopwatch,
    ) -> Result<ServiceResponse> {
        // lint: relaxed-ok(monotonic telemetry counter; only read by stats(), never drives a control decision)
        self.reopts_run.fetch_add(1, Ordering::Relaxed);
        let outcome = if self.share_sample_runs {
            engine.reoptimize_shared_traced(query, &self.sample_cache, sub)
        } else {
            engine.reoptimize_traced(query, sub)
        };
        match outcome {
            Ok(report) => {
                self.record_reopt(&report);
                let cached = CachedPlan {
                    plan: Arc::new(report.final_plan),
                    rounds: report.rounds.len(),
                    converged: report.converged,
                    reopt_time: report.reopt_time,
                    stats_version: version,
                    validated_cost: report.final_validated_cost,
                    base_tables: tmpl.base_tables(),
                };
                guard.complete(Ok(cached.clone()));
                // lint: relaxed-ok(monotonic telemetry counter; only read by stats(), never drives a control decision)
                self.cold_misses.fetch_add(1, Ordering::Relaxed);
                self.registry.add("service.cold_misses", 1);
                Ok(respond(
                    cached,
                    PlanSource::ColdMiss,
                    tmpl.fingerprint(),
                    t0,
                ))
            }
            Err(e) => {
                guard.complete(Err(e.clone()));
                Err(e)
            }
        }
    }

    /// The re-validation tier: dry-run `stale`'s plan against the fresh
    /// samples, re-cost it under the resulting Δ, and re-admit it when the
    /// new cost is within [`DriftConfig::revalidate_ratio`] of the cached
    /// one *in both directions* (a plan whose cost collapsed may no longer
    /// be the best choice either). Returns `None` — meaning "run the full
    /// loop" — when the ratio is unset, the dry run fails, the costs are
    /// non-finite, or the cost moved too far.
    fn try_revalidate(
        &self,
        query: &Query,
        engine: &ReoptEngine,
        stale: &CachedPlan,
        version: u64,
        tracer: &Tracer,
    ) -> Option<CachedPlan> {
        let ratio = self.drift.revalidate_ratio?;
        // lint: relaxed-ok(monotonic telemetry counter; only read by stats(), never drives a control decision)
        self.revalidations.fetch_add(1, Ordering::Relaxed);
        self.registry.add("plan_cache.revalidations", 1);
        let mut span = tracer.span(names::SERVICE_REVALIDATE);
        let sub = tracer.under(&span);
        let outcome = if self.share_sample_runs {
            engine.revalidate_plan_shared(query, &stale.plan, &self.sample_cache, &sub)
        } else {
            engine.revalidate_plan(query, &stale.plan, &sub)
        };
        let cost = outcome.ok()?;
        let accepted = cost.is_finite()
            && stale.validated_cost.is_finite()
            && cost <= stale.validated_cost * ratio
            && stale.validated_cost <= cost * ratio;
        if span.is_recording() {
            span.attr_f64("cached_cost", stale.validated_cost);
            span.attr_f64("revalidated_cost", cost);
            span.attr_bool("accepted", accepted);
        }
        if !accepted {
            return None;
        }
        Some(CachedPlan {
            plan: Arc::clone(&stale.plan),
            rounds: stale.rounds,
            converged: stale.converged,
            reopt_time: stale.reopt_time,
            stats_version: version,
            validated_cost: cost,
            base_tables: stale.base_tables.clone(),
        })
    }

    /// Fold one re-optimization report into the metrics registry.
    fn record_reopt(&self, report: &reopt_core::ReoptReport) {
        self.registry.add("reopt.runs", 1);
        self.registry
            .add("reopt.rounds", report.rounds.len() as u64);
        if report.converged {
            self.registry.add("reopt.converged", 1);
        }
        self.registry
            .observe_micros("reopt.time_us", micros(report.reopt_time));
    }

    /// Submit one query *and run its plan to completion* against the full
    /// database with the service's executor options — plan admission is
    /// identical to [`QueryService::submit`], and the execution exploits
    /// [`ExecOpts::threads`] (partition-parallel scans and hash joins,
    /// bit-identical results at any thread count).
    ///
    /// With [`ReOptConfig::mid_query`] on, the admitted plan executes
    /// under the suspend → refine → replan → resume loop: execution pauses
    /// at each materialization point, exact observed cardinalities re-plan
    /// the remainder, and checkpointed subtrees are spliced into the
    /// successor — the result is equivalent either way, and
    /// [`ExecutedQuery::mid_query`] reports what the loop did.
    pub fn execute(&self, query: &Query) -> Result<ExecutedQuery> {
        self.execute_with_tracer(query, self.new_tracer())
    }

    /// [`QueryService::execute`] with tracing forced on for this query,
    /// whatever [`ServiceConfig::trace`] says. The finished trace — one
    /// span tree covering admission, every re-optimization round, any
    /// mid-query suspensions, and per-operator execution — rides back on
    /// [`ExecutedQuery::trace`].
    pub fn execute_traced(&self, query: &Query) -> Result<ExecutedQuery> {
        self.execute_with_tracer(query, Tracer::enabled())
    }

    fn execute_with_tracer(&self, query: &Query, tracer: Tracer) -> Result<ExecutedQuery> {
        let t0 = Stopwatch::start();
        let r = self.execute_inner(query, &tracer);
        if let Ok(eq) = &r {
            self.registry
                .observe_micros("service.execute_us", micros(t0.elapsed()));
            self.record_execution(eq);
        }
        match r {
            Ok(mut eq) => {
                if tracer.is_enabled() {
                    eq.trace = Some(Arc::new(tracer.finish()));
                }
                Ok(eq)
            }
            Err(e) => Err(e),
        }
    }

    fn execute_inner(&self, query: &Query, tracer: &Tracer) -> Result<ExecutedQuery> {
        let mut root = tracer.span(names::SERVICE_EXECUTE);
        let inner = tracer.under(&root);
        let response = self.submit_with_tracer(query, &inner)?;
        let exec_opts = ExecOpts {
            tracer: inner.clone(),
            ..self.exec_opts.clone()
        };
        let engine = self.engine();
        let out = if engine.reopt_config().mid_query {
            let t0 = Stopwatch::start();
            let run = engine.execute_plan_mid_query(query, &response.plan, exec_opts)?;
            let mut metrics = run.metrics.clone();
            metrics.elapsed = t0.elapsed();
            let output = QueryOutput {
                join_rows: run.join_rows(),
                agg: run.agg,
                metrics,
            };
            ExecutedQuery {
                response,
                output,
                mid_query: Some(run.report.stats),
                trace: None,
            }
        } else {
            let exec = Executor::with_opts(engine.db(), exec_opts);
            let output = exec.run(query, &response.plan)?;
            ExecutedQuery {
                response,
                output,
                mid_query: None,
                trace: None,
            }
        };
        if root.is_recording() {
            root.attr_u64("join_rows", out.output.join_rows);
            root.attr_bool("mid_query", out.mid_query.is_some());
        }
        Ok(out)
    }

    /// Fold one execution's counters into the metrics registry.
    fn record_execution(&self, eq: &ExecutedQuery) {
        let m = &eq.output.metrics;
        self.registry.add("exec.queries", 1);
        self.registry.add("exec.rows_scanned", m.rows_scanned);
        self.registry.add("exec.rows_produced", m.rows_produced);
        self.registry.add("exec.index_probes", m.index_probes);
        self.registry.add("exec.parallel_ops", m.parallel_ops);
        self.registry
            .add("exec.parallel_workers", m.parallel_workers);
        self.registry
            .add("exec.batches_processed", m.batches_processed);
        self.registry.add("exec.batch_rows", m.batch_rows);
        self.registry.add("exec.dict_hits", m.dict_hits);
        self.registry
            .observe_micros("exec.time_us", micros(m.elapsed));
        if let Some(mq) = &eq.mid_query {
            self.registry
                .add("midquery.suspensions", mq.suspensions as u64);
            self.registry.add("midquery.replans", mq.replans as u64);
            self.registry
                .add("midquery.plan_switches", mq.plan_switches as u64);
            self.registry
                .add("midquery.checkpoints", mq.checkpoints as u64);
            self.registry.add("midquery.splices", mq.splices as u64);
            self.registry.add(
                "midquery.exact_gamma_entries",
                mq.exact_gamma_entries as u64,
            );
        }
    }

    /// A tracer honoring the service's tracing default.
    pub(crate) fn new_tracer(&self) -> Tracer {
        if self.trace_default {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        }
    }

    /// Declare the statistics (and/or samples) refreshed: every plan
    /// computed under an older version is lazily evicted and re-optimized
    /// on its next touch. Also clears the shared sample cache — its row
    /// sets were drawn from the old samples. Returns the new version.
    pub fn bump_stats_version(&self) -> u64 {
        let v = self.stats_version.fetch_add(1, Ordering::AcqRel) + 1;
        self.sample_cache.clear();
        v
    }

    /// Surgical reaction to per-table drift: mark every cached plan
    /// touching one of `tables` for re-validation on its next admission
    /// (see [`Admission::Revalidate`] and
    /// [`DriftConfig::revalidate_ratio`]). Plans over untouched tables
    /// keep warm-hitting, and the statistics version does *not* move —
    /// this is the proportional alternative to
    /// [`QueryService::bump_stats_version`]. Returns the number of plans
    /// newly marked. The ingest path calls this automatically after a
    /// partial sample refresh; it is public for manual use.
    pub fn evict_tables(&self, tables: &[TableId]) -> u64 {
        let marked = self.plans.evict_tables(tables);
        self.registry.add("plan_cache.table_evictions", marked);
        marked
    }

    /// Migrate shared sample-cache entries across a surgical refresh: keep
    /// (re-key) entries touching only untouched tables, drop the rest.
    pub(crate) fn migrate_sample_cache(
        &self,
        from: reopt_storage::DataVersion,
        to: reopt_storage::DataVersion,
        refreshed: &[TableId],
    ) -> (usize, usize) {
        self.sample_cache.migrate_version(from, to, refreshed)
    }

    /// Current statistics version.
    pub fn stats_version(&self) -> u64 {
        self.stats_version.load(Ordering::Acquire)
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            // lint: relaxed-ok(point-in-time telemetry snapshot; each counter is independently monotonic and no cross-counter invariant is promised)
            submitted: self.submitted.load(Ordering::Relaxed),
            // lint: relaxed-ok(point-in-time telemetry snapshot; each counter is independently monotonic and no cross-counter invariant is promised)
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            // lint: relaxed-ok(point-in-time telemetry snapshot; each counter is independently monotonic and no cross-counter invariant is promised)
            cold_misses: self.cold_misses.load(Ordering::Relaxed),
            // lint: relaxed-ok(point-in-time telemetry snapshot; each counter is independently monotonic and no cross-counter invariant is promised)
            coalesced: self.coalesced.load(Ordering::Relaxed),
            // lint: relaxed-ok(point-in-time telemetry snapshot; each counter is independently monotonic and no cross-counter invariant is promised)
            reopts_run: self.reopts_run.load(Ordering::Relaxed),
            // lint: relaxed-ok(point-in-time telemetry snapshot; each counter is independently monotonic and no cross-counter invariant is promised)
            errors: self.errors.load(Ordering::Relaxed),
            lru_evictions: self.plans.lru_evictions(),
            stale_evictions: self.plans.stale_evictions(),
            table_evictions: self.plans.table_evictions(),
            // lint: relaxed-ok(point-in-time telemetry snapshot; each counter is independently monotonic and no cross-counter invariant is promised)
            revalidations: self.revalidations.load(Ordering::Relaxed),
            // lint: relaxed-ok(point-in-time telemetry snapshot; each counter is independently monotonic and no cross-counter invariant is promised)
            revalidations_saved: self.revalidations_saved.load(Ordering::Relaxed),
            cached_templates: self.plans.len(),
            stats_version: self.stats_version(),
            sample_cache: self.sample_cache.stats(),
            latency: self.registry.latency_summary("service.submit_us"),
        }
    }

    /// Point-in-time snapshot of the unified metrics registry: counters and
    /// latency histograms accumulated from served queries (`service.*`,
    /// `reopt.*`, `exec.*`, `midquery.*`), overlaid with the live service
    /// and cache counters. Keys are stable and ordered; see the README's
    /// Telemetry section for the catalog.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let mut snap = self.registry.snapshot();
        let s = self.stats();
        snap.set_counter("service.submitted", s.submitted);
        snap.set_counter("service.warm_hits", s.warm_hits);
        snap.set_counter("service.cold_misses", s.cold_misses);
        snap.set_counter("service.coalesced", s.coalesced);
        snap.set_counter("service.reopts_run", s.reopts_run);
        snap.set_counter("service.errors", s.errors);
        snap.set_counter("plan_cache.lru_evictions", s.lru_evictions);
        snap.set_counter("plan_cache.stale_evictions", s.stale_evictions);
        snap.set_counter("plan_cache.table_evictions", s.table_evictions);
        snap.set_counter("plan_cache.revalidations", s.revalidations);
        snap.set_counter("plan_cache.revalidations_saved", s.revalidations_saved);
        snap.set_gauge("plan_cache.templates", s.cached_templates as f64);
        snap.set_gauge("service.stats_version", s.stats_version as f64);
        snap.set_gauge(
            "service.data_version",
            lock_unpoisoned(&self.state).engine.data_version().get() as f64,
        );
        snap.set_counter("sample_cache.hits", s.sample_cache.hits as u64);
        snap.set_counter("sample_cache.executed", s.sample_cache.executed as u64);
        snap.set_gauge("sample_cache.entries", s.sample_cache.entries as f64);
        snap.set_gauge("sample_cache.validated", s.sample_cache.validated as f64);
        snap
    }

    /// The shared sample dry-run cache (empty and unused when
    /// `share_sample_runs` is off).
    pub fn sample_cache(&self) -> &SharedSampleRunCache {
        &self.sample_cache
    }

    /// Open a session — a thin per-client handle with an id and a local
    /// submission count.
    pub fn session(self: &Arc<Self>) -> Session {
        Session {
            service: Arc::clone(self),
            // lint: relaxed-ok(fetch_add RMWs on one atomic are totally ordered, so ids are unique; no other memory is published with the id)
            id: self.next_session.fetch_add(1, Ordering::Relaxed),
            submitted: 0,
        }
    }
}

/// The result of [`QueryService::execute`]: how the plan was obtained plus
/// what running it produced.
#[derive(Debug, Clone)]
pub struct ExecutedQuery {
    /// Plan admission outcome (source, template, latency, ...).
    pub response: ServiceResponse,
    /// Full-database execution result (join cardinality, aggregates,
    /// metrics — including the parallel-worker counters).
    pub output: QueryOutput,
    /// Mid-query re-optimization counters, present iff
    /// [`ReOptConfig::mid_query`] was on for this service.
    pub mid_query: Option<MidQueryStats>,
    /// The finished span trace — admission through per-operator execution —
    /// present iff tracing was on for this query (see
    /// [`ServiceConfig::trace`] and [`QueryService::execute_traced`]).
    pub trace: Option<Arc<QueryTrace>>,
}

fn respond(
    cached: CachedPlan,
    source: PlanSource,
    template: u64,
    t0: Stopwatch,
) -> ServiceResponse {
    ServiceResponse {
        plan: cached.plan,
        source,
        template,
        rounds: cached.rounds,
        converged: cached.converged,
        reopt_time: cached.reopt_time,
        validated_cost: cached.validated_cost,
        latency: t0.elapsed(),
        trace: None,
    }
}

/// One client's handle on the service. Sessions are cheap (an `Arc` clone
/// and a counter) and independent: drop them freely, open one per thread.
/// Deliberately not `Clone` — ids are unique per service, so a new thread
/// gets its own [`QueryService::session`], never a copy.
#[derive(Debug)]
pub struct Session {
    service: Arc<QueryService>,
    id: u64,
    submitted: u64,
}

impl Session {
    /// This session's id (unique per service).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Queries this session has submitted.
    pub fn queries_submitted(&self) -> u64 {
        self.submitted
    }

    /// The service this session talks to.
    pub fn service(&self) -> &Arc<QueryService> {
        &self.service
    }

    /// Submit one query through this session.
    pub fn submit(&mut self, query: &Query) -> Result<ServiceResponse> {
        self.submitted += 1;
        self.service.submit(query)
    }

    /// Submit and execute one query through this session.
    pub fn execute(&mut self, query: &Query) -> Result<ExecutedQuery> {
        self.submitted += 1;
        self.service.execute(query)
    }

    /// Submit and execute one query with tracing forced on (see
    /// [`QueryService::execute_traced`]).
    pub fn execute_traced(&mut self, query: &Query) -> Result<ExecutedQuery> {
        self.submitted += 1;
        self.service.execute_traced(query)
    }
}
