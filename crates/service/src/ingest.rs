//! Streaming ingest with drift-triggered re-optimization.
//!
//! The paper's setting is a static database: ANALYZE once, sample once,
//! then serve. This module is what changes when the data refuses to hold
//! still. Every ingest operation ([`QueryService::append_rows`],
//! [`QueryService::expire_older_than`]) runs the same loop:
//!
//! 1. **Mutate a copy.** The live [`reopt_storage::Database`] is cloned
//!    (table `Arc` pointers — copy-on-write), the mutation lands on the
//!    copy, and the database's [`DataVersion`] advances. Sessions admitted
//!    earlier keep their snapshot untouched.
//! 2. **Re-ANALYZE incrementally.** [`reopt_stats::analyze_incremental`]
//!    touches only the rows appended since the last pass (bit-identical to
//!    a full re-scan; quiescent tables are reused outright).
//! 3. **Measure drift** against the *baseline* — the statistics the cached
//!    plans were last validated under, not the previous ingest's — so
//!    small ingests accumulate instead of each hiding below the threshold.
//! 4. **Refresh if over threshold.** Samples are redrawn from the new
//!    data, the engine is swapped, the baseline re-anchored, and
//!    [`QueryService::bump_stats_version`] lazily evicts every cached plan
//!    and dry-run row set — no manual bump required, which is the point.
//!    Under the threshold the new data and statistics go live immediately
//!    while samples and cached plans keep serving (their validations still
//!    describe the distribution to within the threshold).
//!
//! Every step records spans (`service.ingest`, `ingest.analyze`,
//! `ingest.drift`, `ingest.refresh`) and `ingest.*` counters, so an
//! operator can see *why* plans were or weren't evicted.

use std::sync::Arc;

use crate::service::QueryService;
use reopt_common::{lock_unpoisoned, Result, TableId};
use reopt_sampling::SampleStore;
use reopt_stats::{analyze_incremental, database_drift};
use reopt_storage::{DataVersion, Database, Value};
use reopt_telemetry::{names, QueryTrace};

/// Drift-monitor knobs (part of [`crate::ServiceConfig`]).
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Refresh when any table's drift score reaches this value. The score
    /// is the max of relative row-count / n-distinct deviation, absolute
    /// null-fraction change, and MCV total-variation distance (see
    /// [`reopt_stats::drift`]); 0.25 means "a quarter of the distribution
    /// moved".
    pub threshold: f64,
    /// Automatically rebuild samples and evict stale plans when the
    /// threshold is crossed (on by default). Off means ingests only
    /// report drift; eviction waits for a manual
    /// [`QueryService::bump_stats_version`].
    pub auto_refresh: bool,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            threshold: 0.25,
            auto_refresh: true,
        }
    }
}

/// What one ingest operation did — data, statistics, and cache effects.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// The mutated table.
    pub table: TableId,
    /// Rows appended by this operation.
    pub rows_appended: usize,
    /// Rows deleted/expired by this operation.
    pub rows_deleted: usize,
    /// The mutated table's new version (equals `data_version`).
    pub table_version: DataVersion,
    /// The database version this ingest landed at.
    pub data_version: DataVersion,
    /// Incremental-ANALYZE work: tables reused verbatim.
    pub tables_reused: usize,
    /// Tables whose appended tail was scanned and merged.
    pub tables_merged: usize,
    /// Tables fully re-scanned.
    pub tables_rescanned: usize,
    /// Worst per-table drift versus the validation baseline, after this
    /// ingest.
    pub drift: f64,
    /// Whether this ingest crossed the threshold and refreshed: samples
    /// redrawn, engine swapped, cached plans + dry-run row sets evicted.
    pub refreshed: bool,
    /// The service's statistics version after this ingest (bumped iff
    /// `refreshed`).
    pub stats_version: u64,
    /// Span trace of this ingest, present iff tracing is on (see
    /// [`crate::ServiceConfig::trace`]).
    pub trace: Option<Arc<QueryTrace>>,
}

impl QueryService {
    /// Append typed rows to `table`, then run the drift loop (see the
    /// module docs). The batch is validated before anything mutates; an
    /// invalid row leaves the service entirely untouched.
    pub fn append_rows(&self, table: &str, rows: &[Vec<Value>]) -> Result<IngestReport> {
        self.apply_ingest(table, |db, id| {
            let stamp = db.append_rows(id, rows)?;
            Ok((stamp, rows.len(), 0))
        })
    }

    /// TTL expiry: delete every row of `table` whose value in the ordered
    /// column `col` is non-NULL and strictly below `cutoff`, then run the
    /// drift loop.
    pub fn expire_older_than(&self, table: &str, col: &str, cutoff: i64) -> Result<IngestReport> {
        self.apply_ingest(table, |db, id| {
            let col = db.table(id)?.schema().col_by_name(col)?;
            let (stamp, deleted) = db.expire_older_than(id, col, cutoff)?;
            Ok((stamp, 0, deleted))
        })
    }

    /// The shared ingest loop: mutate a copy-on-write clone, incremental
    /// ANALYZE, measure drift against the baseline, refresh when over
    /// threshold. `mutate` returns `(stamp, rows_appended, rows_deleted)`.
    fn apply_ingest<F>(&self, table: &str, mutate: F) -> Result<IngestReport>
    where
        F: FnOnce(&mut Database, TableId) -> Result<(DataVersion, usize, usize)>,
    {
        let tracer = self.new_tracer();
        let mut root = tracer.span(names::SERVICE_INGEST);
        let sub = tracer.under(&root);

        let mut st = lock_unpoisoned(&self.state);
        let id = st.engine.db().table_id(table)?;
        let mut db = Database::clone(st.engine.db());
        let (stamp, appended, deleted) = mutate(&mut db, id)?;

        let mut an_span = sub.span(names::INGEST_ANALYZE);
        let inc = analyze_incremental(&db, st.engine.stats(), st.engine.analyze_opts())?;
        if an_span.is_recording() {
            an_span.attr_u64("reused", inc.tables_reused as u64);
            an_span.attr_u64("merged", inc.tables_merged as u64);
            an_span.attr_u64("rescanned", inc.tables_rescanned as u64);
        }
        drop(an_span);

        let mut drift_span = sub.span(names::INGEST_DRIFT);
        let report = database_drift(&st.baseline, &inc.stats);
        let drift = report.max();
        let refresh = self.drift.auto_refresh && drift >= self.drift.threshold;
        if drift_span.is_recording() {
            drift_span.attr_f64("max", drift);
            drift_span.attr_f64("threshold", self.drift.threshold);
            drift_span.attr_u64(
                "tables_over",
                report.over(self.drift.threshold).len() as u64,
            );
        }
        drop(drift_span);

        let db = Arc::new(db);
        let stats = Arc::new(inc.stats);
        let stats_version = if refresh {
            let mut refresh_span = sub.span(names::INGEST_REFRESH);
            let samples = Arc::new(SampleStore::build(
                &db,
                st.engine.samples().config().clone(),
            )?);
            st.engine = st
                .engine
                .with_data(Arc::clone(&db), Arc::clone(&stats), samples);
            st.baseline = Arc::clone(&stats);
            drop(st);
            // After the lock: eviction touches only the plan cache and the
            // shared sample cache, and new admissions may already use the
            // fresh engine.
            let v = self.bump_stats_version();
            self.registry.add("ingest.refreshes", 1);
            if refresh_span.is_recording() {
                refresh_span.attr_u64("stats_version", v);
            }
            v
        } else {
            // Under threshold: fresh data + statistics go live, samples
            // and cached plans keep serving. The engine's samples keep
            // their older data version, so every sample-cache entry stays
            // keyed to the data state the dry runs actually ran over.
            let samples = Arc::clone(st.engine.samples());
            st.engine = st
                .engine
                .with_data(Arc::clone(&db), Arc::clone(&stats), samples);
            drop(st);
            self.stats_version()
        };

        self.registry.add("ingest.ops", 1);
        self.registry.add("ingest.rows_appended", appended as u64);
        self.registry.add("ingest.rows_deleted", deleted as u64);
        self.registry
            .add("ingest.tables_reused", inc.tables_reused as u64);
        self.registry
            .add("ingest.tables_merged", inc.tables_merged as u64);
        self.registry
            .add("ingest.tables_rescanned", inc.tables_rescanned as u64);
        self.registry.set_gauge("ingest.drift", drift);
        self.registry
            .set_gauge("service.data_version", stamp.get() as f64);

        if root.is_recording() {
            root.attr_str("table", table);
            root.attr_u64("rows_appended", appended as u64);
            root.attr_u64("rows_deleted", deleted as u64);
            root.attr_u64("data_version", stamp.get());
            root.attr_f64("drift", drift);
            root.attr_bool("refreshed", refresh);
        }
        drop(root);

        Ok(IngestReport {
            table: id,
            rows_appended: appended,
            rows_deleted: deleted,
            table_version: stamp,
            data_version: stamp,
            tables_reused: inc.tables_reused,
            tables_merged: inc.tables_merged,
            tables_rescanned: inc.tables_rescanned,
            drift,
            refreshed: refresh,
            stats_version,
            trace: if tracer.is_enabled() {
                Some(Arc::new(tracer.finish()))
            } else {
                None
            },
        })
    }
}
