//! Streaming ingest with drift-triggered re-optimization.
//!
//! The paper's setting is a static database: ANALYZE once, sample once,
//! then serve. This module is what changes when the data refuses to hold
//! still. Every ingest operation ([`QueryService::append_rows`],
//! [`QueryService::expire_older_than`]) runs the same loop:
//!
//! 1. **Mutate a copy.** The live [`reopt_storage::Database`] is cloned
//!    (table `Arc` pointers — copy-on-write), the mutation lands on the
//!    copy, and the database's [`DataVersion`] advances. Sessions admitted
//!    earlier keep their snapshot untouched.
//! 2. **Re-ANALYZE incrementally.** [`reopt_stats::analyze_incremental`]
//!    touches only the rows appended since the last pass (bit-identical to
//!    a full re-scan; quiescent tables are reused outright).
//! 3. **Measure drift** against the *baseline* — the statistics the cached
//!    plans were last validated under, not the previous ingest's — so
//!    small ingests accumulate instead of each hiding below the threshold.
//! 4. **Refresh surgically if over threshold.** Only the *drifted*
//!    tables' samples are redrawn ([`SampleStore::refresh_tables`] — the
//!    rest keep their `Arc`s), the engine is swapped, the drifted tables'
//!    baseline entries re-anchored, and the reaction stays proportional:
//!    cached plans touching a drifted table are marked for re-validation
//!    ([`QueryService::evict_tables`]), shared dry-run entries touching
//!    only untouched tables are migrated to the new data version instead
//!    of dropped, and the statistics version does **not** move — plans
//!    and entries over untouched tables keep serving warm.
//!    [`QueryService::bump_stats_version`] (or
//!    [`QueryService::refresh_full`]) remains the full-flush fallback.
//!    Under the threshold the new data and statistics go live immediately
//!    while samples and cached plans keep serving (their validations still
//!    describe the distribution to within the threshold).
//!
//! Every step records spans (`service.ingest`, `ingest.analyze`,
//! `ingest.drift`, `ingest.refresh`) and `ingest.*` counters, so an
//! operator can see *why* plans were or weren't evicted.

use std::sync::Arc;

use crate::service::QueryService;
use reopt_common::{lock_unpoisoned, Error, Result, TableId};
use reopt_sampling::SampleStore;
use reopt_stats::{analyze_incremental, database_drift, DatabaseStats};
use reopt_storage::{DataVersion, Database, Value};
use reopt_telemetry::{names, QueryTrace};

/// Drift-monitor knobs (part of [`crate::ServiceConfig`]).
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Refresh when any table's drift score reaches this value. The score
    /// is the max of relative row-count / n-distinct deviation, absolute
    /// null-fraction change, and MCV total-variation distance (see
    /// [`reopt_stats::drift`]); 0.25 means "a quarter of the distribution
    /// moved".
    pub threshold: f64,
    /// Automatically refresh drifted tables' samples and mark their plans
    /// for re-validation when the threshold is crossed (on by default).
    /// Off means ingests only report drift; eviction waits for a manual
    /// [`QueryService::evict_tables`] /
    /// [`QueryService::bump_stats_version`].
    pub auto_refresh: bool,
    /// Acceptance band for cached-plan re-validation: a surgically-evicted
    /// plan is re-admitted without re-optimization when its re-validated
    /// cost is within this factor of the cached cost *in both directions*
    /// (`new ≤ old·r` and `old ≤ new·r`). `None` disables the tier —
    /// every surgically-evicted plan re-optimizes in full. Must be ≥ 1.0;
    /// 1.0 accepts only an (essentially) unchanged cost.
    pub revalidate_ratio: Option<f64>,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            threshold: 0.25,
            auto_refresh: true,
            revalidate_ratio: Some(2.0),
        }
    }
}

impl DriftConfig {
    /// Reject configurations that would silently misbehave: a NaN
    /// threshold makes `drift >= threshold` always false (auto-refresh
    /// off with no diagnostic), a negative threshold pretends to be
    /// stricter than "refresh on every ingest" but isn't, and a
    /// re-validation ratio below 1.0 (or NaN) can never accept.
    pub fn validate(&self) -> Result<()> {
        if self.threshold.is_nan() {
            return Err(Error::invalid(
                "drift threshold is NaN: `drift >= NaN` is always false, which would \
                 silently disable auto-refresh",
            ));
        }
        if self.threshold < 0.0 {
            return Err(Error::invalid(format!(
                "drift threshold {} is negative; use 0.0 to refresh on every ingest",
                self.threshold
            )));
        }
        if let Some(r) = self.revalidate_ratio {
            if r.is_nan() || r < 1.0 {
                return Err(Error::invalid(format!(
                    "revalidate_ratio {r} must be ≥ 1.0 (1.0 accepts only an unchanged \
                     cost; use None to disable re-validation)"
                )));
            }
        }
        Ok(())
    }
}

/// What one ingest operation did — data, statistics, and cache effects.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// The mutated table.
    pub table: TableId,
    /// Rows appended by this operation.
    pub rows_appended: usize,
    /// Rows deleted/expired by this operation.
    pub rows_deleted: usize,
    /// The mutated table's new version (equals `data_version`).
    pub table_version: DataVersion,
    /// The database version this ingest landed at.
    pub data_version: DataVersion,
    /// Incremental-ANALYZE work: tables reused verbatim.
    pub tables_reused: usize,
    /// Tables whose appended tail was scanned and merged.
    pub tables_merged: usize,
    /// Tables fully re-scanned.
    pub tables_rescanned: usize,
    /// Worst per-table drift versus the validation baseline, after this
    /// ingest.
    pub drift: f64,
    /// Tables whose drift score reached the threshold (in `TableId`
    /// order), whether or not auto-refresh acted on them.
    pub drifted_tables: Vec<TableId>,
    /// Whether this ingest crossed the threshold and refreshed
    /// surgically: drifted tables' samples redrawn, engine swapped, plans
    /// touching them marked for re-validation.
    pub refreshed: bool,
    /// The service's statistics version after this ingest. A surgical
    /// refresh does *not* bump it — only a full flush
    /// ([`QueryService::refresh_full`] /
    /// [`QueryService::bump_stats_version`]) does.
    pub stats_version: u64,
    /// Span trace of this ingest, present iff tracing is on (see
    /// [`crate::ServiceConfig::trace`]).
    pub trace: Option<Arc<QueryTrace>>,
}

/// The post-refresh validation baseline: refreshed tables restart from
/// the fresh statistics, everything else keeps its old baseline entry so
/// drift on untouched tables continues to accumulate. Tables new since
/// the old baseline start fresh.
fn reanchor_baseline(
    old: &DatabaseStats,
    fresh: &DatabaseStats,
    refreshed: &[TableId],
) -> Result<DatabaseStats> {
    let tables = fresh
        .tables()
        .iter()
        .map(|t| {
            if refreshed.contains(&t.table) {
                t.clone()
            } else {
                old.table(t.table).cloned().unwrap_or_else(|_| t.clone())
            }
        })
        .collect();
    DatabaseStats::new(tables)
}

impl QueryService {
    /// Full-flush fallback to the surgical drift reaction: rebuild *all*
    /// samples from the live data, re-anchor the whole baseline, and bump
    /// the statistics version (lazily evicting every cached plan and
    /// dry-run row set). Returns the new statistics version.
    pub fn refresh_full(&self) -> Result<u64> {
        let mut st = lock_unpoisoned(&self.state);
        let db = Arc::clone(st.engine.db());
        let stats = Arc::clone(st.engine.stats());
        let samples = Arc::new(SampleStore::build(
            &db,
            st.engine.samples().config().clone(),
        )?);
        st.engine = st.engine.with_data(db, Arc::clone(&stats), samples);
        st.baseline = stats;
        drop(st);
        let v = self.bump_stats_version();
        self.registry.add("ingest.refreshes", 1);
        Ok(v)
    }

    /// Append typed rows to `table`, then run the drift loop (see the
    /// module docs). The batch is validated before anything mutates; an
    /// invalid row leaves the service entirely untouched.
    pub fn append_rows(&self, table: &str, rows: &[Vec<Value>]) -> Result<IngestReport> {
        self.apply_ingest(table, |db, id| {
            let stamp = db.append_rows(id, rows)?;
            Ok((stamp, rows.len(), 0))
        })
    }

    /// TTL expiry: delete every row of `table` whose value in the ordered
    /// column `col` is non-NULL and strictly below `cutoff`, then run the
    /// drift loop.
    pub fn expire_older_than(&self, table: &str, col: &str, cutoff: i64) -> Result<IngestReport> {
        self.apply_ingest(table, |db, id| {
            let col = db.table(id)?.schema().col_by_name(col)?;
            let (stamp, deleted) = db.expire_older_than(id, col, cutoff)?;
            Ok((stamp, 0, deleted))
        })
    }

    /// The shared ingest loop: mutate a copy-on-write clone, incremental
    /// ANALYZE, measure drift against the baseline, refresh when over
    /// threshold. `mutate` returns `(stamp, rows_appended, rows_deleted)`.
    fn apply_ingest<F>(&self, table: &str, mutate: F) -> Result<IngestReport>
    where
        F: FnOnce(&mut Database, TableId) -> Result<(DataVersion, usize, usize)>,
    {
        let tracer = self.new_tracer();
        let mut root = tracer.span(names::SERVICE_INGEST);
        let sub = tracer.under(&root);

        let mut st = lock_unpoisoned(&self.state);
        let id = st.engine.db().table_id(table)?;
        let mut db = Database::clone(st.engine.db());
        let (stamp, appended, deleted) = mutate(&mut db, id)?;

        let mut an_span = sub.span(names::INGEST_ANALYZE);
        let inc = analyze_incremental(&db, st.engine.stats(), st.engine.analyze_opts())?;
        if an_span.is_recording() {
            an_span.attr_u64("reused", inc.tables_reused as u64);
            an_span.attr_u64("merged", inc.tables_merged as u64);
            an_span.attr_u64("rescanned", inc.tables_rescanned as u64);
        }
        drop(an_span);

        let mut drift_span = sub.span(names::INGEST_DRIFT);
        let report = database_drift(&st.baseline, &inc.stats);
        let drift = report.max();
        let drifted = report.over(self.drift.threshold);
        // Baseline-only tables (dropped from the database) score 1.0 but
        // have no samples to redraw; react to tables that still exist.
        let refreshable: Vec<TableId> = drifted
            .iter()
            .copied()
            .filter(|&t| db.table(t).is_ok())
            .collect();
        let refresh = self.drift.auto_refresh && !refreshable.is_empty();
        if drift_span.is_recording() {
            drift_span.attr_f64("max", drift);
            drift_span.attr_f64("threshold", self.drift.threshold);
            drift_span.attr_u64("tables_over", drifted.len() as u64);
        }
        drop(drift_span);

        let db = Arc::new(db);
        let stats = Arc::new(inc.stats);
        let stats_version = if refresh {
            let mut refresh_span = sub.span(names::INGEST_REFRESH);
            // Redraw only the drifted tables' samples; the rest keep their
            // `Arc`s, so their dry-run results stay bit-identical.
            let old_samples_version = st.engine.samples().data_version();
            let samples = Arc::new(st.engine.samples().refresh_tables(&db, &refreshable)?);
            // Re-anchor the baseline per-table: drifted tables restart
            // their drift accumulation from the fresh statistics; the
            // untouched tables' plans were *not* refreshed, so their drift
            // keeps accumulating against the original baseline.
            st.baseline = Arc::new(reanchor_baseline(&st.baseline, &stats, &refreshable)?);
            st.engine = st
                .engine
                .with_data(Arc::clone(&db), Arc::clone(&stats), samples);
            drop(st);
            // After the lock: eviction touches only the plan cache and the
            // shared sample cache, and new admissions may already use the
            // fresh engine. The statistics version does NOT move — plans
            // over untouched tables stay warm.
            let plans_marked = self.evict_tables(&refreshable);
            let (entries_kept, entries_dropped) =
                self.migrate_sample_cache(old_samples_version, stamp, &refreshable);
            self.registry.add("ingest.refreshes", 1);
            self.registry
                .add("ingest.tables_refreshed", refreshable.len() as u64);
            if refresh_span.is_recording() {
                refresh_span.attr_u64("tables_refreshed", refreshable.len() as u64);
                refresh_span.attr_u64("plans_evicted", plans_marked);
                refresh_span.attr_u64("sample_entries_kept", entries_kept as u64);
                refresh_span.attr_u64("sample_entries_dropped", entries_dropped as u64);
            }
            self.stats_version()
        } else {
            // Under threshold: fresh data + statistics go live, samples
            // and cached plans keep serving. The engine's samples keep
            // their older data version, so every sample-cache entry stays
            // keyed to the data state the dry runs actually ran over.
            let samples = Arc::clone(st.engine.samples());
            st.engine = st
                .engine
                .with_data(Arc::clone(&db), Arc::clone(&stats), samples);
            drop(st);
            self.stats_version()
        };

        self.registry.add("ingest.ops", 1);
        self.registry.add("ingest.rows_appended", appended as u64);
        self.registry.add("ingest.rows_deleted", deleted as u64);
        self.registry
            .add("ingest.tables_reused", inc.tables_reused as u64);
        self.registry
            .add("ingest.tables_merged", inc.tables_merged as u64);
        self.registry
            .add("ingest.tables_rescanned", inc.tables_rescanned as u64);
        self.registry.set_gauge("ingest.drift", drift);
        self.registry
            .set_gauge("service.data_version", stamp.get() as f64);

        if root.is_recording() {
            root.attr_str("table", table);
            root.attr_u64("rows_appended", appended as u64);
            root.attr_u64("rows_deleted", deleted as u64);
            root.attr_u64("data_version", stamp.get());
            root.attr_f64("drift", drift);
            root.attr_bool("refreshed", refresh);
        }
        drop(root);

        Ok(IngestReport {
            table: id,
            rows_appended: appended,
            rows_deleted: deleted,
            table_version: stamp,
            data_version: stamp,
            tables_reused: inc.tables_reused,
            tables_merged: inc.tables_merged,
            tables_rescanned: inc.tables_rescanned,
            drift,
            drifted_tables: drifted,
            refreshed: refresh,
            stats_version,
            trace: if tracer.is_enabled() {
                Some(Arc::new(tracer.finish()))
            } else {
                None
            },
        })
    }
}
