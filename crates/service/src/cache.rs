//! The re-optimization-aware plan cache: template-keyed, single-flight,
//! LRU + staleness eviction.
//!
//! Sampling-based re-optimization is cheap *per query* but a serving
//! system pays it per *arrival* unless plans are reused. The cache keys
//! final plans by [`reopt_plan::template_fingerprint`] — literals
//! parameterized out — so every instance of a query shape after the first
//! is a hash lookup.
//!
//! **Single-flight admission.** The expensive event is N sessions
//! arriving with the same cold template at once: naively all N run the
//! full sampling loop and N−1 results are discarded. [`PlanCache::begin`]
//! arbitrates under one short map lock: the first arrival becomes the
//! *leader* (it gets a [`LeadGuard`] and must compute), every concurrent
//! arrival gets a [`Flight`] handle and blocks on a condvar until the
//! leader publishes. Exactly one re-optimization runs; all N sessions
//! receive the identical `Arc`'d plan. A leader that fails publishes its
//! error to the waiters and *removes* the slot, so the next arrival
//! retries rather than caching the failure; a leader that panics is caught
//! by `LeadGuard::drop`, which publishes an [`Error::Service`] so waiters
//! can retry instead of blocking forever.
//!
//! **Eviction.** Entries die three ways: LRU when the cache exceeds its
//! capacity (least-recently-touched `Ready` entry goes; in-flight slots
//! are never evicted); staleness when the service bumps its statistics
//! version (re-ANALYZE / full sample refresh) — version checks happen
//! lazily on lookup, so a bump is O(1) and stale plans are re-optimized on
//! next touch, not en masse; and *surgically* via
//! [`PlanCache::evict_tables`] after a partial sample refresh — entries
//! whose template touches a drifted base table are marked for
//! re-validation (not dropped: the next admission gets the stale plan back
//! via [`Admission::Revalidate`] and may cheaply re-admit it when its
//! re-validated cost still holds), while templates over untouched tables
//! keep warm-hitting.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use reopt_common::{lock_unpoisoned, Error, Result, TableId};
use reopt_plan::PhysicalPlan;

/// A cached re-optimization outcome for one query template.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The final plan of the re-optimization loop, shared by every session
    /// that hits this template.
    pub plan: Arc<PhysicalPlan>,
    /// Rounds the loop took when the plan was computed.
    pub rounds: usize,
    /// Whether the loop converged (vs. stopping on a cap/budget).
    pub converged: bool,
    /// Wall time of the re-optimization that produced the plan.
    pub reopt_time: Duration,
    /// Statistics version the plan was computed under; a newer service
    /// version makes the entry stale.
    pub stats_version: u64,
    /// The plan's cost under the final Γ of the run that produced it —
    /// the reference value re-validation compares against.
    pub validated_cost: f64,
    /// Base tables the template touches (sorted, deduplicated), driving
    /// per-table eviction.
    pub base_tables: Vec<TableId>,
}

/// A single-flight rendezvous: the leader publishes exactly once, waiters
/// block until then.
#[derive(Debug, Default)]
pub(crate) struct Flight {
    result: Mutex<Option<Result<CachedPlan>>>,
    cv: Condvar,
}

impl Flight {
    /// Block until the leader publishes, then return its result.
    pub(crate) fn wait(&self) -> Result<CachedPlan> {
        let mut guard = lock_unpoisoned(&self.result);
        loop {
            if let Some(result) = guard.as_ref() {
                return result.clone();
            }
            guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn publish(&self, result: Result<CachedPlan>) {
        let mut guard = lock_unpoisoned(&self.result);
        *guard = Some(result);
        self.cv.notify_all();
    }
}

#[derive(Debug)]
struct Entry {
    cached: CachedPlan,
    /// Logical clock value of the last touch (monotone; higher = fresher).
    last_used: u64,
    /// Set by [`PlanCache::evict_tables`]: a base table this plan touches
    /// had its sample refreshed, so the next admission must re-validate
    /// the plan before serving it again.
    revalidate: bool,
}

#[derive(Debug)]
enum Slot {
    /// A leader is computing; joiners wait on the flight.
    InFlight(Arc<Flight>),
    /// A plan is available.
    Ready(Entry),
}

/// Outcome of [`PlanCache::begin`] — what this session must do next.
#[derive(Debug)]
pub(crate) enum Admission {
    /// Warm hit: the plan, immediately.
    Hit(CachedPlan),
    /// Another session is computing this template; wait on the flight.
    Wait(Arc<Flight>),
    /// This session leads: compute, then `complete` the guard.
    Lead(LeadGuard),
    /// This session leads, holding a surgically-evicted plan: re-validate
    /// `stale` against the fresh samples and either re-admit it or fall
    /// through to a full re-optimization, then `complete` the guard.
    Revalidate { guard: LeadGuard, stale: CachedPlan },
}

/// Leadership token for one in-flight template. The leader must call
/// [`LeadGuard::complete`]; if it unwinds first, `Drop` publishes a
/// retryable [`Error::Service`] to the waiters and frees the slot.
#[derive(Debug)]
pub(crate) struct LeadGuard {
    cache: Arc<PlanCache>,
    fingerprint: u64,
    flight: Arc<Flight>,
    completed: bool,
}

impl LeadGuard {
    /// Publish the computation's outcome: a success is inserted into the
    /// cache (possibly LRU-evicting) and handed to every waiter; an error
    /// frees the slot so the next arrival retries.
    pub(crate) fn complete(mut self, result: Result<CachedPlan>) {
        self.completed = true;
        self.cache
            .finish_flight(self.fingerprint, &self.flight, result);
    }
}

impl Drop for LeadGuard {
    fn drop(&mut self) {
        if !self.completed {
            self.cache.finish_flight(
                self.fingerprint,
                &self.flight,
                Err(Error::service(
                    "plan computation abandoned: the leading session panicked or was dropped; retry",
                )),
            );
        }
    }
}

/// The cache's interior state: the slots plus two side indexes kept in
/// lockstep under one lock. All ordered maps/sets (rule R1): eviction and
/// per-table marking scan them, and ordered walks keep those scans — and
/// with them which entry dies on an LRU-tick tie — deterministic by
/// construction.
#[derive(Debug, Default)]
struct CacheMap {
    /// Template fingerprint → slot. The map never exceeds `capacity` +
    /// in-flight slots, so the `BTreeMap` lookup is noise next to the
    /// re-optimization it fronts.
    slots: BTreeMap<u64, Slot>,
    /// Base table → fingerprints of `Ready` entries touching it — the
    /// index [`PlanCache::evict_tables`] walks. In-flight slots are
    /// indexed only once they land (their base tables travel in the
    /// [`CachedPlan`]).
    by_table: BTreeMap<TableId, BTreeSet<u64>>,
    /// Fingerprints whose *in-flight* computation overlapped a surgical
    /// refresh: the leader validated against the pre-refresh samples but
    /// will land under an unchanged stats version, so its entry is marked
    /// for re-validation the moment it becomes `Ready`.
    pending_revalidate: BTreeSet<u64>,
}

impl CacheMap {
    /// Remove a `Ready` slot, unindexing it everywhere. In-flight slots
    /// are left alone (a leader's pending insert must not be raced away).
    fn remove_ready(&mut self, fingerprint: u64) -> Option<Entry> {
        if !matches!(self.slots.get(&fingerprint), Some(Slot::Ready(_))) {
            return None;
        }
        let Some(Slot::Ready(entry)) = self.slots.remove(&fingerprint) else {
            return None;
        };
        for t in &entry.cached.base_tables {
            if let Some(set) = self.by_table.get_mut(t) {
                set.remove(&fingerprint);
                if set.is_empty() {
                    self.by_table.remove(t);
                }
            }
        }
        self.pending_revalidate.remove(&fingerprint);
        Some(entry)
    }
}

/// The shared, thread-safe plan cache (see the module docs).
#[derive(Debug)]
pub struct PlanCache {
    map: Mutex<CacheMap>,
    /// Max `Ready` entries kept; ≥ 1.
    capacity: usize,
    /// Logical LRU clock.
    tick: AtomicU64,
    lru_evictions: AtomicU64,
    stale_evictions: AtomicU64,
    /// Plans marked for re-validation by [`PlanCache::evict_tables`],
    /// lifetime total.
    table_evictions: AtomicU64,
}

impl PlanCache {
    /// Cache holding at most `capacity` plans (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            map: Mutex::new(CacheMap::default()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            lru_evictions: AtomicU64::new(0),
            stale_evictions: AtomicU64::new(0),
            table_evictions: AtomicU64::new(0),
        }
    }

    /// Every mutation under this lock is a handful of map operations kept
    /// consistent as a unit, so a panicked sharer cannot leave the maps
    /// torn: recover from poison.
    fn lock(&self) -> MutexGuard<'_, CacheMap> {
        lock_unpoisoned(&self.map)
    }

    fn next_tick(&self) -> u64 {
        // lint: relaxed-ok(fetch_add RMWs on one atomic are totally ordered, so ticks are unique; ticks are compared only among themselves for LRU age, and all stores/loads of `last_used` happen under the slots lock)
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of `Ready` plans held (in-flight slots excluded).
    pub fn len(&self) -> usize {
        self.lock()
            .slots
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Plans evicted to stay under capacity, lifetime total.
    pub fn lru_evictions(&self) -> u64 {
        // lint: relaxed-ok(monotonic telemetry counter; never read to make a control decision, and readers that need a settled value join the writers first)
        self.lru_evictions.load(Ordering::Relaxed)
    }

    /// Plans evicted because their statistics version was stale, lifetime
    /// total.
    pub fn stale_evictions(&self) -> u64 {
        // lint: relaxed-ok(monotonic telemetry counter; never read to make a control decision)
        self.stale_evictions.load(Ordering::Relaxed)
    }

    /// Plans marked for re-validation because a base table they touch had
    /// its sample refreshed, lifetime total.
    pub fn table_evictions(&self) -> u64 {
        // lint: relaxed-ok(monotonic telemetry counter; never read to make a control decision)
        self.table_evictions.load(Ordering::Relaxed)
    }

    /// Drop every `Ready` entry (in-flight computations are left to land;
    /// their results stay usable — they carry their own version).
    pub fn clear(&self) {
        let mut map = self.lock();
        map.slots.retain(|_, s| matches!(s, Slot::InFlight(_)));
        map.by_table.clear();
        // A full flush supersedes any pending surgical marks: in-flight
        // results carry their (now old) stats version and will be stale-
        // evicted lazily on next touch.
        map.pending_revalidate.clear();
    }

    /// Surgical reaction to a partial sample refresh: mark every `Ready`
    /// entry touching one of `tables` for re-validation (the entry stays
    /// resident — its next admission returns [`Admission::Revalidate`]),
    /// and mark every in-flight computation too: a leader mid-flight
    /// validated against the *pre*-refresh samples, yet its result lands
    /// under an unchanged stats version, so without the mark it would read
    /// as fresh forever. Plans over untouched tables are not perturbed.
    /// Returns the number of plans newly marked.
    pub fn evict_tables(&self, tables: &[TableId]) -> u64 {
        let mut map = self.lock();
        let mut fps: BTreeSet<u64> = BTreeSet::new();
        for t in tables {
            if let Some(set) = map.by_table.get(t) {
                fps.extend(set.iter().copied());
            }
        }
        let mut marked = 0u64;
        for fp in fps {
            if let Some(Slot::Ready(entry)) = map.slots.get_mut(&fp) {
                if !entry.revalidate {
                    entry.revalidate = true;
                    marked += 1;
                }
            }
        }
        let in_flight: Vec<u64> = map
            .slots
            .iter()
            .filter_map(|(fp, s)| matches!(s, Slot::InFlight(_)).then_some(*fp))
            .collect();
        for fp in in_flight {
            if map.pending_revalidate.insert(fp) {
                marked += 1;
            }
        }
        // lint: relaxed-ok(telemetry counter bumped under the map lock; the lock orders it with the marks it counts)
        self.table_evictions.fetch_add(marked, Ordering::Relaxed);
        marked
    }

    /// Admission control for `fingerprint` under `stats_version` — decides
    /// hit / wait / lead atomically (one map lock). `self` is taken as
    /// `Arc` because a `Lead` admission hands the cache to the guard.
    pub(crate) fn begin(self: &Arc<Self>, fingerprint: u64, stats_version: u64) -> Admission {
        let mut map = self.lock();
        // Entries *older* than the caller's version are evicted before
        // admission so the fall-through below re-optimizes them. Strictly
        // older, not different: a session that snapshotted the version
        // just before a bump may race a neighbor that already cached the
        // post-bump plan, and evicting that fresher entry would waste a
        // whole re-optimization only to re-insert an already-stale plan.
        // A full flush wins over a surgical mark: the removed entry is
        // gone, not offered for re-validation.
        if let Some(Slot::Ready(entry)) = map.slots.get(&fingerprint) {
            if entry.cached.stats_version < stats_version {
                map.remove_ready(fingerprint);
                // lint: relaxed-ok(telemetry counter bumped under the map lock; the lock orders it with the eviction it counts)
                self.stale_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        // A surgically-marked entry leads a re-validation flight: the
        // stale plan travels with the guard, the slot flips to in-flight
        // so concurrent arrivals wait for one verdict instead of each
        // re-validating.
        if matches!(map.slots.get(&fingerprint), Some(Slot::Ready(e)) if e.revalidate) {
            if let Some(entry) = map.remove_ready(fingerprint) {
                let flight = Arc::new(Flight::default());
                map.slots
                    .insert(fingerprint, Slot::InFlight(Arc::clone(&flight)));
                return Admission::Revalidate {
                    guard: LeadGuard {
                        cache: Arc::clone(self),
                        fingerprint,
                        flight,
                        completed: false,
                    },
                    stale: entry.cached,
                };
            }
        }
        match map.slots.get_mut(&fingerprint) {
            Some(Slot::InFlight(flight)) => Admission::Wait(Arc::clone(flight)),
            Some(Slot::Ready(entry)) => {
                entry.last_used = self.next_tick();
                Admission::Hit(entry.cached.clone())
            }
            None => {
                let flight = Arc::new(Flight::default());
                map.slots
                    .insert(fingerprint, Slot::InFlight(Arc::clone(&flight)));
                Admission::Lead(LeadGuard {
                    cache: Arc::clone(self),
                    fingerprint,
                    flight,
                    completed: false,
                })
            }
        }
    }

    fn finish_flight(&self, fingerprint: u64, flight: &Arc<Flight>, result: Result<CachedPlan>) {
        {
            let mut map = self.lock();
            // Only touch the slot if it still belongs to this flight — a
            // failed leader's slot may have been re-claimed by a retry.
            let ours = matches!(
                map.slots.get(&fingerprint),
                Some(Slot::InFlight(f)) if Arc::ptr_eq(f, flight)
            );
            if ours {
                match &result {
                    Ok(cached) => {
                        // A surgical refresh that raced this flight left a
                        // pending mark: the fresh entry starts life
                        // needing re-validation.
                        let revalidate = map.pending_revalidate.remove(&fingerprint);
                        for t in &cached.base_tables {
                            map.by_table.entry(*t).or_default().insert(fingerprint);
                        }
                        map.slots.insert(
                            fingerprint,
                            Slot::Ready(Entry {
                                cached: cached.clone(),
                                last_used: self.next_tick(),
                                revalidate,
                            }),
                        );
                        self.evict_over_capacity(&mut map);
                    }
                    Err(_) => {
                        map.slots.remove(&fingerprint);
                        map.pending_revalidate.remove(&fingerprint);
                    }
                }
            }
        }
        flight.publish(result);
    }

    /// Evict least-recently-used `Ready` entries until at most `capacity`
    /// remain. In-flight slots never count against capacity and are never
    /// evicted — a waiter holds a flight reference, not a map reference,
    /// so eviction could strand nobody anyway, but the leader's pending
    /// insert must not be raced away.
    fn evict_over_capacity(&self, map: &mut CacheMap) {
        loop {
            let ready = map
                .slots
                .iter()
                .filter_map(|(fp, s)| match s {
                    Slot::Ready(e) => Some((*fp, e.last_used)),
                    Slot::InFlight(_) => None,
                })
                .collect::<Vec<_>>();
            if ready.len() <= self.capacity {
                return;
            }
            if let Some(&(victim, _)) = ready.iter().min_by_key(|(_, used)| *used) {
                map.remove_ready(victim);
                // lint: relaxed-ok(telemetry counter bumped under the map lock; the lock orders it with the eviction it counts)
                self.lru_evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_common::{RelId, TableId};
    use reopt_plan::physical::PlanNodeInfo;
    use reopt_plan::AccessPath;

    fn plan(rel: u32) -> CachedPlan {
        CachedPlan {
            plan: Arc::new(PhysicalPlan::Scan {
                rel: RelId::new(rel),
                table: TableId::new(rel),
                access: AccessPath::SeqScan,
                info: PlanNodeInfo::default(),
            }),
            rounds: 1,
            converged: true,
            reopt_time: Duration::ZERO,
            stats_version: 0,
            validated_cost: 1.0,
            base_tables: vec![TableId::new(rel)],
        }
    }

    fn lead(cache: &Arc<PlanCache>, fp: u64) -> LeadGuard {
        match cache.begin(fp, 0) {
            Admission::Lead(g) => g,
            other => panic!("expected Lead for {fp}, got {other:?}"),
        }
    }

    #[test]
    fn first_arrival_leads_then_hits() {
        let cache = Arc::new(PlanCache::new(8));
        lead(&cache, 1).complete(Ok(plan(0)));
        match cache.begin(1, 0) {
            Admission::Hit(c) => assert_eq!(c.rounds, 1),
            other => panic!("expected Hit, got {other:?}"),
        }
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_arrivals_wait_for_the_leader() {
        let cache = Arc::new(PlanCache::new(8));
        let guard = lead(&cache, 7);
        let waiter = match cache.begin(7, 0) {
            Admission::Wait(f) => f,
            other => panic!("expected Wait, got {other:?}"),
        };
        let handle = std::thread::spawn(move || waiter.wait());
        guard.complete(Ok(plan(0)));
        let got = handle.join().unwrap().unwrap();
        assert!(got.converged);
    }

    #[test]
    fn failed_leader_frees_the_slot_and_propagates() {
        let cache = Arc::new(PlanCache::new(8));
        let guard = lead(&cache, 9);
        let waiter = match cache.begin(9, 0) {
            Admission::Wait(f) => f,
            other => panic!("expected Wait, got {other:?}"),
        };
        guard.complete(Err(Error::invalid("no relations")));
        assert!(matches!(waiter.wait(), Err(Error::Invalid(_))));
        // Slot freed: the next arrival retries as leader.
        assert!(matches!(cache.begin(9, 0), Admission::Lead(_)));
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn abandoned_leader_publishes_a_retryable_error() {
        let cache = Arc::new(PlanCache::new(8));
        let guard = lead(&cache, 3);
        let waiter = match cache.begin(3, 0) {
            Admission::Wait(f) => f,
            other => panic!("expected Wait, got {other:?}"),
        };
        drop(guard); // leader "panicked"
        let err = waiter.wait().unwrap_err();
        assert!(err.is_retryable(), "{err}");
        assert!(matches!(cache.begin(3, 0), Admission::Lead(_)));
    }

    #[test]
    fn lru_evicts_the_coldest_ready_entry() {
        let cache = Arc::new(PlanCache::new(2));
        lead(&cache, 1).complete(Ok(plan(1)));
        lead(&cache, 2).complete(Ok(plan(2)));
        // Touch 1 so 2 is the coldest.
        assert!(matches!(cache.begin(1, 0), Admission::Hit(_)));
        lead(&cache, 3).complete(Ok(plan(3)));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lru_evictions(), 1);
        assert!(matches!(cache.begin(2, 0), Admission::Lead(_)), "2 evicted");
        match cache.begin(1, 0) {
            Admission::Hit(_) => {}
            other => panic!("1 should have survived, got {other:?}"),
        }
    }

    #[test]
    fn in_flight_slots_are_never_evicted() {
        let cache = Arc::new(PlanCache::new(1));
        let guard = lead(&cache, 10); // in-flight, exempt from capacity
        lead(&cache, 11).complete(Ok(plan(1)));
        lead(&cache, 12).complete(Ok(plan(2))); // evicts 11
        assert!(matches!(cache.begin(10, 0), Admission::Wait(_)));
        guard.complete(Ok(plan(0)));
        assert!(matches!(cache.begin(10, 0), Admission::Hit(_)));
    }

    #[test]
    fn stale_version_forces_a_new_leader() {
        let cache = Arc::new(PlanCache::new(8));
        lead(&cache, 5).complete(Ok(plan(0)));
        assert!(matches!(cache.begin(5, 0), Admission::Hit(_)));
        // Version bump: the entry is lazily evicted, caller leads again.
        assert!(matches!(cache.begin(5, 1), Admission::Lead(_)));
        assert_eq!(cache.stale_evictions(), 1);
    }

    #[test]
    fn straggler_does_not_evict_a_fresher_entry() {
        // A session that snapshotted the version pre-bump races a
        // neighbor that already cached the post-bump plan: it must hit
        // the fresher entry, not evict it and re-optimize.
        let cache = Arc::new(PlanCache::new(8));
        let newer = CachedPlan {
            stats_version: 1,
            ..plan(0)
        };
        lead(&cache, 6).complete(Ok(newer));
        match cache.begin(6, 0) {
            Admission::Hit(c) => assert_eq!(c.stats_version, 1),
            other => panic!("straggler must warm-hit, got {other:?}"),
        }
        assert_eq!(cache.stale_evictions(), 0);
    }

    #[test]
    fn evict_tables_marks_only_touching_plans() {
        let cache = Arc::new(PlanCache::new(8));
        lead(&cache, 1).complete(Ok(plan(0))); // touches table 0
        lead(&cache, 2).complete(Ok(plan(1))); // touches table 1
        assert_eq!(cache.evict_tables(&[TableId::new(0)]), 1);
        assert_eq!(cache.table_evictions(), 1);
        // The untouched template keeps warm-hitting…
        assert!(matches!(cache.begin(2, 0), Admission::Hit(_)));
        // …while the touched one leads a re-validation flight carrying
        // the stale plan.
        match cache.begin(1, 0) {
            Admission::Revalidate { guard, stale } => {
                assert_eq!(stale.base_tables, vec![TableId::new(0)]);
                // Concurrent arrivals wait on the verdict.
                assert!(matches!(cache.begin(1, 0), Admission::Wait(_)));
                // Re-admission makes it a plain hit again.
                guard.complete(Ok(stale));
            }
            other => panic!("expected Revalidate, got {other:?}"),
        }
        assert!(matches!(cache.begin(1, 0), Admission::Hit(_)));
        // Marking is idempotent per mark: re-marking an already-marked
        // plan counts nothing new.
        cache.evict_tables(&[TableId::new(0)]);
        cache.evict_tables(&[TableId::new(0)]);
        assert_eq!(cache.table_evictions(), 2);
    }

    #[test]
    fn evict_tables_marks_in_flight_computations() {
        // A leader that was admitted before the refresh validated against
        // the old samples but lands under the same stats version — it
        // must not read as fresh.
        let cache = Arc::new(PlanCache::new(8));
        let guard = lead(&cache, 4);
        assert_eq!(cache.evict_tables(&[TableId::new(9)]), 1);
        guard.complete(Ok(plan(0)));
        assert!(matches!(cache.begin(4, 0), Admission::Revalidate { .. }));
    }

    #[test]
    fn full_flush_wins_over_a_surgical_mark() {
        let cache = Arc::new(PlanCache::new(8));
        lead(&cache, 5).complete(Ok(plan(0)));
        cache.evict_tables(&[TableId::new(0)]);
        // Version bump: the marked entry is dropped outright, not offered
        // for re-validation against stats it can't survive.
        assert!(matches!(cache.begin(5, 1), Admission::Lead(_)));
        assert_eq!(cache.stale_evictions(), 1);
    }

    #[test]
    fn evict_tables_ignores_untracked_tables() {
        let cache = Arc::new(PlanCache::new(8));
        lead(&cache, 1).complete(Ok(plan(0)));
        assert_eq!(cache.evict_tables(&[TableId::new(42)]), 0);
        assert!(matches!(cache.begin(1, 0), Admission::Hit(_)));
    }

    #[test]
    fn clear_keeps_in_flight_slots() {
        let cache = Arc::new(PlanCache::new(8));
        lead(&cache, 1).complete(Ok(plan(0)));
        let guard = lead(&cache, 2);
        cache.clear();
        assert_eq!(cache.len(), 0);
        assert!(matches!(cache.begin(2, 0), Admission::Wait(_)));
        guard.complete(Ok(plan(0)));
        assert_eq!(cache.len(), 1);
    }
}
