//! The re-optimization-aware plan cache: template-keyed, single-flight,
//! LRU + staleness eviction.
//!
//! Sampling-based re-optimization is cheap *per query* but a serving
//! system pays it per *arrival* unless plans are reused. The cache keys
//! final plans by [`reopt_plan::template_fingerprint`] — literals
//! parameterized out — so every instance of a query shape after the first
//! is a hash lookup.
//!
//! **Single-flight admission.** The expensive event is N sessions
//! arriving with the same cold template at once: naively all N run the
//! full sampling loop and N−1 results are discarded. [`PlanCache::begin`]
//! arbitrates under one short map lock: the first arrival becomes the
//! *leader* (it gets a [`LeadGuard`] and must compute), every concurrent
//! arrival gets a [`Flight`] handle and blocks on a condvar until the
//! leader publishes. Exactly one re-optimization runs; all N sessions
//! receive the identical `Arc`'d plan. A leader that fails publishes its
//! error to the waiters and *removes* the slot, so the next arrival
//! retries rather than caching the failure; a leader that panics is caught
//! by `LeadGuard::drop`, which publishes an [`Error::Service`] so waiters
//! can retry instead of blocking forever.
//!
//! **Eviction.** Entries die two ways: LRU when the cache exceeds its
//! capacity (least-recently-touched `Ready` entry goes; in-flight slots
//! are never evicted), and staleness when the service bumps its statistics
//! version (re-ANALYZE / sample refresh) — version checks happen lazily on
//! lookup, so a bump is O(1) and stale plans are re-optimized on next
//! touch, not en masse.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use reopt_common::{lock_unpoisoned, Error, Result};
use reopt_plan::PhysicalPlan;

/// A cached re-optimization outcome for one query template.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The final plan of the re-optimization loop, shared by every session
    /// that hits this template.
    pub plan: Arc<PhysicalPlan>,
    /// Rounds the loop took when the plan was computed.
    pub rounds: usize,
    /// Whether the loop converged (vs. stopping on a cap/budget).
    pub converged: bool,
    /// Wall time of the re-optimization that produced the plan.
    pub reopt_time: Duration,
    /// Statistics version the plan was computed under; a newer service
    /// version makes the entry stale.
    pub stats_version: u64,
}

/// A single-flight rendezvous: the leader publishes exactly once, waiters
/// block until then.
#[derive(Debug, Default)]
pub(crate) struct Flight {
    result: Mutex<Option<Result<CachedPlan>>>,
    cv: Condvar,
}

impl Flight {
    /// Block until the leader publishes, then return its result.
    pub(crate) fn wait(&self) -> Result<CachedPlan> {
        let mut guard = lock_unpoisoned(&self.result);
        loop {
            if let Some(result) = guard.as_ref() {
                return result.clone();
            }
            guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn publish(&self, result: Result<CachedPlan>) {
        let mut guard = lock_unpoisoned(&self.result);
        *guard = Some(result);
        self.cv.notify_all();
    }
}

#[derive(Debug)]
struct Entry {
    cached: CachedPlan,
    /// Logical clock value of the last touch (monotone; higher = fresher).
    last_used: u64,
}

#[derive(Debug)]
enum Slot {
    /// A leader is computing; joiners wait on the flight.
    InFlight(Arc<Flight>),
    /// A plan is available.
    Ready(Entry),
}

/// Outcome of [`PlanCache::begin`] — what this session must do next.
#[derive(Debug)]
pub(crate) enum Admission {
    /// Warm hit: the plan, immediately.
    Hit(CachedPlan),
    /// Another session is computing this template; wait on the flight.
    Wait(Arc<Flight>),
    /// This session leads: compute, then `complete` the guard.
    Lead(LeadGuard),
}

/// Leadership token for one in-flight template. The leader must call
/// [`LeadGuard::complete`]; if it unwinds first, `Drop` publishes a
/// retryable [`Error::Service`] to the waiters and frees the slot.
#[derive(Debug)]
pub(crate) struct LeadGuard {
    cache: Arc<PlanCache>,
    fingerprint: u64,
    flight: Arc<Flight>,
    completed: bool,
}

impl LeadGuard {
    /// Publish the computation's outcome: a success is inserted into the
    /// cache (possibly LRU-evicting) and handed to every waiter; an error
    /// frees the slot so the next arrival retries.
    pub(crate) fn complete(mut self, result: Result<CachedPlan>) {
        self.completed = true;
        self.cache
            .finish_flight(self.fingerprint, &self.flight, result);
    }
}

impl Drop for LeadGuard {
    fn drop(&mut self) {
        if !self.completed {
            self.cache.finish_flight(
                self.fingerprint,
                &self.flight,
                Err(Error::service(
                    "plan computation abandoned: the leading session panicked or was dropped; retry",
                )),
            );
        }
    }
}

/// The shared, thread-safe plan cache (see the module docs).
#[derive(Debug)]
pub struct PlanCache {
    /// Fingerprint → slot. Ordered map (rule R1): eviction scans the
    /// slots, and an ordered walk keeps that scan — and with it which
    /// entry dies on an LRU-tick tie — deterministic by construction. The
    /// map never exceeds `capacity` + in-flight slots, so the `BTreeMap`
    /// lookup is noise next to the re-optimization it fronts.
    slots: Mutex<BTreeMap<u64, Slot>>,
    /// Max `Ready` entries kept; ≥ 1.
    capacity: usize,
    /// Logical LRU clock.
    tick: AtomicU64,
    lru_evictions: AtomicU64,
    stale_evictions: AtomicU64,
}

impl PlanCache {
    /// Cache holding at most `capacity` plans (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            slots: Mutex::new(BTreeMap::new()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            lru_evictions: AtomicU64::new(0),
            stale_evictions: AtomicU64::new(0),
        }
    }

    /// Every mutation under this lock is a single map operation, so a
    /// panicked sharer cannot leave the map torn: recover from poison.
    fn lock(&self) -> MutexGuard<'_, BTreeMap<u64, Slot>> {
        lock_unpoisoned(&self.slots)
    }

    fn next_tick(&self) -> u64 {
        // lint: relaxed-ok(fetch_add RMWs on one atomic are totally ordered, so ticks are unique; ticks are compared only among themselves for LRU age, and all stores/loads of `last_used` happen under the slots lock)
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of `Ready` plans held (in-flight slots excluded).
    pub fn len(&self) -> usize {
        self.lock()
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Plans evicted to stay under capacity, lifetime total.
    pub fn lru_evictions(&self) -> u64 {
        // lint: relaxed-ok(monotonic telemetry counter; never read to make a control decision, and readers that need a settled value join the writers first)
        self.lru_evictions.load(Ordering::Relaxed)
    }

    /// Plans evicted because their statistics version was stale, lifetime
    /// total.
    pub fn stale_evictions(&self) -> u64 {
        // lint: relaxed-ok(monotonic telemetry counter; never read to make a control decision)
        self.stale_evictions.load(Ordering::Relaxed)
    }

    /// Drop every `Ready` entry (in-flight computations are left to land;
    /// their results stay usable — they carry their own version).
    pub fn clear(&self) {
        self.lock().retain(|_, s| matches!(s, Slot::InFlight(_)));
    }

    /// Admission control for `fingerprint` under `stats_version` — decides
    /// hit / wait / lead atomically (one map lock). `self` is taken as
    /// `Arc` because a `Lead` admission hands the cache to the guard.
    pub(crate) fn begin(self: &Arc<Self>, fingerprint: u64, stats_version: u64) -> Admission {
        let mut slots = self.lock();
        // Entries *older* than the caller's version are evicted before
        // admission so the fall-through below re-optimizes them. Strictly
        // older, not different: a session that snapshotted the version
        // just before a bump may race a neighbor that already cached the
        // post-bump plan, and evicting that fresher entry would waste a
        // whole re-optimization only to re-insert an already-stale plan.
        if let Some(Slot::Ready(entry)) = slots.get(&fingerprint) {
            if entry.cached.stats_version < stats_version {
                slots.remove(&fingerprint);
                // lint: relaxed-ok(telemetry counter bumped under the slots lock; the lock orders it with the eviction it counts)
                self.stale_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        match slots.get_mut(&fingerprint) {
            Some(Slot::InFlight(flight)) => Admission::Wait(Arc::clone(flight)),
            Some(Slot::Ready(entry)) => {
                entry.last_used = self.next_tick();
                Admission::Hit(entry.cached.clone())
            }
            None => {
                let flight = Arc::new(Flight::default());
                slots.insert(fingerprint, Slot::InFlight(Arc::clone(&flight)));
                Admission::Lead(LeadGuard {
                    cache: Arc::clone(self),
                    fingerprint,
                    flight,
                    completed: false,
                })
            }
        }
    }

    fn finish_flight(&self, fingerprint: u64, flight: &Arc<Flight>, result: Result<CachedPlan>) {
        {
            let mut slots = self.lock();
            // Only touch the slot if it still belongs to this flight — a
            // failed leader's slot may have been re-claimed by a retry.
            let ours = matches!(
                slots.get(&fingerprint),
                Some(Slot::InFlight(f)) if Arc::ptr_eq(f, flight)
            );
            if ours {
                match &result {
                    Ok(cached) => {
                        slots.insert(
                            fingerprint,
                            Slot::Ready(Entry {
                                cached: cached.clone(),
                                last_used: self.next_tick(),
                            }),
                        );
                        self.evict_over_capacity(&mut slots);
                    }
                    Err(_) => {
                        slots.remove(&fingerprint);
                    }
                }
            }
        }
        flight.publish(result);
    }

    /// Evict least-recently-used `Ready` entries until at most `capacity`
    /// remain. In-flight slots never count against capacity and are never
    /// evicted — a waiter holds a flight reference, not a map reference,
    /// so eviction could strand nobody anyway, but the leader's pending
    /// insert must not be raced away.
    fn evict_over_capacity(&self, slots: &mut BTreeMap<u64, Slot>) {
        loop {
            let ready = slots
                .iter()
                .filter_map(|(fp, s)| match s {
                    Slot::Ready(e) => Some((*fp, e.last_used)),
                    Slot::InFlight(_) => None,
                })
                .collect::<Vec<_>>();
            if ready.len() <= self.capacity {
                return;
            }
            if let Some(&(victim, _)) = ready.iter().min_by_key(|(_, used)| *used) {
                slots.remove(&victim);
                // lint: relaxed-ok(telemetry counter bumped under the slots lock; the lock orders it with the eviction it counts)
                self.lru_evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_common::{RelId, TableId};
    use reopt_plan::physical::PlanNodeInfo;
    use reopt_plan::AccessPath;

    fn plan(rel: u32) -> CachedPlan {
        CachedPlan {
            plan: Arc::new(PhysicalPlan::Scan {
                rel: RelId::new(rel),
                table: TableId::new(rel),
                access: AccessPath::SeqScan,
                info: PlanNodeInfo::default(),
            }),
            rounds: 1,
            converged: true,
            reopt_time: Duration::ZERO,
            stats_version: 0,
        }
    }

    fn lead(cache: &Arc<PlanCache>, fp: u64) -> LeadGuard {
        match cache.begin(fp, 0) {
            Admission::Lead(g) => g,
            other => panic!("expected Lead for {fp}, got {other:?}"),
        }
    }

    #[test]
    fn first_arrival_leads_then_hits() {
        let cache = Arc::new(PlanCache::new(8));
        lead(&cache, 1).complete(Ok(plan(0)));
        match cache.begin(1, 0) {
            Admission::Hit(c) => assert_eq!(c.rounds, 1),
            other => panic!("expected Hit, got {other:?}"),
        }
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_arrivals_wait_for_the_leader() {
        let cache = Arc::new(PlanCache::new(8));
        let guard = lead(&cache, 7);
        let waiter = match cache.begin(7, 0) {
            Admission::Wait(f) => f,
            other => panic!("expected Wait, got {other:?}"),
        };
        let handle = std::thread::spawn(move || waiter.wait());
        guard.complete(Ok(plan(0)));
        let got = handle.join().unwrap().unwrap();
        assert!(got.converged);
    }

    #[test]
    fn failed_leader_frees_the_slot_and_propagates() {
        let cache = Arc::new(PlanCache::new(8));
        let guard = lead(&cache, 9);
        let waiter = match cache.begin(9, 0) {
            Admission::Wait(f) => f,
            other => panic!("expected Wait, got {other:?}"),
        };
        guard.complete(Err(Error::invalid("no relations")));
        assert!(matches!(waiter.wait(), Err(Error::Invalid(_))));
        // Slot freed: the next arrival retries as leader.
        assert!(matches!(cache.begin(9, 0), Admission::Lead(_)));
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn abandoned_leader_publishes_a_retryable_error() {
        let cache = Arc::new(PlanCache::new(8));
        let guard = lead(&cache, 3);
        let waiter = match cache.begin(3, 0) {
            Admission::Wait(f) => f,
            other => panic!("expected Wait, got {other:?}"),
        };
        drop(guard); // leader "panicked"
        let err = waiter.wait().unwrap_err();
        assert!(err.is_retryable(), "{err}");
        assert!(matches!(cache.begin(3, 0), Admission::Lead(_)));
    }

    #[test]
    fn lru_evicts_the_coldest_ready_entry() {
        let cache = Arc::new(PlanCache::new(2));
        lead(&cache, 1).complete(Ok(plan(1)));
        lead(&cache, 2).complete(Ok(plan(2)));
        // Touch 1 so 2 is the coldest.
        assert!(matches!(cache.begin(1, 0), Admission::Hit(_)));
        lead(&cache, 3).complete(Ok(plan(3)));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lru_evictions(), 1);
        assert!(matches!(cache.begin(2, 0), Admission::Lead(_)), "2 evicted");
        match cache.begin(1, 0) {
            Admission::Hit(_) => {}
            other => panic!("1 should have survived, got {other:?}"),
        }
    }

    #[test]
    fn in_flight_slots_are_never_evicted() {
        let cache = Arc::new(PlanCache::new(1));
        let guard = lead(&cache, 10); // in-flight, exempt from capacity
        lead(&cache, 11).complete(Ok(plan(1)));
        lead(&cache, 12).complete(Ok(plan(2))); // evicts 11
        assert!(matches!(cache.begin(10, 0), Admission::Wait(_)));
        guard.complete(Ok(plan(0)));
        assert!(matches!(cache.begin(10, 0), Admission::Hit(_)));
    }

    #[test]
    fn stale_version_forces_a_new_leader() {
        let cache = Arc::new(PlanCache::new(8));
        lead(&cache, 5).complete(Ok(plan(0)));
        assert!(matches!(cache.begin(5, 0), Admission::Hit(_)));
        // Version bump: the entry is lazily evicted, caller leads again.
        assert!(matches!(cache.begin(5, 1), Admission::Lead(_)));
        assert_eq!(cache.stale_evictions(), 1);
    }

    #[test]
    fn straggler_does_not_evict_a_fresher_entry() {
        // A session that snapshotted the version pre-bump races a
        // neighbor that already cached the post-bump plan: it must hit
        // the fresher entry, not evict it and re-optimize.
        let cache = Arc::new(PlanCache::new(8));
        let newer = CachedPlan {
            stats_version: 1,
            ..plan(0)
        };
        lead(&cache, 6).complete(Ok(newer));
        match cache.begin(6, 0) {
            Admission::Hit(c) => assert_eq!(c.stats_version, 1),
            other => panic!("straggler must warm-hit, got {other:?}"),
        }
        assert_eq!(cache.stale_evictions(), 0);
    }

    #[test]
    fn clear_keeps_in_flight_slots() {
        let cache = Arc::new(PlanCache::new(8));
        lead(&cache, 1).complete(Ok(plan(0)));
        let guard = lead(&cache, 2);
        cache.clear();
        assert_eq!(cache.len(), 0);
        assert!(matches!(cache.begin(2, 0), Admission::Wait(_)));
        guard.complete(Ok(plan(0)));
        assert_eq!(cache.len(), 1);
    }
}
