//! Hash aggregation over the final join result.
//!
//! SQL semantics at the granularity the workloads need: NULL inputs are
//! skipped by `SUM`/`MIN`/`MAX`/`AVG`; `COUNT(*)` counts tuples; grouping
//! treats NULL as a regular group key.
//!
//! Two engines produce bit-identical output (see [`aggregate_opts`]): the
//! row engine builds one `Vec<i64>` key per input row and updates a
//! key-addressed map entry per row; the columnar engine assigns every row
//! a dense group id through a chained hash over the gathered key columns
//! (one key vector per *group*, not per row), then updates each
//! aggregate's accumulators column-at-a-time. Both visit rows in
//! ascending order within every group, so even float `SUM`/`AVG`
//! accumulation matches bit for bit; both render through the same
//! sort-by-raw-key materialization.

use crate::metrics::ExecMetrics;
use crate::rowset::RowSet;
use reopt_common::hash::FxHasher;
use reopt_common::{FxHashMap, Result};
use reopt_plan::query::{AggExpr, AggFunc, AggSpec, ColRef};
use reopt_plan::Query;
use reopt_storage::batch::{take_i64_buffer, take_u32_buffer, BATCH_SIZE};
use reopt_storage::value::NULL_SENTINEL;
use reopt_storage::{Database, Value};

/// One output row of an aggregate: group key values then aggregate values.
#[derive(Debug, Clone, PartialEq)]
pub struct AggRow {
    /// Group-by column values (empty for a global aggregate).
    pub keys: Vec<Value>,
    /// Aggregate results, aligned with [`AggSpec::aggs`].
    pub aggs: Vec<Value>,
}

/// Aggregate output: one row per group, sorted by group key for
/// deterministic comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct AggOutput {
    /// Result rows.
    pub rows: Vec<AggRow>,
}

impl AggOutput {
    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.rows.len()
    }
}

#[derive(Debug, Clone)]
enum AggState {
    Count(u64),
    Sum { sum: f64, seen: bool },
    Min(Option<i64>),
    Max(Option<i64>),
    Avg { sum: f64, n: u64 },
}

impl AggState {
    fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum {
                sum: 0.0,
                seen: false,
            },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, raw: Option<i64>) {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum { sum, seen } => {
                if let Some(v) = raw {
                    *sum += v as f64;
                    *seen = true;
                }
            }
            AggState::Min(m) => {
                if let Some(v) = raw {
                    *m = Some(m.map_or(v, |cur| cur.min(v)));
                }
            }
            AggState::Max(m) => {
                if let Some(v) = raw {
                    *m = Some(m.map_or(v, |cur| cur.max(v)));
                }
            }
            AggState::Avg { sum, n } => {
                if let Some(v) = raw {
                    *sum += v as f64;
                    *n += 1;
                }
            }
        }
    }

    fn finish(&self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(*n as i64),
            AggState::Sum { sum, seen } => {
                if *seen {
                    Value::Float(*sum)
                } else {
                    Value::Null
                }
            }
            AggState::Min(m) => m.map_or(Value::Null, Value::Int),
            AggState::Max(m) => m.map_or(Value::Null, Value::Int),
            AggState::Avg { sum, n } => {
                if *n > 0 {
                    Value::Float(*sum / *n as f64)
                } else {
                    Value::Null
                }
            }
        }
    }
}

/// Evaluate `spec` over the join result `rows` with the row engine.
pub fn aggregate(db: &Database, query: &Query, rows: &RowSet, spec: &AggSpec) -> Result<AggOutput> {
    let mut dict_hits = 0;
    aggregate_rows(db, query, rows, spec, &mut dict_hits)
}

/// Evaluate `spec` over `rows`, choosing the columnar or row engine and
/// folding batch counters into `metrics`. Output is bit-identical either
/// way (see the module docs).
pub fn aggregate_opts(
    db: &Database,
    query: &Query,
    rows: &RowSet,
    spec: &AggSpec,
    columnar: bool,
    metrics: &mut ExecMetrics,
) -> Result<AggOutput> {
    if columnar {
        aggregate_columnar(db, query, rows, spec, metrics)
    } else {
        aggregate_rows(db, query, rows, spec, &mut metrics.dict_hits)
    }
}

/// Resolve a column reference to `(column data, rowids)` over `rows`.
fn resolve<'a>(
    db: &'a Database,
    query: &Query,
    rows: &'a RowSet,
    c: &ColRef,
) -> Result<(&'a [i64], &'a [u32])> {
    let table = db.table(query.table_of(c.rel)?)?;
    let data = table.column(c.col)?.data();
    let ids = rows.rowids(c.rel)?;
    Ok((data, ids))
}

fn aggregate_rows(
    db: &Database,
    query: &Query,
    rows: &RowSet,
    spec: &AggSpec,
    dict_hits: &mut u64,
) -> Result<AggOutput> {
    // Resolve input columns once.
    let key_cols: Vec<(&[i64], &[u32])> = spec
        .group_by
        .iter()
        .map(|c| resolve(db, query, rows, c))
        .collect::<Result<_>>()?;
    let agg_inputs: Vec<Option<(&[i64], &[u32])>> = spec
        .aggs
        .iter()
        .map(|a| {
            a.input
                .as_ref()
                .map(|c| resolve(db, query, rows, c))
                .transpose()
        })
        .collect::<Result<_>>()?;

    let mut groups: FxHashMap<Vec<i64>, Vec<AggState>> = FxHashMap::default();
    for i in 0..rows.len() {
        let key: Vec<i64> = key_cols
            .iter()
            .map(|(data, ids)| data[ids[i] as usize])
            .collect();
        let states = groups.entry(key).or_insert_with(|| {
            spec.aggs
                .iter()
                .map(|a: &AggExpr| AggState::new(a.func))
                .collect()
        });
        for (state, input) in states.iter_mut().zip(&agg_inputs) {
            let raw = input.as_ref().map(|(data, ids)| data[ids[i] as usize]);
            match raw {
                Some(NULL_SENTINEL) => state.update(None),
                Some(v) => state.update(Some(v)),
                None => state.update(None), // COUNT(*)
            }
        }
    }

    // lint: ordered-ok(materialize sorts `keyed` by group key before emitting, and AggState accumulation is per-group, so hash-order drain cannot reach the output)
    let keyed: Vec<(Vec<i64>, Vec<AggState>)> = groups.into_iter().collect();
    materialize(db, query, spec, keyed, dict_hits)
}

/// Columnar aggregation: one pass assigns every input row a dense group
/// id via a chained hash over the gathered key columns (group keys are
/// stored once per group), then each aggregate expression updates its
/// per-group accumulators in a tight column-at-a-time loop. Rows are
/// visited in ascending order throughout, so per-group accumulation order
/// — and with it float `SUM`/`AVG` bits — matches the row engine.
fn aggregate_columnar(
    db: &Database,
    query: &Query,
    rows: &RowSet,
    spec: &AggSpec,
    metrics: &mut ExecMetrics,
) -> Result<AggOutput> {
    let n = rows.len();
    metrics.batches_processed += (n as u64).div_ceil(BATCH_SIZE as u64);
    metrics.batch_rows += n as u64;

    // Gather the group-key columns once into pooled contiguous buffers,
    // then work on raw slices: the pooled wrappers' `Deref` is a branch
    // we must not pay once per row.
    let mut keybufs = Vec::with_capacity(spec.group_by.len());
    for c in &spec.group_by {
        let (data, ids) = resolve(db, query, rows, c)?;
        let mut buf = take_i64_buffer();
        buf.extend(ids.iter().map(|&r| data[r as usize]));
        keybufs.push(buf);
    }
    let keycols: Vec<&[i64]> = keybufs.iter().map(|b| &b[..]).collect();

    // Assign group ids: chained hash keyed on each group's first row.
    // NULL is a regular group key here, so the sentinel hashes like any
    // other value — no skipping.
    let buckets = (n.max(1) * 2).next_power_of_two();
    let mask = buckets as u64 - 1;
    const CHAIN_END: u32 = u32::MAX;
    let mut heads = vec![CHAIN_END; buckets];
    let mut first_row: Vec<u32> = Vec::new(); // group id -> first input row
    let mut group_next: Vec<u32> = Vec::new(); // group id -> next in bucket
    let mut gid_buf = take_u32_buffer();
    gid_buf.reserve(n);
    let group_ids: &mut Vec<u32> = &mut gid_buf;
    for i in 0..n {
        let mut h = FxHasher::default();
        for col in &keycols {
            std::hash::Hasher::write_i64(&mut h, col[i]);
        }
        let b = (std::hash::Hasher::finish(&h) & mask) as usize;
        let mut g = heads[b];
        while g != CHAIN_END {
            let rep = first_row[g as usize] as usize;
            if keycols.iter().all(|col| col[rep] == col[i]) {
                break;
            }
            g = group_next[g as usize];
        }
        if g == CHAIN_END {
            g = first_row.len() as u32;
            first_row.push(i as u32);
            group_next.push(heads[b]);
            heads[b] = g;
        }
        group_ids.push(g);
    }
    let group_ids: &[u32] = group_ids;
    let num_groups = first_row.len();

    // Flat per-group accumulator arrays, one aggregate expression at a
    // time: the function dispatch of `AggState::update` is hoisted out of
    // the per-row loop, each pass touching one input column and one
    // accumulator array. The arithmetic — `v as f64` then `+=` in
    // ascending row order within every group — is exactly the row
    // engine's, so float bits match.
    enum Acc {
        Count(Vec<u64>),
        Sum { sum: Vec<f64>, seen: Vec<bool> },
        Min { m: Vec<i64>, seen: Vec<bool> },
        Max { m: Vec<i64>, seen: Vec<bool> },
        Avg { sum: Vec<f64>, n: Vec<u64> },
    }
    let mut accs: Vec<Acc> = Vec::with_capacity(spec.aggs.len());
    for a in &spec.aggs {
        let input = a
            .input
            .as_ref()
            .map(|c| resolve(db, query, rows, c))
            .transpose()?;
        let acc = match a.func {
            AggFunc::Count => {
                // COUNT counts tuples, NULL input or not.
                let mut count = vec![0u64; num_groups];
                for &g in group_ids.iter() {
                    count[g as usize] += 1;
                }
                Acc::Count(count)
            }
            AggFunc::Sum => {
                let mut sum = vec![0.0f64; num_groups];
                let mut seen = vec![false; num_groups];
                if let Some((data, ids)) = input {
                    for (i, &g) in group_ids.iter().enumerate() {
                        let v = data[ids[i] as usize];
                        if v != NULL_SENTINEL {
                            sum[g as usize] += v as f64;
                            seen[g as usize] = true;
                        }
                    }
                }
                Acc::Sum { sum, seen }
            }
            AggFunc::Min => {
                let mut m = vec![0i64; num_groups];
                let mut seen = vec![false; num_groups];
                if let Some((data, ids)) = input {
                    for (i, &g) in group_ids.iter().enumerate() {
                        let v = data[ids[i] as usize];
                        let g = g as usize;
                        if v != NULL_SENTINEL && (!seen[g] || v < m[g]) {
                            m[g] = v;
                            seen[g] = true;
                        }
                    }
                }
                Acc::Min { m, seen }
            }
            AggFunc::Max => {
                let mut m = vec![0i64; num_groups];
                let mut seen = vec![false; num_groups];
                if let Some((data, ids)) = input {
                    for (i, &g) in group_ids.iter().enumerate() {
                        let v = data[ids[i] as usize];
                        let g = g as usize;
                        if v != NULL_SENTINEL && (!seen[g] || v > m[g]) {
                            m[g] = v;
                            seen[g] = true;
                        }
                    }
                }
                Acc::Max { m, seen }
            }
            AggFunc::Avg => {
                let mut sum = vec![0.0f64; num_groups];
                let mut n = vec![0u64; num_groups];
                if let Some((data, ids)) = input {
                    for (i, &g) in group_ids.iter().enumerate() {
                        let v = data[ids[i] as usize];
                        if v != NULL_SENTINEL {
                            sum[g as usize] += v as f64;
                            n[g as usize] += 1;
                        }
                    }
                }
                Acc::Avg { sum, n }
            }
        };
        accs.push(acc);
    }

    let keyed: Vec<(Vec<i64>, Vec<AggState>)> = (0..num_groups)
        .map(|g| {
            let rep = first_row[g] as usize;
            let raw_key: Vec<i64> = keycols.iter().map(|col| col[rep]).collect();
            let group_states: Vec<AggState> = accs
                .iter()
                .map(|acc| match acc {
                    Acc::Count(count) => AggState::Count(count[g]),
                    Acc::Sum { sum, seen } => AggState::Sum {
                        sum: sum[g],
                        seen: seen[g],
                    },
                    Acc::Min { m, seen } => AggState::Min(seen[g].then_some(m[g])),
                    Acc::Max { m, seen } => AggState::Max(seen[g].then_some(m[g])),
                    Acc::Avg { sum, n } => AggState::Avg {
                        sum: sum[g],
                        n: n[g],
                    },
                })
                .collect();
            (raw_key, group_states)
        })
        .collect();
    materialize(db, query, spec, keyed, &mut metrics.dict_hits)
}

/// Shared rendering: sort groups by raw key, decode typed key values
/// (dictionary lookups counted in `dict_hits`), finish the accumulators.
fn materialize(
    db: &Database,
    query: &Query,
    spec: &AggSpec,
    mut keyed: Vec<(Vec<i64>, Vec<AggState>)>,
    dict_hits: &mut u64,
) -> Result<AggOutput> {
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = Vec::with_capacity(keyed.len());
    for (raw_key, states) in keyed {
        let mut keys = Vec::with_capacity(raw_key.len());
        for (k, c) in raw_key.iter().zip(&spec.group_by) {
            let table = db.table(query.table_of(c.rel)?)?;
            let column = table.column(c.col)?;
            if *k == NULL_SENTINEL {
                keys.push(Value::Null);
            } else {
                // Reuse the column's typed rendering via its dictionary.
                match column.dict() {
                    Some(d) => match d.lookup(*k) {
                        Some(s) => {
                            *dict_hits += 1;
                            keys.push(Value::Str(s.clone()));
                        }
                        None => keys.push(Value::Int(*k)),
                    },
                    None => keys.push(Value::Int(*k)),
                }
            }
        }
        out.push(AggRow {
            keys,
            aggs: states.iter().map(AggState::finish).collect(),
        });
    }
    Ok(AggOutput { rows: out })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_common::{ColId, RelId};
    use reopt_plan::QueryBuilder;
    use reopt_storage::{Column, ColumnDef, LogicalType, Table, TableSchema};

    fn db_with_groups() -> Database {
        let mut db = Database::new();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("g", LogicalType::Dict),
                ColumnDef::new("x", LogicalType::Int),
            ])?;
            Table::new(
                id,
                "t",
                schema,
                vec![
                    Column::from_strings(&["a", "b", "a", "b", "a"]),
                    Column::from_i64(LogicalType::Int, vec![1, 2, 3, NULL_SENTINEL, 5]),
                ],
            )
        })
        .unwrap();
        db
    }

    fn base_rowset() -> RowSet {
        RowSet::single(RelId::new(0), vec![0, 1, 2, 3, 4])
    }

    fn query(db: &Database, spec: AggSpec) -> Query {
        let mut qb = QueryBuilder::new();
        let _ = qb.add_relation(db.table_id("t").unwrap());
        qb.aggregate(spec);
        qb.build()
    }

    #[test]
    fn grouped_sum_count_min_max_avg() {
        let db = db_with_groups();
        let g = ColRef::new(RelId::new(0), ColId::new(0));
        let x = ColRef::new(RelId::new(0), ColId::new(1));
        let spec = AggSpec {
            group_by: vec![g],
            aggs: vec![
                AggExpr::count_star(),
                AggExpr::sum(x),
                AggExpr::min(x),
                AggExpr::max(x),
                AggExpr::avg(x),
            ],
        };
        let q = query(&db, spec.clone());
        let out = aggregate(&db, &q, &base_rowset(), &spec).unwrap();
        assert_eq!(out.num_groups(), 2);
        // Groups sorted by dictionary code: "a" (code 0) then "b" (code 1).
        let a = &out.rows[0];
        assert_eq!(a.keys, vec![Value::from("a")]);
        assert_eq!(a.aggs[0], Value::Int(3)); // count
        assert_eq!(a.aggs[1], Value::Float(9.0)); // sum 1+3+5
        assert_eq!(a.aggs[2], Value::Int(1)); // min
        assert_eq!(a.aggs[3], Value::Int(5)); // max
        assert_eq!(a.aggs[4], Value::Float(3.0)); // avg
        let b = &out.rows[1];
        assert_eq!(b.keys, vec![Value::from("b")]);
        assert_eq!(b.aggs[0], Value::Int(2)); // count counts NULL rows too
        assert_eq!(b.aggs[1], Value::Float(2.0)); // sum skips NULL
        assert_eq!(b.aggs[4], Value::Float(2.0)); // avg over non-NULL only
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let db = db_with_groups();
        let x = ColRef::new(RelId::new(0), ColId::new(1));
        let spec = AggSpec {
            group_by: vec![],
            aggs: vec![AggExpr::count_star(), AggExpr::sum(x)],
        };
        let q = query(&db, spec.clone());
        let empty = RowSet::single(RelId::new(0), vec![]);
        let out = aggregate(&db, &q, &empty, &spec).unwrap();
        // SQL: global aggregate over empty input produces zero groups here
        // (we model the ungrouped case as "no group seen" — callers read
        // COUNT=0 from the absence of rows).
        assert_eq!(out.num_groups(), 0);
    }

    #[test]
    fn global_aggregate_single_group() {
        let db = db_with_groups();
        let x = ColRef::new(RelId::new(0), ColId::new(1));
        let spec = AggSpec {
            group_by: vec![],
            aggs: vec![AggExpr::count_star(), AggExpr::avg(x)],
        };
        let q = query(&db, spec.clone());
        let out = aggregate(&db, &q, &base_rowset(), &spec).unwrap();
        assert_eq!(out.num_groups(), 1);
        assert_eq!(out.rows[0].aggs[0], Value::Int(5));
        assert_eq!(out.rows[0].aggs[1], Value::Float(11.0 / 4.0));
    }

    #[test]
    fn all_null_inputs_produce_null_aggregates() {
        let mut db = Database::new();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![ColumnDef::new("x", LogicalType::Int)])?;
            Table::new(
                id,
                "n",
                schema,
                vec![Column::from_i64(LogicalType::Int, vec![NULL_SENTINEL; 3])],
            )
        })
        .unwrap();
        let x = ColRef::new(RelId::new(0), ColId::new(0));
        let spec = AggSpec {
            group_by: vec![],
            aggs: vec![
                AggExpr::sum(x),
                AggExpr::min(x),
                AggExpr::max(x),
                AggExpr::avg(x),
                AggExpr::count_star(),
            ],
        };
        let mut qb = QueryBuilder::new();
        let _ = qb.add_relation(db.table_id("n").unwrap());
        qb.aggregate(spec.clone());
        let q = qb.build();
        let rows = RowSet::single(RelId::new(0), vec![0, 1, 2]);
        let out = aggregate(&db, &q, &rows, &spec).unwrap();
        let r = &out.rows[0];
        assert_eq!(r.aggs[0], Value::Null);
        assert_eq!(r.aggs[1], Value::Null);
        assert_eq!(r.aggs[2], Value::Null);
        assert_eq!(r.aggs[3], Value::Null);
        assert_eq!(r.aggs[4], Value::Int(3));
    }

    /// The two engines must agree bit for bit — including `AVG`/`SUM`
    /// float bits (accumulation order) and typed key rendering — on a
    /// fixture with dictionary keys, NULL group keys, NULL agg inputs,
    /// multi-column grouping, and values whose float sums are
    /// order-sensitive.
    #[test]
    fn columnar_engine_is_bit_identical_to_row_engine() {
        let mut db = Database::new();
        let n = 5000usize;
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("g", LogicalType::Dict),
                ColumnDef::new("h", LogicalType::Int),
                ColumnDef::new("x", LogicalType::Int),
            ])?;
            let names = ["red", "green", "blue", "cyan"];
            let g: Vec<&str> = (0..n).map(|i| names[i % names.len()]).collect();
            let h: Vec<i64> = (0..n as i64)
                .map(|i| if i % 13 == 0 { NULL_SENTINEL } else { i % 7 })
                .collect();
            // Mix magnitudes so float accumulation order is observable.
            let x: Vec<i64> = (0..n as i64)
                .map(|i| {
                    if i % 11 == 0 {
                        NULL_SENTINEL
                    } else {
                        (i * 982_451_653) % 1_000_003 - 500_000
                    }
                })
                .collect();
            Table::new(
                id,
                "big",
                schema,
                vec![
                    Column::from_strings(&g),
                    Column::from_i64(LogicalType::Int, h),
                    Column::from_i64(LogicalType::Int, x),
                ],
            )
        })
        .unwrap();
        let g = ColRef::new(RelId::new(0), ColId::new(0));
        let h = ColRef::new(RelId::new(0), ColId::new(1));
        let x = ColRef::new(RelId::new(0), ColId::new(2));
        let spec = AggSpec {
            group_by: vec![g, h],
            aggs: vec![
                AggExpr::count_star(),
                AggExpr::sum(x),
                AggExpr::min(x),
                AggExpr::max(x),
                AggExpr::avg(x),
            ],
        };
        let mut qb = QueryBuilder::new();
        let _ = qb.add_relation(db.table_id("big").unwrap());
        qb.aggregate(spec.clone());
        let q = qb.build();
        let rows = RowSet::single(RelId::new(0), (0..n as u32).collect());

        let mut row_m = ExecMetrics::default();
        let mut col_m = ExecMetrics::default();
        let by_rows = aggregate_opts(&db, &q, &rows, &spec, false, &mut row_m).unwrap();
        let by_cols = aggregate_opts(&db, &q, &rows, &spec, true, &mut col_m).unwrap();
        assert_eq!(by_rows.num_groups(), by_cols.num_groups());
        assert!(by_rows.num_groups() > 4, "fixture must produce many groups");
        for (a, b) in by_rows.rows.iter().zip(&by_cols.rows) {
            assert_eq!(a.keys, b.keys);
            // Compare floats by bits, not approximately.
            for (va, vb) in a.aggs.iter().zip(&b.aggs) {
                match (va, vb) {
                    (Value::Float(fa), Value::Float(fb)) => {
                        assert_eq!(fa.to_bits(), fb.to_bits(), "key {:?}", a.keys)
                    }
                    _ => assert_eq!(va, vb, "key {:?}", a.keys),
                }
            }
        }
        assert_eq!(row_m.batches_processed, 0);
        assert_eq!(
            col_m.batches_processed,
            (n as u64).div_ceil(BATCH_SIZE as u64)
        );
        assert_eq!(col_m.batch_rows, n as u64);
        // Both engines render the same dictionary-coded keys.
        assert_eq!(row_m.dict_hits, col_m.dict_hits);
        assert!(col_m.dict_hits > 0);
    }
}
