//! Hash aggregation over the final join result.
//!
//! SQL semantics at the granularity the workloads need: NULL inputs are
//! skipped by `SUM`/`MIN`/`MAX`/`AVG`; `COUNT(*)` counts tuples; grouping
//! treats NULL as a regular group key.

use crate::rowset::RowSet;
use reopt_common::{FxHashMap, Result};
use reopt_plan::query::{AggExpr, AggFunc, AggSpec, ColRef};
use reopt_plan::Query;
use reopt_storage::value::NULL_SENTINEL;
use reopt_storage::{Database, Value};

/// One output row of an aggregate: group key values then aggregate values.
#[derive(Debug, Clone, PartialEq)]
pub struct AggRow {
    /// Group-by column values (empty for a global aggregate).
    pub keys: Vec<Value>,
    /// Aggregate results, aligned with [`AggSpec::aggs`].
    pub aggs: Vec<Value>,
}

/// Aggregate output: one row per group, sorted by group key for
/// deterministic comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct AggOutput {
    /// Result rows.
    pub rows: Vec<AggRow>,
}

impl AggOutput {
    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.rows.len()
    }
}

#[derive(Debug, Clone)]
enum AggState {
    Count(u64),
    Sum { sum: f64, seen: bool },
    Min(Option<i64>),
    Max(Option<i64>),
    Avg { sum: f64, n: u64 },
}

impl AggState {
    fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum {
                sum: 0.0,
                seen: false,
            },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, raw: Option<i64>) {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum { sum, seen } => {
                if let Some(v) = raw {
                    *sum += v as f64;
                    *seen = true;
                }
            }
            AggState::Min(m) => {
                if let Some(v) = raw {
                    *m = Some(m.map_or(v, |cur| cur.min(v)));
                }
            }
            AggState::Max(m) => {
                if let Some(v) = raw {
                    *m = Some(m.map_or(v, |cur| cur.max(v)));
                }
            }
            AggState::Avg { sum, n } => {
                if let Some(v) = raw {
                    *sum += v as f64;
                    *n += 1;
                }
            }
        }
    }

    fn finish(&self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(*n as i64),
            AggState::Sum { sum, seen } => {
                if *seen {
                    Value::Float(*sum)
                } else {
                    Value::Null
                }
            }
            AggState::Min(m) => m.map_or(Value::Null, Value::Int),
            AggState::Max(m) => m.map_or(Value::Null, Value::Int),
            AggState::Avg { sum, n } => {
                if *n > 0 {
                    Value::Float(*sum / *n as f64)
                } else {
                    Value::Null
                }
            }
        }
    }
}

/// Evaluate `spec` over the join result `rows`.
pub fn aggregate(db: &Database, query: &Query, rows: &RowSet, spec: &AggSpec) -> Result<AggOutput> {
    // Resolve input columns once.
    let gather = |c: &ColRef| -> Result<(&[i64], &[u32])> {
        let table = db.table(query.table_of(c.rel)?)?;
        let data = table.column(c.col)?.data();
        let ids = rows.rowids(c.rel)?;
        Ok((data, ids))
    };
    let key_cols: Vec<(&[i64], &[u32])> =
        spec.group_by.iter().map(&gather).collect::<Result<_>>()?;
    let agg_inputs: Vec<Option<(&[i64], &[u32])>> = spec
        .aggs
        .iter()
        .map(|a| a.input.as_ref().map(&gather).transpose())
        .collect::<Result<_>>()?;

    let mut groups: FxHashMap<Vec<i64>, Vec<AggState>> = FxHashMap::default();
    for i in 0..rows.len() {
        let key: Vec<i64> = key_cols
            .iter()
            .map(|(data, ids)| data[ids[i] as usize])
            .collect();
        let states = groups.entry(key).or_insert_with(|| {
            spec.aggs
                .iter()
                .map(|a: &AggExpr| AggState::new(a.func))
                .collect()
        });
        for (state, input) in states.iter_mut().zip(&agg_inputs) {
            let raw = input.as_ref().map(|(data, ids)| data[ids[i] as usize]);
            match raw {
                Some(NULL_SENTINEL) => state.update(None),
                Some(v) => state.update(Some(v)),
                None => state.update(None), // COUNT(*)
            }
        }
    }

    // Materialize with typed key values, sorted for determinism.
    let mut keyed: Vec<(Vec<i64>, Vec<AggState>)> = groups.into_iter().collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = Vec::with_capacity(keyed.len());
    for (raw_key, states) in keyed {
        let mut keys = Vec::with_capacity(raw_key.len());
        for (k, c) in raw_key.iter().zip(&spec.group_by) {
            let table = db.table(query.table_of(c.rel)?)?;
            let column = table.column(c.col)?;
            if *k == NULL_SENTINEL {
                keys.push(Value::Null);
            } else {
                // Reuse the column's typed rendering via its dictionary.
                match column.dict() {
                    Some(d) => keys.push(
                        d.lookup(*k)
                            .map(|s| Value::Str(s.clone()))
                            .unwrap_or(Value::Int(*k)),
                    ),
                    None => keys.push(Value::Int(*k)),
                }
            }
        }
        out.push(AggRow {
            keys,
            aggs: states.iter().map(AggState::finish).collect(),
        });
    }
    Ok(AggOutput { rows: out })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_common::{ColId, RelId};
    use reopt_plan::QueryBuilder;
    use reopt_storage::{Column, ColumnDef, LogicalType, Table, TableSchema};

    fn db_with_groups() -> Database {
        let mut db = Database::new();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("g", LogicalType::Dict),
                ColumnDef::new("x", LogicalType::Int),
            ])?;
            Table::new(
                id,
                "t",
                schema,
                vec![
                    Column::from_strings(&["a", "b", "a", "b", "a"]),
                    Column::from_i64(LogicalType::Int, vec![1, 2, 3, NULL_SENTINEL, 5]),
                ],
            )
        })
        .unwrap();
        db
    }

    fn base_rowset() -> RowSet {
        RowSet::single(RelId::new(0), vec![0, 1, 2, 3, 4])
    }

    fn query(db: &Database, spec: AggSpec) -> Query {
        let mut qb = QueryBuilder::new();
        let _ = qb.add_relation(db.table_id("t").unwrap());
        qb.aggregate(spec);
        qb.build()
    }

    #[test]
    fn grouped_sum_count_min_max_avg() {
        let db = db_with_groups();
        let g = ColRef::new(RelId::new(0), ColId::new(0));
        let x = ColRef::new(RelId::new(0), ColId::new(1));
        let spec = AggSpec {
            group_by: vec![g],
            aggs: vec![
                AggExpr::count_star(),
                AggExpr::sum(x),
                AggExpr::min(x),
                AggExpr::max(x),
                AggExpr::avg(x),
            ],
        };
        let q = query(&db, spec.clone());
        let out = aggregate(&db, &q, &base_rowset(), &spec).unwrap();
        assert_eq!(out.num_groups(), 2);
        // Groups sorted by dictionary code: "a" (code 0) then "b" (code 1).
        let a = &out.rows[0];
        assert_eq!(a.keys, vec![Value::from("a")]);
        assert_eq!(a.aggs[0], Value::Int(3)); // count
        assert_eq!(a.aggs[1], Value::Float(9.0)); // sum 1+3+5
        assert_eq!(a.aggs[2], Value::Int(1)); // min
        assert_eq!(a.aggs[3], Value::Int(5)); // max
        assert_eq!(a.aggs[4], Value::Float(3.0)); // avg
        let b = &out.rows[1];
        assert_eq!(b.keys, vec![Value::from("b")]);
        assert_eq!(b.aggs[0], Value::Int(2)); // count counts NULL rows too
        assert_eq!(b.aggs[1], Value::Float(2.0)); // sum skips NULL
        assert_eq!(b.aggs[4], Value::Float(2.0)); // avg over non-NULL only
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let db = db_with_groups();
        let x = ColRef::new(RelId::new(0), ColId::new(1));
        let spec = AggSpec {
            group_by: vec![],
            aggs: vec![AggExpr::count_star(), AggExpr::sum(x)],
        };
        let q = query(&db, spec.clone());
        let empty = RowSet::single(RelId::new(0), vec![]);
        let out = aggregate(&db, &q, &empty, &spec).unwrap();
        // SQL: global aggregate over empty input produces zero groups here
        // (we model the ungrouped case as "no group seen" — callers read
        // COUNT=0 from the absence of rows).
        assert_eq!(out.num_groups(), 0);
    }

    #[test]
    fn global_aggregate_single_group() {
        let db = db_with_groups();
        let x = ColRef::new(RelId::new(0), ColId::new(1));
        let spec = AggSpec {
            group_by: vec![],
            aggs: vec![AggExpr::count_star(), AggExpr::avg(x)],
        };
        let q = query(&db, spec.clone());
        let out = aggregate(&db, &q, &base_rowset(), &spec).unwrap();
        assert_eq!(out.num_groups(), 1);
        assert_eq!(out.rows[0].aggs[0], Value::Int(5));
        assert_eq!(out.rows[0].aggs[1], Value::Float(11.0 / 4.0));
    }

    #[test]
    fn all_null_inputs_produce_null_aggregates() {
        let mut db = Database::new();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![ColumnDef::new("x", LogicalType::Int)])?;
            Table::new(
                id,
                "n",
                schema,
                vec![Column::from_i64(LogicalType::Int, vec![NULL_SENTINEL; 3])],
            )
        })
        .unwrap();
        let x = ColRef::new(RelId::new(0), ColId::new(0));
        let spec = AggSpec {
            group_by: vec![],
            aggs: vec![
                AggExpr::sum(x),
                AggExpr::min(x),
                AggExpr::max(x),
                AggExpr::avg(x),
                AggExpr::count_star(),
            ],
        };
        let mut qb = QueryBuilder::new();
        let _ = qb.add_relation(db.table_id("n").unwrap());
        qb.aggregate(spec.clone());
        let q = qb.build();
        let rows = RowSet::single(RelId::new(0), vec![0, 1, 2]);
        let out = aggregate(&db, &q, &rows, &spec).unwrap();
        let r = &out.rows[0];
        assert_eq!(r.aggs[0], Value::Null);
        assert_eq!(r.aggs[1], Value::Null);
        assert_eq!(r.aggs[2], Value::Null);
        assert_eq!(r.aggs[3], Value::Null);
        assert_eq!(r.aggs[4], Value::Int(3));
    }
}
