//! Columnar query executor.
//!
//! Executes [`PhysicalPlan`](reopt_plan::PhysicalPlan)s against a
//! [`Database`](reopt_storage::Database). The same executor runs plans over
//! the base tables *and* over sample tables — the paper's re-optimization
//! loop literally executes the optimizer's tentative plans on the samples
//! ("dry runs", §6), so sharing the execution path is both simpler and more
//! faithful.
//!
//! Intermediate results are [`rowset::RowSet`]s: per-relation
//! vectors of row ids into the base tables, aligned by output position.
//! Joins therefore never copy payload columns; values are gathered lazily
//! from the stored columns when needed (join keys, aggregates).
//!
//! Operators: sequential scan, index scan, hash join, sort-merge join,
//! naive nested loops, index nested loops, and a hash-aggregation epilogue.
//! Sequential scans and hash joins execute partition-parallel under
//! [`exec::ExecOpts::threads`], with results bit-identical to serial
//! execution (see the [`exec`] module docs for the determinism argument).

pub mod agg;
pub mod checkpoint;
pub mod exec;
pub mod explain;
pub mod metrics;
pub mod rowset;

pub use agg::{aggregate_opts, AggOutput};
pub use checkpoint::{CheckpointStore, ExecStep};
pub use exec::{
    default_columnar, default_threads, execute_plan, execute_query, ExecOpts, Executor,
    QueryOutput, SubtreeCache, TracedRun,
};
pub use explain::explain_analyze;
pub use metrics::ExecMetrics;
pub use rowset::RowSet;
