//! Suspendable execution for mid-query re-optimization.
//!
//! The executor materializes every operator output, so each join node is a
//! natural **pipeline breaker**: the hash-join build (and, at the root,
//! the aggregate's input) cannot start until its input subtree has fully
//! materialized. [`Executor::run_step`](crate::Executor::run_step) exploits
//! that: it executes the plan only up to its *next* unfinished breaker (the
//! first non-root join in post-order whose result is not yet checkpointed),
//! parks the materialized [`RowSet`] in a [`CheckpointStore`], and returns
//! [`ExecStep::Suspended`] carrying the exact observed cardinality of every
//! node completed so far. The caller may then re-plan the remainder of the
//! query — feeding the observed counts back into Γ as exact entries — and
//! call `run_step` again with the (possibly different) plan.
//!
//! # Why checkpoints are keyed by `RelSet`
//!
//! Within one query, the logical output of a subtree covering relation set
//! `S` is plan-shape-independent: every local predicate of a relation in
//! `S` is applied at its scan, and every query join edge internal to `S`
//! is applied at exactly the join node where its two sides first meet —
//! whatever the tree shape or operator choice. So the *contents* of the
//! materialized result are a function of `(query, S)` alone, and a
//! checkpoint taken under one plan can stand in for subtree `S` of any
//! replanned successor. (Row *order* may differ between shapes; the
//! conformance suite therefore compares results as canonical tuple sets.)
//! A [`CheckpointStore`] is only meaningful for one `(database, query)`
//! execution — never share one across queries.
//!
//! Resumption reuses the existing [`SubtreeCache`] splice path: the store
//! implements the trait, so a resumed plan replays checkpointed subtrees
//! (no scan, no probe, no output accounting) and executes only the
//! remainder. A remainder that replans to the *same* plan resumes with
//! zero extra executor work.

use crate::exec::{Executor, SubtreeCache, TracedRun};
use crate::metrics::ExecMetrics;
use crate::rowset::RowSet;
use reopt_common::{RelSet, Result};
use reopt_plan::{JoinAlgo, PhysicalPlan, Query};
use std::collections::BTreeMap;

/// Checkpointed subtree results and observed cardinalities of one
/// suspendable execution (one `(database, query)` pair).
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    /// Materialized output of every completed node, keyed by relation set
    /// (see the module docs for why that key is sound within one query).
    /// Ordered maps (rule R1): [`CheckpointStore::observed`] walks these
    /// and its order reaches Γ insertion order and the replan loop.
    results: BTreeMap<RelSet, RowSet>,
    /// Exact observed output cardinality of every completed node —
    /// everything `results` holds, kept separately so callers can fold the
    /// counts into Γ without touching the row sets.
    observed: BTreeMap<RelSet, u64>,
    /// Suspension history: the breaker subtree executed at each
    /// [`ExecStep::Suspended`], in order. Later breakers may strictly
    /// contain earlier ones (the remainder keeps joining on top).
    breakers: Vec<(RelSet, PhysicalPlan)>,
    /// Nodes answered by replaying a checkpoint instead of executing.
    splices: usize,
    /// Nodes executed fresh and checkpointed.
    stored: usize,
    /// Sealed: lookups still splice, but fresh results are no longer
    /// checkpointed. Set by the final [`Executor::run_step`] segment —
    /// nothing runs after it, so copying its intermediates (and the final
    /// result) into the store would be pure waste.
    sealed: bool,
}

impl CheckpointStore {
    /// Empty store (nothing executed yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `set`'s result is checkpointed.
    pub fn contains(&self, set: RelSet) -> bool {
        self.results.contains_key(&set)
    }

    /// Exact observed cardinalities of every completed node, in ascending
    /// [`RelSet`] order — deterministic across runs and processes.
    pub fn observed(&self) -> impl Iterator<Item = (RelSet, u64)> + '_ {
        self.observed.iter().map(|(&s, &n)| (s, n))
    }

    /// Number of checkpointed node results.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True when nothing has been checkpointed.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Nodes answered by splicing a checkpoint instead of executing.
    pub fn splices(&self) -> usize {
        self.splices
    }

    /// Nodes executed fresh and checkpointed.
    pub fn stored(&self) -> usize {
        self.stored
    }

    /// The completed subtrees a replan must treat as atomic, already-paid
    /// leaves: the *maximal* suspended breakers (their exact cardinality
    /// paired with the plan that computed them — the subtree a replanned
    /// successor splices back in). Breakers contained in a later, larger
    /// breaker are subsumed by it.
    pub fn pins(&self) -> Vec<(RelSet, PhysicalPlan, u64)> {
        self.breakers
            .iter()
            .filter(|(set, _)| {
                !self
                    .breakers
                    .iter()
                    .any(|(other, _)| *set != *other && set.is_subset_of(*other))
            })
            .map(|(set, plan)| (*set, plan.clone(), self.observed[set]))
            .collect()
    }

    /// Stop checkpointing: lookups keep splicing, but fresh results are
    /// no longer copied in. Call when no later segment can reuse them —
    /// [`Executor::run_step`](crate::Executor::run_step) seals
    /// automatically before its final segment; a caller finishing a plan
    /// early (e.g. a suspension cap) seals before its own last
    /// `run_traced_cached`.
    pub fn seal(&mut self) {
        self.sealed = true;
    }

    fn note_breaker(&mut self, set: RelSet, plan: &PhysicalPlan) {
        if !self.breakers.iter().any(|(s, _)| *s == set) {
            self.breakers.push((set, plan.clone()));
        }
    }
}

impl SubtreeCache for CheckpointStore {
    /// Every node is cacheable; within one query the relation set *is* the
    /// canonical identity (module docs), so the fingerprint is just the
    /// set's mask.
    fn fingerprint(&mut self, _query: &Query, plan: &PhysicalPlan) -> Option<u64> {
        Some(plan.relset().mask())
    }

    fn lookup(&mut self, set: RelSet, _fp: u64) -> Option<RowSet> {
        let hit = self.results.get(&set)?.clone();
        self.splices += 1;
        Some(hit)
    }

    fn peek_rows(&mut self, set: RelSet, _fp: u64) -> Option<u64> {
        let n = self.results.get(&set)?.len() as u64;
        self.splices += 1;
        Some(n)
    }

    fn store(&mut self, set: RelSet, _fp: u64, rows: &RowSet) {
        if self.sealed {
            return;
        }
        self.stored += 1;
        self.observed.insert(set, rows.len() as u64);
        self.results.insert(set, rows.clone());
    }
}

/// What one [`Executor::run_step`](crate::Executor::run_step) call did.
#[derive(Debug)]
pub enum ExecStep {
    /// The next unfinished pipeline breaker was executed and checkpointed;
    /// the store now holds its materialized rows and the exact observed
    /// cardinality of every node completed so far. The plan's remainder
    /// has not been touched — re-plan it (or not) and call `run_step`
    /// again.
    Suspended {
        /// Relation set of the breaker just completed.
        breaker: RelSet,
        /// Its exact observed output cardinality.
        breaker_rows: u64,
        /// Executor counters for this segment only (cache splices do no
        /// work and count nothing).
        metrics: ExecMetrics,
    },
    /// No unfinished breaker remained: the plan ran to completion,
    /// splicing every checkpointed subtree in via the store.
    Complete(TracedRun),
}

/// The next unfinished pipeline breaker under `plan`: the first non-root
/// join, in post-order, whose result is not checkpointed. Post-order
/// guarantees the chosen breaker's own join descendants are all
/// checkpointed already, so executing it does exactly one new join's
/// work (plus any fresh leaf scans). Checkpointed subtrees are not
/// descended into — they are done.
fn next_breaker<'p>(
    plan: &'p PhysicalPlan,
    store: &CheckpointStore,
    is_root: bool,
) -> Option<&'p PhysicalPlan> {
    if store.contains(plan.relset()) {
        return None;
    }
    if let PhysicalPlan::Join {
        algo, left, right, ..
    } = plan
    {
        if let Some(b) = next_breaker(left, store, false) {
            return Some(b);
        }
        // The index-nested inner is probed in place, never materialized as
        // a standalone node; it has no breaker to offer.
        if *algo != JoinAlgo::IndexNested {
            if let Some(b) = next_breaker(right, store, false) {
                return Some(b);
            }
        }
        if !is_root {
            return Some(plan);
        }
    }
    None
}

impl Executor<'_> {
    /// Run `plan` up to its next materialization point (see the module
    /// docs): execute the first unfinished non-root join — checkpointing
    /// its result and every node beneath it in `store` — and suspend; or,
    /// when every breaker is already checkpointed, run the remainder to
    /// completion, splicing checkpointed subtrees in.
    ///
    /// Calling this in a loop with one fixed plan performs exactly the
    /// straight-through execution's work, one breaker per call; replacing
    /// the plan between calls (mid-query re-optimization) re-executes
    /// nothing already checkpointed.
    pub fn run_step(
        &self,
        query: &Query,
        plan: &PhysicalPlan,
        store: &mut CheckpointStore,
    ) -> Result<ExecStep> {
        match next_breaker(plan, store, true) {
            Some(breaker) => {
                let breaker_set = breaker.relset();
                let run = self.run_traced_cached(query, breaker, store)?;
                store.note_breaker(breaker_set, breaker);
                Ok(ExecStep::Suspended {
                    breaker: breaker_set,
                    breaker_rows: run.rows.len() as u64,
                    metrics: run.metrics,
                })
            }
            None => {
                // Final segment: no replan can follow, so checkpointing
                // the remainder's intermediates (or the final result)
                // would only copy rows nobody will read.
                store.seal();
                let run = self.run_traced_cached(query, plan, store)?;
                Ok(ExecStep::Complete(run))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecOpts, Executor};
    use reopt_common::{ColId, RelId, TableId};
    use reopt_plan::physical::PlanNodeInfo;
    use reopt_plan::query::ColRef;
    use reopt_plan::{AccessPath, QueryBuilder};
    use reopt_storage::{Column, ColumnDef, Database, LogicalType, Table, TableSchema};

    /// Three chained tables: t0.b = t1.b, t1.b = t2.b, all with b = a,
    /// `vals` distinct values × `per` rows.
    fn chain_db(vals: i64, per: usize) -> Database {
        let mut db = Database::new();
        for name in ["c0", "c1", "c2"] {
            db.add_table_with(|id| {
                let schema = TableSchema::new(vec![
                    ColumnDef::new("a", LogicalType::Int),
                    ColumnDef::new("b", LogicalType::Int),
                ])?;
                let mut data = Vec::new();
                for v in 0..vals {
                    data.extend(std::iter::repeat_n(v, per));
                }
                Table::new(
                    id,
                    name,
                    schema,
                    vec![
                        Column::from_i64(LogicalType::Int, data.clone()),
                        Column::from_i64(LogicalType::Int, data),
                    ],
                )
            })
            .unwrap();
        }
        db
    }

    fn chain_query() -> Query {
        let mut qb = QueryBuilder::new();
        let rels: Vec<_> = (0..3u32)
            .map(|i| qb.add_relation(TableId::new(i)))
            .collect();
        for w in rels.windows(2) {
            qb.add_join(
                ColRef::new(w[0], ColId::new(1)),
                ColRef::new(w[1], ColId::new(1)),
            );
        }
        qb.build()
    }

    fn scan(rel: u32) -> PhysicalPlan {
        PhysicalPlan::Scan {
            rel: RelId::new(rel),
            table: TableId::new(rel),
            access: AccessPath::SeqScan,
            info: PlanNodeInfo::default(),
        }
    }

    fn join(l: PhysicalPlan, r: PhysicalPlan, a: u32, b: u32) -> PhysicalPlan {
        PhysicalPlan::Join {
            algo: JoinAlgo::Hash,
            left: Box::new(l),
            right: Box::new(r),
            keys: vec![(
                ColRef::new(RelId::new(a), ColId::new(1)),
                ColRef::new(RelId::new(b), ColId::new(1)),
            )],
            info: PlanNodeInfo::default(),
        }
    }

    fn left_deep() -> PhysicalPlan {
        join(join(scan(0), scan(1), 0, 1), scan(2), 1, 2)
    }

    #[test]
    fn stepping_one_plan_equals_straight_through() {
        let db = chain_db(10, 4);
        let q = chain_query();
        let plan = left_deep();
        let exec = Executor::with_opts(&db, ExecOpts::serial());
        let straight = exec.run_traced(&q, &plan).unwrap();

        let mut store = CheckpointStore::new();
        let mut segments: Vec<ExecMetrics> = Vec::new();
        let run = loop {
            match exec.run_step(&q, &plan, &mut store).unwrap() {
                ExecStep::Suspended {
                    breaker,
                    breaker_rows,
                    metrics,
                } => {
                    assert_eq!(breaker, RelSet::first_n(2));
                    assert_eq!(breaker_rows, 4 * 4 * 10);
                    segments.push(metrics);
                }
                ExecStep::Complete(run) => break run,
            }
        };
        assert_eq!(segments.len(), 1, "one non-root join = one suspension");

        // Identical rows and trace...
        assert_eq!(straight.rows.len(), run.rows.len());
        for &rel in straight.rows.rels() {
            assert_eq!(
                straight.rows.rowids(rel).unwrap(),
                run.rows.rowids(rel).unwrap()
            );
        }
        assert_eq!(straight.node_cards, run.node_cards);

        // ...and zero extra work: summed segment counters equal the
        // straight-through run's exactly.
        let mut total = ExecMetrics::default();
        for m in &segments {
            total.merge(m);
        }
        total.merge(&run.metrics);
        assert_eq!(total.rows_scanned, straight.metrics.rows_scanned);
        assert_eq!(total.rows_produced, straight.metrics.rows_produced);
        assert_eq!(total.index_probes, straight.metrics.index_probes);
        assert!(store.splices() > 0, "resume must splice the checkpoint");
    }

    #[test]
    fn observed_cardinalities_are_exact() {
        let db = chain_db(10, 4);
        let q = chain_query();
        let plan = left_deep();
        let exec = Executor::with_opts(&db, ExecOpts::serial());
        let straight = exec.run_traced(&q, &plan).unwrap();

        let mut store = CheckpointStore::new();
        let ExecStep::Suspended { .. } = exec.run_step(&q, &plan, &mut store).unwrap() else {
            panic!("expected a suspension");
        };
        // Every observation matches the straight-through trace bit-exactly.
        for (set, n) in store.observed() {
            let truth = straight
                .node_cards
                .iter()
                .find(|(s, _)| *s == set)
                .unwrap()
                .1;
            assert_eq!(n, truth, "{set}");
        }
        // And the completed subtree's nodes are all observed.
        for set in [
            RelSet::single(RelId::new(0)),
            RelSet::single(RelId::new(1)),
            RelSet::first_n(2),
        ] {
            assert!(store.observed.contains_key(&set), "{set}");
        }
    }

    #[test]
    fn resuming_under_a_replanned_shape_reuses_the_checkpoint() {
        let db = chain_db(10, 4);
        let q = chain_query();
        let exec = Executor::with_opts(&db, ExecOpts::serial());

        // Suspend under the left-deep plan...
        let mut store = CheckpointStore::new();
        let plan_a = left_deep();
        let ExecStep::Suspended { breaker, .. } = exec.run_step(&q, &plan_a, &mut store).unwrap()
        else {
            panic!("expected a suspension");
        };
        let stored_before = store.stored();

        // ...then resume under a *different* remainder shape that keeps
        // the checkpointed {0,1} subtree as a unit (operands swapped at
        // the top).
        let plan_b = join(scan(2), join(scan(0), scan(1), 0, 1), 2, 1);
        let ExecStep::Complete(run) = exec.run_step(&q, &plan_b, &mut store).unwrap() else {
            panic!("expected completion");
        };
        assert_eq!(breaker, RelSet::first_n(2));
        // The {0,1} subtree and its scans were spliced, not re-executed:
        // the only fresh work is the new scan of relation 2 (40 rows) and
        // the root join. The final segment is sealed — it checkpoints
        // nothing, since no replan can follow it.
        assert!(store.splices() > 0);
        assert_eq!(store.stored(), stored_before, "final segment must seal");
        assert_eq!(run.metrics.rows_scanned, 40, "only scan(2) may run");
        assert_eq!(run.rows.len(), 4 * 4 * 4 * 10);

        // pins() reports the maximal breaker with its exact cardinality.
        let pins = store.pins();
        assert_eq!(pins.len(), 1);
        assert_eq!(pins[0].0, RelSet::first_n(2));
        assert_eq!(pins[0].2, 4 * 4 * 10);
    }

    #[test]
    fn two_relation_plans_have_no_breaker() {
        let db = chain_db(10, 4);
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(TableId::new(0));
        let b = qb.add_relation(TableId::new(1));
        qb.add_join(ColRef::new(a, ColId::new(1)), ColRef::new(b, ColId::new(1)));
        let q = qb.build();
        let plan = join(scan(0), scan(1), 0, 1);
        let exec = Executor::with_opts(&db, ExecOpts::serial());
        let mut store = CheckpointStore::new();
        match exec.run_step(&q, &plan, &mut store).unwrap() {
            ExecStep::Complete(run) => assert_eq!(run.rows.len(), 4 * 4 * 10),
            ExecStep::Suspended { .. } => panic!("root join must not suspend"),
        }
    }
}
