//! Execution metrics: what "actual cost" means in the experiments.

use std::time::Duration;

/// Counters collected while executing one plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecMetrics {
    /// Rows read from base tables by scans (before filtering).
    pub rows_scanned: u64,
    /// Rows produced across all operators (sum of every operator's output;
    /// the dominant term for bad join orders).
    pub rows_produced: u64,
    /// Largest single intermediate result.
    pub peak_intermediate_rows: u64,
    /// Index probes performed.
    pub index_probes: u64,
    /// Operators executed partition-parallel (0 on a serial run).
    pub parallel_ops: u64,
    /// Worker tasks spawned by partition-parallel operators.
    pub parallel_workers: u64,
    /// Column batches evaluated by the vectorized engine (0 on a pure
    /// row-engine run).
    pub batches_processed: u64,
    /// Input rows covered by those batches; `batch_rows /
    /// batches_processed` is the average batch fill.
    pub batch_rows: u64,
    /// Dictionary-encoded values touched by the columnar engine: rows
    /// selected by dictionary-column predicates plus group keys rendered
    /// through a dictionary.
    pub dict_hits: u64,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

impl ExecMetrics {
    /// Fold an operator output size into the counters.
    pub fn record_output(&mut self, rows: u64) {
        self.rows_produced += rows;
        self.peak_intermediate_rows = self.peak_intermediate_rows.max(rows);
    }

    /// Average rows per column batch (0.0 when no batches ran).
    pub fn avg_rows_per_batch(&self) -> f64 {
        if self.batches_processed == 0 {
            0.0
        } else {
            self.batch_rows as f64 / self.batches_processed as f64
        }
    }

    /// Merge another metrics object (e.g. from a sub-execution).
    pub fn merge(&mut self, other: &ExecMetrics) {
        self.rows_scanned += other.rows_scanned;
        self.rows_produced += other.rows_produced;
        self.peak_intermediate_rows = self
            .peak_intermediate_rows
            .max(other.peak_intermediate_rows);
        self.index_probes += other.index_probes;
        self.parallel_ops += other.parallel_ops;
        self.parallel_workers += other.parallel_workers;
        self.batches_processed += other.batches_processed;
        self.batch_rows += other.batch_rows;
        self.dict_hits += other.dict_hits;
        self.elapsed += other.elapsed;
    }

    /// Fold one parallel worker's counters into an operator's metrics.
    /// Every merged field is a sum, so the fold is associative and
    /// commutative — worker completion order cannot change the totals
    /// (output rows are counted once at the operator via
    /// [`ExecMetrics::record_output`], never by workers, and worker wall
    /// clocks overlap, so neither is merged here).
    pub fn merge_worker(&mut self, worker: &ExecMetrics) {
        self.rows_scanned += worker.rows_scanned;
        self.index_probes += worker.index_probes;
        self.parallel_workers += worker.parallel_workers;
        self.batches_processed += worker.batches_processed;
        self.batch_rows += worker.batch_rows;
        self.dict_hits += worker.dict_hits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge() {
        let mut m = ExecMetrics::default();
        m.record_output(10);
        m.record_output(3);
        assert_eq!(m.rows_produced, 13);
        assert_eq!(m.peak_intermediate_rows, 10);

        let mut other = ExecMetrics {
            rows_scanned: 5,
            elapsed: Duration::from_millis(2),
            ..Default::default()
        };
        other.record_output(100);
        m.merge(&other);
        assert_eq!(m.rows_scanned, 5);
        assert_eq!(m.rows_produced, 113);
        assert_eq!(m.peak_intermediate_rows, 100);
        assert_eq!(m.elapsed, Duration::from_millis(2));
    }

    #[test]
    fn batch_counters_sum_through_both_merges() {
        let worker = ExecMetrics {
            batches_processed: 3,
            batch_rows: 2600,
            dict_hits: 40,
            ..Default::default()
        };
        let mut op = ExecMetrics::default();
        op.merge_worker(&worker);
        op.merge_worker(&worker);
        assert_eq!(op.batches_processed, 6);
        assert_eq!(op.batch_rows, 5200);
        assert_eq!(op.dict_hits, 80);

        let mut total = ExecMetrics::default();
        total.merge(&op);
        assert_eq!(total.batches_processed, 6);
        assert!((total.avg_rows_per_batch() - 5200.0 / 6.0).abs() < 1e-9);
        assert_eq!(ExecMetrics::default().avg_rows_per_batch(), 0.0);
    }

    /// Three structurally distinct metrics with every field populated and
    /// deliberately *asymmetric* peaks, so max-semantics bugs in
    /// `peak_intermediate_rows` can't hide behind equal values.
    fn samples() -> [ExecMetrics; 3] {
        let mk = |k: u64| ExecMetrics {
            rows_scanned: 10 * k + 1,
            rows_produced: 20 * k + 3,
            peak_intermediate_rows: [7, 500, 31][k as usize],
            index_probes: 3 * k,
            parallel_ops: k,
            parallel_workers: 2 * k,
            batches_processed: 5 * k + 1,
            batch_rows: 100 * k + 17,
            dict_hits: 8 * k,
            elapsed: Duration::from_micros(1000 * k + 5),
        };
        [mk(0), mk(1), mk(2)]
    }

    fn merged(a: &ExecMetrics, b: &ExecMetrics) -> ExecMetrics {
        let mut m = a.clone();
        m.merge(b);
        m
    }

    #[test]
    fn merge_is_commutative_over_all_fields() {
        let [a, b, c] = samples();
        assert_eq!(merged(&a, &b), merged(&b, &a));
        assert_eq!(merged(&a, &c), merged(&c, &a));
        assert_eq!(merged(&b, &c), merged(&c, &b));
    }

    #[test]
    fn merge_is_associative_over_all_fields() {
        let [a, b, c] = samples();
        assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
        // ...and against the max-carrier in every position, since
        // `peak_intermediate_rows` folds by max, not sum.
        assert_eq!(merged(&merged(&b, &a), &c), merged(&b, &merged(&a, &c)));
        assert_eq!(merged(&merged(&c, &b), &a), merged(&c, &merged(&b, &a)));
    }

    #[test]
    fn merge_identity_is_default() {
        let [a, _, _] = samples();
        assert_eq!(merged(&a, &ExecMetrics::default()), a);
        assert_eq!(merged(&ExecMetrics::default(), &a), a);
    }

    #[test]
    fn merge_worker_is_commutative_and_associative() {
        let [a, b, c] = samples();
        let fold = |x: &ExecMetrics, y: &ExecMetrics| {
            let mut m = x.clone();
            m.merge_worker(y);
            m
        };
        // merge_worker only sums worker-side counters; operator-side
        // fields of the receiver pass through untouched, so commutativity
        // is asserted on the summed fields.
        let ab = fold(&fold(&ExecMetrics::default(), &a), &b);
        let ba = fold(&fold(&ExecMetrics::default(), &b), &a);
        assert_eq!(ab, ba);
        let abc = fold(&fold(&fold(&ExecMetrics::default(), &a), &b), &c);
        let cba = fold(&fold(&fold(&ExecMetrics::default(), &c), &b), &a);
        assert_eq!(abc, cba);
    }
}
