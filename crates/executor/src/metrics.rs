//! Execution metrics: what "actual cost" means in the experiments.

use std::time::Duration;

/// Counters collected while executing one plan.
#[derive(Debug, Clone, Default)]
pub struct ExecMetrics {
    /// Rows read from base tables by scans (before filtering).
    pub rows_scanned: u64,
    /// Rows produced across all operators (sum of every operator's output;
    /// the dominant term for bad join orders).
    pub rows_produced: u64,
    /// Largest single intermediate result.
    pub peak_intermediate_rows: u64,
    /// Index probes performed.
    pub index_probes: u64,
    /// Operators executed partition-parallel (0 on a serial run).
    pub parallel_ops: u64,
    /// Worker tasks spawned by partition-parallel operators.
    pub parallel_workers: u64,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

impl ExecMetrics {
    /// Fold an operator output size into the counters.
    pub fn record_output(&mut self, rows: u64) {
        self.rows_produced += rows;
        self.peak_intermediate_rows = self.peak_intermediate_rows.max(rows);
    }

    /// Merge another metrics object (e.g. from a sub-execution).
    pub fn merge(&mut self, other: &ExecMetrics) {
        self.rows_scanned += other.rows_scanned;
        self.rows_produced += other.rows_produced;
        self.peak_intermediate_rows = self
            .peak_intermediate_rows
            .max(other.peak_intermediate_rows);
        self.index_probes += other.index_probes;
        self.parallel_ops += other.parallel_ops;
        self.parallel_workers += other.parallel_workers;
        self.elapsed += other.elapsed;
    }

    /// Fold one parallel worker's counters into an operator's metrics.
    /// Every merged field is a sum, so the fold is associative and
    /// commutative — worker completion order cannot change the totals
    /// (output rows are counted once at the operator via
    /// [`ExecMetrics::record_output`], never by workers, and worker wall
    /// clocks overlap, so neither is merged here).
    pub fn merge_worker(&mut self, worker: &ExecMetrics) {
        self.rows_scanned += worker.rows_scanned;
        self.index_probes += worker.index_probes;
        self.parallel_workers += worker.parallel_workers;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge() {
        let mut m = ExecMetrics::default();
        m.record_output(10);
        m.record_output(3);
        assert_eq!(m.rows_produced, 13);
        assert_eq!(m.peak_intermediate_rows, 10);

        let mut other = ExecMetrics {
            rows_scanned: 5,
            elapsed: Duration::from_millis(2),
            ..Default::default()
        };
        other.record_output(100);
        m.merge(&other);
        assert_eq!(m.rows_scanned, 5);
        assert_eq!(m.rows_produced, 113);
        assert_eq!(m.peak_intermediate_rows, 100);
        assert_eq!(m.elapsed, Duration::from_millis(2));
    }
}
