//! [`RowSet`]: the executor's intermediate result representation.
//!
//! A row set over relations `{r_a, r_b, …}` stores one `Vec<u32>` of base
//! table row ids per relation, all of equal length; output tuple `i` is the
//! concatenation of base rows `cols[r][i]` across relations. This "rowid
//! join" representation keeps joins allocation-light regardless of how wide
//! the payload tables are.

use reopt_common::{Error, RelId, RelSet, Result};

/// An intermediate (or final) join result.
#[derive(Debug, Clone)]
pub struct RowSet {
    rels: Vec<RelId>,
    cols: Vec<Vec<u32>>,
    len: usize,
}

impl RowSet {
    /// A row set over a single relation.
    pub fn single(rel: RelId, rows: Vec<u32>) -> Self {
        let len = rows.len();
        RowSet {
            rels: vec![rel],
            cols: vec![rows],
            len,
        }
    }

    /// Assemble from parallel relation/rowid columns.
    pub fn new(rels: Vec<RelId>, cols: Vec<Vec<u32>>) -> Result<Self> {
        if rels.len() != cols.len() {
            return Err(Error::internal("rowset: rels/cols arity mismatch"));
        }
        let len = cols.first().map_or(0, Vec::len);
        if cols.iter().any(|c| c.len() != len) {
            return Err(Error::internal("rowset: ragged rowid columns"));
        }
        Ok(RowSet { rels, cols, len })
    }

    /// Number of output tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the result is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Relations covered, in column order.
    pub fn rels(&self) -> &[RelId] {
        &self.rels
    }

    /// The covered relations as a set.
    pub fn relset(&self) -> RelSet {
        self.rels.iter().copied().collect()
    }

    /// Row ids for `rel`.
    pub fn rowids(&self, rel: RelId) -> Result<&[u32]> {
        let pos = self.position(rel)?;
        Ok(&self.cols[pos])
    }

    /// Column position of `rel`.
    pub fn position(&self, rel: RelId) -> Result<usize> {
        self.rels
            .iter()
            .position(|&r| r == rel)
            .ok_or_else(|| Error::internal(format!("rowset does not cover relation {rel}")))
    }

    /// Concatenate two disjoint row sets according to `(left_idx, right_idx)`
    /// output pairs (the result of a join match phase).
    pub fn combine(left: &RowSet, right: &RowSet, pairs: &[(u32, u32)]) -> Result<RowSet> {
        if !left.relset().is_disjoint(right.relset()) {
            return Err(Error::internal("joining overlapping rowsets"));
        }
        let mut rels = Vec::with_capacity(left.rels.len() + right.rels.len());
        let mut cols = Vec::with_capacity(rels.capacity());
        for (r, c) in left.rels.iter().zip(&left.cols) {
            rels.push(*r);
            cols.push(pairs.iter().map(|&(l, _)| c[l as usize]).collect());
        }
        for (r, c) in right.rels.iter().zip(&right.cols) {
            rels.push(*r);
            cols.push(pairs.iter().map(|&(_, rr)| c[rr as usize]).collect());
        }
        RowSet::new(rels, cols)
    }

    /// Keep only the tuples at `positions` (selection after the fact).
    pub fn select(&self, positions: &[u32]) -> RowSet {
        let cols = self
            .cols
            .iter()
            .map(|c| positions.iter().map(|&p| c[p as usize]).collect())
            .collect();
        RowSet {
            rels: self.rels.clone(),
            cols,
            len: positions.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    #[test]
    fn single_and_accessors() {
        let rs = RowSet::single(r(2), vec![5, 7, 9]);
        assert_eq!(rs.len(), 3);
        assert!(!rs.is_empty());
        assert_eq!(rs.rels(), &[r(2)]);
        assert_eq!(rs.rowids(r(2)).unwrap(), &[5, 7, 9]);
        assert!(rs.rowids(r(0)).is_err());
        assert_eq!(rs.relset(), RelSet::single(r(2)));
    }

    #[test]
    fn new_validates_shape() {
        assert!(RowSet::new(vec![r(0)], vec![]).is_err());
        assert!(RowSet::new(vec![r(0), r(1)], vec![vec![1], vec![1, 2]]).is_err());
        let ok = RowSet::new(vec![r(0), r(1)], vec![vec![1, 2], vec![3, 4]]).unwrap();
        assert_eq!(ok.len(), 2);
    }

    #[test]
    fn combine_joins_disjoint_sets() {
        let left = RowSet::single(r(0), vec![10, 11]);
        let right = RowSet::single(r(1), vec![20, 21, 22]);
        // Match left[0] with right[2] and left[1] with right[0].
        let out = RowSet::combine(&left, &right, &[(0, 2), (1, 0)]).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.rowids(r(0)).unwrap(), &[10, 11]);
        assert_eq!(out.rowids(r(1)).unwrap(), &[22, 20]);
    }

    #[test]
    fn combine_rejects_overlap() {
        let a = RowSet::single(r(0), vec![1]);
        let b = RowSet::single(r(0), vec![2]);
        assert!(RowSet::combine(&a, &b, &[]).is_err());
    }

    #[test]
    fn select_filters_positions() {
        let rs = RowSet::new(vec![r(0), r(1)], vec![vec![1, 2, 3], vec![4, 5, 6]]).unwrap();
        let out = rs.select(&[2, 0]);
        assert_eq!(out.len(), 2);
        assert_eq!(out.rowids(r(0)).unwrap(), &[3, 1]);
        assert_eq!(out.rowids(r(1)).unwrap(), &[6, 4]);
    }

    #[test]
    fn empty_combine() {
        let left = RowSet::single(r(0), vec![]);
        let right = RowSet::single(r(1), vec![]);
        let out = RowSet::combine(&left, &right, &[]).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.rels().len(), 2);
    }
}
