//! `EXPLAIN ANALYZE`: render a plan with estimated *and* observed
//! cardinalities side by side.
//!
//! This is the debugging view the paper's whole argument lives in — the
//! gap between `rows=` (what the optimizer believed) and `actual=` (what
//! execution produced) is precisely what sampling-based validation feeds
//! back into Γ.

use std::fmt::Write as _;

use crate::exec::{ExecOpts, Executor};
use reopt_common::{FxHashMap, RelSet, Result};
use reopt_plan::{AccessPath, PhysicalPlan, Query};
use reopt_storage::Database;
use reopt_telemetry::{names, Tracer};

/// Execute `plan` and render it with per-node estimated vs actual rows.
///
/// Node identity is the covered relation set, which is unique within one
/// plan, so the trace can be joined back onto the tree.
pub fn explain_analyze(db: &Database, query: &Query, plan: &PhysicalPlan) -> Result<String> {
    let traced = Executor::new(db).run_traced(query, plan)?;
    let mut actual: FxHashMap<RelSet, u64> = FxHashMap::default();
    for (set, rows) in &traced.node_cards {
        actual.insert(*set, *rows);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ExplainAnalyze: {} output rows in {:?}",
        traced.rows.len(),
        traced.metrics.elapsed
    );
    if traced.metrics.batches_processed > 0 {
        let _ = writeln!(
            out,
            "Columnar: {} batches, {:.1} rows/batch avg, {} dict hits",
            traced.metrics.batches_processed,
            traced.metrics.avg_rows_per_batch(),
            traced.metrics.dict_hits
        );
    }
    render(plan, &actual, None, &mut out, 0);
    Ok(out)
}

/// Per-node observations joined back from `exec.operator` spans.
#[derive(Debug, Clone, Copy, Default)]
struct NodeObs {
    dur_us: u64,
    batches: u64,
}

/// [`explain_analyze`] enriched with span-level observations: the plan is
/// executed under an enabled [`Tracer`], and each node line additionally
/// reports the wall time and column-batch count of its `exec.operator`
/// span (joined on the `node` attribute, the covered relation-set mask).
pub fn explain_analyze_traced(db: &Database, query: &Query, plan: &PhysicalPlan) -> Result<String> {
    let tracer = Tracer::enabled();
    let exec = Executor::with_opts(
        db,
        ExecOpts {
            tracer: tracer.clone(),
            ..ExecOpts::default()
        },
    );
    let traced = exec.run_traced(query, plan)?;
    let trace = tracer.finish();
    let mut actual: FxHashMap<RelSet, u64> = FxHashMap::default();
    for (set, rows) in &traced.node_cards {
        actual.insert(*set, *rows);
    }
    let mut obs: FxHashMap<RelSet, NodeObs> = FxHashMap::default();
    for s in trace.spans() {
        if s.name != names::EXEC_OPERATOR {
            continue;
        }
        let Some(mask) = s.attr_u64("node") else {
            continue;
        };
        let e = obs.entry(RelSet::from_mask(mask)).or_default();
        e.dur_us += s.dur_us;
        e.batches += s.attr_u64("batches").unwrap_or(0);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ExplainAnalyze (traced): {} output rows in {:?}, {} spans",
        traced.rows.len(),
        traced.metrics.elapsed,
        trace.len()
    );
    if traced.metrics.batches_processed > 0 {
        let _ = writeln!(
            out,
            "Columnar: {} batches, {:.1} rows/batch avg, {} dict hits",
            traced.metrics.batches_processed,
            traced.metrics.avg_rows_per_batch(),
            traced.metrics.dict_hits
        );
    }
    render(plan, &actual, Some(&obs), &mut out, 0);
    Ok(out)
}

fn render(
    plan: &PhysicalPlan,
    actual: &FxHashMap<RelSet, u64>,
    obs: Option<&FxHashMap<RelSet, NodeObs>>,
    out: &mut String,
    depth: usize,
) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    let observed = actual
        .get(&plan.relset())
        .map(|r| r.to_string())
        .unwrap_or_else(|| "?".to_string());
    let timing = obs
        .and_then(|m| m.get(&plan.relset()))
        .map(|o| {
            if o.batches > 0 {
                format!("  time={}us batches={}", o.dur_us, o.batches)
            } else {
                format!("  time={}us", o.dur_us)
            }
        })
        .unwrap_or_default();
    match plan {
        PhysicalPlan::Scan {
            rel,
            table,
            access,
            info,
        } => {
            let path = match access {
                AccessPath::SeqScan => "SeqScan".to_string(),
                AccessPath::IndexScan { col } => format!("IndexScan[{col}]"),
            };
            let _ = writeln!(
                out,
                "{path} {rel} (table {table})  est={:.1} actual={observed}{timing}",
                info.est_rows
            );
        }
        PhysicalPlan::Join {
            algo,
            left,
            right,
            keys,
            info,
        } => {
            let keys_s = keys
                .iter()
                .map(|(a, b)| format!("{a}={b}"))
                .collect::<Vec<_>>()
                .join(" AND ");
            let est = info.est_rows;
            let marker = match actual.get(&plan.relset()) {
                Some(&a) => {
                    let a = a as f64;
                    let ratio = (a.max(1.0) / est.max(1.0)).max(est.max(1.0) / a.max(1.0));
                    if ratio >= 10.0 {
                        "  <-- misestimated"
                    } else {
                        ""
                    }
                }
                None => "",
            };
            let _ = writeln!(
                out,
                "{algo:?}Join on [{keys_s}]  est={est:.1} actual={observed}{timing}{marker}",
            );
            render(left, actual, obs, out, depth + 1);
            render(right, actual, obs, out, depth + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_common::{ColId, RelId, TableId};
    use reopt_plan::physical::PlanNodeInfo;
    use reopt_plan::query::ColRef;
    use reopt_plan::{JoinAlgo, Predicate, QueryBuilder};
    use reopt_storage::{Column, ColumnDef, LogicalType, Table, TableSchema};

    fn db() -> Database {
        let mut db = Database::new();
        for name in ["x", "y"] {
            db.add_table_with(|id| {
                let schema = TableSchema::new(vec![ColumnDef::new("k", LogicalType::Int)])?;
                Table::new(
                    id,
                    name,
                    schema,
                    vec![Column::from_i64(
                        LogicalType::Int,
                        (0..50).map(|i| i % 10).collect(),
                    )],
                )
            })
            .unwrap();
        }
        db
    }

    fn plan(est_rows: f64) -> PhysicalPlan {
        PhysicalPlan::Join {
            algo: JoinAlgo::Hash,
            left: Box::new(PhysicalPlan::Scan {
                rel: RelId::new(0),
                table: TableId::new(0),
                access: AccessPath::SeqScan,
                info: PlanNodeInfo {
                    est_rows: 50.0,
                    est_cost: 1.0,
                },
            }),
            right: Box::new(PhysicalPlan::Scan {
                rel: RelId::new(1),
                table: TableId::new(1),
                access: AccessPath::SeqScan,
                info: PlanNodeInfo {
                    est_rows: 50.0,
                    est_cost: 1.0,
                },
            }),
            keys: vec![(
                ColRef::new(RelId::new(0), ColId::new(0)),
                ColRef::new(RelId::new(1), ColId::new(0)),
            )],
            info: PlanNodeInfo {
                est_rows,
                est_cost: 2.0,
            },
        }
    }

    fn query() -> reopt_plan::Query {
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(TableId::new(0));
        let b = qb.add_relation(TableId::new(1));
        qb.add_join(ColRef::new(a, ColId::new(0)), ColRef::new(b, ColId::new(0)));
        qb.build()
    }

    #[test]
    fn shows_actual_rows_per_node() {
        let db = db();
        // True join size: 10 keys × 5 × 5 = 250.
        let s = explain_analyze(&db, &query(), &plan(250.0)).unwrap();
        assert!(s.contains("actual=250"), "{s}");
        assert!(s.contains("est=250.0"), "{s}");
        assert!(s.contains("actual=50")); // both scans
        assert!(!s.contains("misestimated"));
    }

    #[test]
    fn flags_large_misestimates() {
        let db = db();
        let s = explain_analyze(&db, &query(), &plan(3.0)).unwrap();
        assert!(s.contains("est=3.0 actual=250  <-- misestimated"), "{s}");
    }

    #[test]
    fn batch_counters_follow_engine() {
        let db = db();
        let s = explain_analyze(&db, &query(), &plan(250.0)).unwrap();
        // `explain_analyze` uses the default executor, so the header
        // follows the ambient REOPT_COLUMNAR knob.
        if crate::exec::default_columnar() {
            assert!(s.contains("Columnar:"), "{s}");
            assert!(s.contains("rows/batch avg"), "{s}");
        } else {
            assert!(!s.contains("Columnar:"), "{s}");
        }
    }

    #[test]
    fn traced_explain_reports_per_node_time() {
        let db = db();
        let s = explain_analyze_traced(&db, &query(), &plan(250.0)).unwrap();
        assert!(s.contains("ExplainAnalyze (traced):"), "{s}");
        assert!(s.contains("actual=250"), "{s}");
        // Every node line carries its exec.operator span's wall time.
        assert_eq!(s.matches("time=").count(), 3, "{s}");
    }

    #[test]
    fn respects_filters() {
        let db = db();
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(TableId::new(0));
        let b = qb.add_relation(TableId::new(1));
        qb.add_predicate(Predicate::eq(a, ColId::new(0), 3i64));
        qb.add_join(ColRef::new(a, ColId::new(0)), ColRef::new(b, ColId::new(0)));
        let q = qb.build();
        let s = explain_analyze(&db, &q, &plan(25.0)).unwrap();
        // 5 left rows × 5 matches = 25.
        assert!(s.contains("actual=25"), "{s}");
        assert!(s.contains("actual=5"), "{s}");
    }
}
