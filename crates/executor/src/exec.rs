//! Plan execution.

use std::time::Instant;

use crate::agg::{aggregate, AggOutput};
use crate::metrics::ExecMetrics;
use crate::rowset::RowSet;
use reopt_common::{ColId, Error, FxHashMap, RelId, RelSet, Result};
use reopt_plan::query::ColRef;
use reopt_plan::{AccessPath, CmpOp, JoinAlgo, PhysicalPlan, Predicate, Query};
use reopt_storage::value::NULL_SENTINEL;
use reopt_storage::{Database, Table};

/// Executor limits.
#[derive(Debug, Clone)]
pub struct ExecOpts {
    /// Abort when any single operator output exceeds this many rows —
    /// a safety valve against truly pathological plans (the OTT's bad plans
    /// are *meant* to be painful, but not to OOM the process).
    pub max_intermediate_rows: u64,
}

impl Default for ExecOpts {
    fn default() -> Self {
        ExecOpts {
            max_intermediate_rows: 100_000_000,
        }
    }
}

/// Result of [`Executor::run_traced`]: the join result plus the observed
/// cardinality of every plan node — what the sampling validator reads off
/// a "dry run" over the sample tables.
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// Final join result.
    pub rows: RowSet,
    /// (relation set, output rows) for every node, post-order. For cached
    /// subtrees the recorded (not re-executed) cardinalities are spliced
    /// in, so the trace is identical to an uncached run's.
    pub node_cards: Vec<(RelSet, u64)>,
    /// Execution counters (cache hits produce no scan/probe/output work).
    pub metrics: ExecMetrics,
}

/// A cross-run store of executed subtree results, consulted by
/// [`Executor::run_traced_cached`].
///
/// The executor asks the cache for a *canonical fingerprint* of each plan
/// node (the implementor decides what "same subtree" means — e.g. relation
/// set + applied predicates + join keys, independent of join order and
/// physical operators). On a `lookup` hit the node's own work (scan or
/// join matching) is skipped and the stored row set stands in; the node's
/// children are still traversed so the run's cardinality trace follows the
/// *current* plan's structure — a canonical hit may come from a
/// differently shaped subtree of an earlier run, whose internal
/// decomposition must not leak into this run's trace.
pub trait SubtreeCache {
    /// Canonical fingerprint for `plan`; `None` exempts the node (and only
    /// the node — its children are still offered) from caching. The
    /// covered relation set is passed alongside the fingerprint on every
    /// lookup/store, so implementations can key on `(set, fingerprint)`
    /// and rule out cross-set hash collisions structurally.
    fn fingerprint(&mut self, query: &Query, plan: &PhysicalPlan) -> Option<u64>;

    /// The cached output rows for `(set, fp)`, if any.
    fn lookup(&mut self, set: RelSet, fp: u64) -> Option<RowSet>;

    /// Cardinality-only lookup: the cached row *count* for `(set, fp)`,
    /// without materializing the rows. Used for trace entries under an
    /// ancestor that already hit, where the rows are never consumed.
    fn peek_rows(&mut self, set: RelSet, fp: u64) -> Option<u64> {
        self.lookup(set, fp).map(|r| r.len() as u64)
    }

    /// Record a freshly executed node's output rows.
    fn store(&mut self, set: RelSet, fp: u64, rows: &RowSet);
}

/// Result of running a full query.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Cardinality of the join result (before aggregation).
    pub join_rows: u64,
    /// Aggregate output, when the query has an aggregate stage.
    pub agg: Option<AggOutput>,
    /// Execution counters.
    pub metrics: ExecMetrics,
}

/// A plan executor bound to a database.
#[derive(Debug)]
pub struct Executor<'a> {
    db: &'a Database,
    opts: ExecOpts,
}

/// Convenience: execute `plan` for `query` against `db` with default options.
pub fn execute_plan(db: &Database, query: &Query, plan: &PhysicalPlan) -> Result<QueryOutput> {
    Executor::new(db).run(query, plan)
}

/// Convenience: execute and return only the join cardinality.
pub fn execute_query(db: &Database, query: &Query, plan: &PhysicalPlan) -> Result<u64> {
    Ok(execute_plan(db, query, plan)?.join_rows)
}

impl<'a> Executor<'a> {
    /// Executor with default options.
    pub fn new(db: &'a Database) -> Self {
        Executor {
            db,
            opts: ExecOpts::default(),
        }
    }

    /// Executor with explicit options.
    pub fn with_opts(db: &'a Database, opts: ExecOpts) -> Self {
        Executor { db, opts }
    }

    /// Execute the full query: join pipeline plus optional aggregation.
    pub fn run(&self, query: &Query, plan: &PhysicalPlan) -> Result<QueryOutput> {
        let start = Instant::now();
        let mut state = ExecState::new(false);
        let rows = self.exec_node(query, plan, &mut state)?;
        let agg = match &query.aggregate {
            Some(spec) => Some(aggregate(self.db, query, &rows, spec)?),
            None => None,
        };
        state.metrics.elapsed = start.elapsed();
        Ok(QueryOutput {
            join_rows: rows.len() as u64,
            agg,
            metrics: state.metrics,
        })
    }

    /// Execute the join pipeline only, returning the row set.
    pub fn run_rowset(&self, query: &Query, plan: &PhysicalPlan) -> Result<(RowSet, ExecMetrics)> {
        let start = Instant::now();
        let mut state = ExecState::new(false);
        let rows = self.exec_node(query, plan, &mut state)?;
        state.metrics.elapsed = start.elapsed();
        Ok((rows, state.metrics))
    }

    /// Execute the join pipeline and record every node's output
    /// cardinality — the sampling validator's entry point.
    pub fn run_traced(&self, query: &Query, plan: &PhysicalPlan) -> Result<TracedRun> {
        let start = Instant::now();
        let mut state = ExecState::new(true);
        let rows = self.exec_node(query, plan, &mut state)?;
        state.metrics.elapsed = start.elapsed();
        Ok(TracedRun {
            rows,
            node_cards: state.trace,
            metrics: state.metrics,
        })
    }

    /// Like [`Executor::run_traced`], but skipping every subtree the
    /// `cache` already holds — the incremental dry-run of cross-round
    /// re-optimization. Freshly executed subtrees are stored back, so
    /// successive runs over structurally overlapping plans only pay for
    /// what changed.
    pub fn run_traced_cached(
        &self,
        query: &Query,
        plan: &PhysicalPlan,
        cache: &mut dyn SubtreeCache,
    ) -> Result<TracedRun> {
        let start = Instant::now();
        let mut state = ExecState::new(true);
        state.cache = Some(cache);
        let rows = self.exec_node(query, plan, &mut state)?;
        state.metrics.elapsed = start.elapsed();
        Ok(TracedRun {
            rows,
            node_cards: state.trace,
            metrics: state.metrics,
        })
    }

    fn check_cap(&self, rows: u64) -> Result<()> {
        if rows > self.opts.max_intermediate_rows {
            return Err(Error::invalid(format!(
                "intermediate result of {rows} rows exceeds cap {}",
                self.opts.max_intermediate_rows
            )));
        }
        Ok(())
    }

    fn exec_node(
        &self,
        query: &Query,
        plan: &PhysicalPlan,
        state: &mut ExecState<'_>,
    ) -> Result<RowSet> {
        Ok(self
            .exec_node_inner(query, plan, state, true)?
            .expect("rows requested"))
    }

    /// Operator recursion. `need_rows: false` means the caller only wants
    /// this subtree's trace entries (its own result sits in an ancestor's
    /// cache hit) — a cached node can then answer with a row *count* and
    /// skip materializing anything.
    fn exec_node_inner(
        &self,
        query: &Query,
        plan: &PhysicalPlan,
        state: &mut ExecState<'_>,
        need_rows: bool,
    ) -> Result<Option<RowSet>> {
        // Cached dry-run (only via `run_traced_cached`): a canonical-
        // fingerprint hit replaces this node's own scan/join work with the
        // stored rows. Children are *still* traversed — their (possibly
        // cached) results feed the trace in current-plan order, which a
        // hit from a differently shaped earlier subtree cannot provide.
        let fp = match state.cache.as_mut() {
            Some(c) => c.fingerprint(query, plan),
            None => None,
        };
        if let Some(fp) = fp {
            let set = plan.relset();
            let hit = if need_rows {
                state
                    .cache
                    .as_mut()
                    .unwrap()
                    .lookup(set, fp)
                    .map(|r| (r.len() as u64, Some(r)))
            } else {
                state
                    .cache
                    .as_mut()
                    .unwrap()
                    .peek_rows(set, fp)
                    .map(|n| (n, None))
            };
            if let Some((count, rows)) = hit {
                if let PhysicalPlan::Join {
                    algo, left, right, ..
                } = plan
                {
                    self.exec_node_inner(query, left, state, false)?;
                    // The index-nested inner is probed, never planned as a
                    // standalone node; it has no trace entry to produce.
                    if *algo != JoinAlgo::IndexNested {
                        self.exec_node_inner(query, right, state, false)?;
                    }
                }
                if state.tracing {
                    state.trace.push((plan.relset(), count));
                }
                // A replayed result must respect *this* run's cap, which
                // may be tighter than the one in force when it was stored.
                self.check_cap(count)?;
                return Ok(rows);
            }
        }
        let out = match plan {
            PhysicalPlan::Scan {
                rel, table, access, ..
            } => self.exec_scan(query, *rel, *table, *access, &mut state.metrics)?,
            PhysicalPlan::Join {
                algo,
                left,
                right,
                keys,
                ..
            } => match algo {
                JoinAlgo::IndexNested => {
                    let outer = self.exec_node(query, left, state)?;
                    self.exec_index_nested(query, &outer, right, keys, &mut state.metrics)?
                }
                _ => {
                    let l = self.exec_node(query, left, state)?;
                    let r = self.exec_node(query, right, state)?;
                    match algo {
                        JoinAlgo::Hash => self.exec_hash_join(query, &l, &r, keys)?,
                        JoinAlgo::Merge => self.exec_merge_join(query, &l, &r, keys)?,
                        JoinAlgo::NestedLoop => self.exec_nested_loop(query, &l, &r, keys)?,
                        JoinAlgo::IndexNested => unreachable!(),
                    }
                }
            },
        };
        state.metrics.record_output(out.len() as u64);
        if state.tracing {
            state.trace.push((plan.relset(), out.len() as u64));
        }
        self.check_cap(out.len() as u64)?;
        if let Some(fp) = fp {
            state.cache.as_mut().unwrap().store(plan.relset(), fp, &out);
        }
        Ok(Some(out))
    }

    fn exec_scan(
        &self,
        query: &Query,
        rel: RelId,
        table_id: reopt_common::TableId,
        access: AccessPath,
        metrics: &mut ExecMetrics,
    ) -> Result<RowSet> {
        let table = self.db.table(table_id)?;
        let preds = query.local_predicates(rel);
        let compiled = compile_predicates(table, preds)?;

        let rows: Vec<u32> = match access {
            AccessPath::SeqScan => {
                metrics.rows_scanned += table.row_count() as u64;
                let mut out = Vec::new();
                'rows: for row in 0..table.row_count() as u32 {
                    for p in &compiled {
                        if !p.matches(row) {
                            continue 'rows;
                        }
                    }
                    out.push(row);
                }
                out
            }
            AccessPath::IndexScan { col } => {
                // Find the driving equality predicate on `col`.
                let driver = compiled
                    .iter()
                    .position(|p| p.col == col && p.op == CmpOp::Eq)
                    .ok_or_else(|| {
                        Error::internal(format!(
                            "index scan on {rel}.{col} without an equality predicate"
                        ))
                    })?;
                let index = table.index(col).ok_or_else(|| {
                    Error::internal(format!("index scan on unindexed column {col}"))
                })?;
                metrics.index_probes += 1;
                let candidates: &[u32] = match compiled[driver].c1 {
                    Some(v) => index.probe(v),
                    None => &[], // constant absent from dictionary
                };
                let mut out = Vec::with_capacity(candidates.len());
                'cand: for &row in candidates {
                    for (i, p) in compiled.iter().enumerate() {
                        if i != driver && !p.matches(row) {
                            continue 'cand;
                        }
                    }
                    out.push(row);
                }
                out
            }
        };
        Ok(RowSet::single(rel, rows))
    }

    /// Gather the raw key values for `key` columns over a row set.
    fn gather_keys(&self, query: &Query, rows: &RowSet, cols: &[ColRef]) -> Result<Vec<Vec<i64>>> {
        let mut out = Vec::with_capacity(cols.len());
        for c in cols {
            let table = self.db.table(query.table_of(c.rel)?)?;
            let data = table.column(c.col)?.data();
            let ids = rows.rowids(c.rel)?;
            out.push(ids.iter().map(|&r| data[r as usize]).collect());
        }
        Ok(out)
    }

    fn split_keys(keys: &[(ColRef, ColRef)], left: &RowSet) -> (Vec<ColRef>, Vec<ColRef>) {
        // Plan keys are (left-input column, right-input column) by
        // construction, but be robust to orientation.
        let lset = left.relset();
        let mut lcols = Vec::with_capacity(keys.len());
        let mut rcols = Vec::with_capacity(keys.len());
        for (a, b) in keys {
            if lset.contains(a.rel) {
                lcols.push(*a);
                rcols.push(*b);
            } else {
                lcols.push(*b);
                rcols.push(*a);
            }
        }
        (lcols, rcols)
    }

    fn exec_hash_join(
        &self,
        query: &Query,
        left: &RowSet,
        right: &RowSet,
        keys: &[(ColRef, ColRef)],
    ) -> Result<RowSet> {
        if keys.is_empty() {
            return self.exec_nested_loop(query, left, right, keys);
        }
        let (lcols, rcols) = Self::split_keys(keys, left);
        let lkeys = self.gather_keys(query, left, &lcols)?;
        let rkeys = self.gather_keys(query, right, &rcols)?;

        let mut pairs: Vec<(u32, u32)> = Vec::new();
        if keys.len() == 1 {
            // Fast path: single i64 key.
            let mut table: FxHashMap<i64, Vec<u32>> = FxHashMap::default();
            for (i, &v) in rkeys[0].iter().enumerate() {
                if v != NULL_SENTINEL {
                    table.entry(v).or_default().push(i as u32);
                }
            }
            for (i, &v) in lkeys[0].iter().enumerate() {
                if v == NULL_SENTINEL {
                    continue;
                }
                if let Some(matches) = table.get(&v) {
                    for &j in matches {
                        pairs.push((i as u32, j));
                    }
                }
            }
        } else {
            let mut table: FxHashMap<Vec<i64>, Vec<u32>> = FxHashMap::default();
            'rrows: for j in 0..right.len() {
                let mut k = Vec::with_capacity(keys.len());
                for col in &rkeys {
                    if col[j] == NULL_SENTINEL {
                        continue 'rrows;
                    }
                    k.push(col[j]);
                }
                table.entry(k).or_default().push(j as u32);
            }
            'lrows: for i in 0..left.len() {
                let mut k = Vec::with_capacity(keys.len());
                for col in &lkeys {
                    if col[i] == NULL_SENTINEL {
                        continue 'lrows;
                    }
                    k.push(col[i]);
                }
                if let Some(matches) = table.get(&k) {
                    for &j in matches {
                        pairs.push((i as u32, j));
                    }
                }
            }
        }
        RowSet::combine(left, right, &pairs)
    }

    fn exec_merge_join(
        &self,
        query: &Query,
        left: &RowSet,
        right: &RowSet,
        keys: &[(ColRef, ColRef)],
    ) -> Result<RowSet> {
        if keys.is_empty() {
            return self.exec_nested_loop(query, left, right, keys);
        }
        let (lcols, rcols) = Self::split_keys(keys, left);
        let lkeys = self.gather_keys(query, left, &lcols)?;
        let rkeys = self.gather_keys(query, right, &rcols)?;

        let key_at =
            |cols: &[Vec<i64>], i: usize| -> Vec<i64> { cols.iter().map(|c| c[i]).collect() };
        let non_null = |cols: &[Vec<i64>], i: usize| cols.iter().all(|c| c[i] != NULL_SENTINEL);

        let mut lidx: Vec<u32> = (0..left.len() as u32)
            .filter(|&i| non_null(&lkeys, i as usize))
            .collect();
        let mut ridx: Vec<u32> = (0..right.len() as u32)
            .filter(|&j| non_null(&rkeys, j as usize))
            .collect();
        lidx.sort_by_key(|&i| key_at(&lkeys, i as usize));
        ridx.sort_by_key(|&j| key_at(&rkeys, j as usize));

        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < lidx.len() && j < ridx.len() {
            let lk = key_at(&lkeys, lidx[i] as usize);
            let rk = key_at(&rkeys, ridx[j] as usize);
            match lk.cmp(&rk) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Extent of the equal runs on both sides.
                    let i_end = (i..lidx.len())
                        .take_while(|&x| key_at(&lkeys, lidx[x] as usize) == lk)
                        .last()
                        .unwrap()
                        + 1;
                    let j_end = (j..ridx.len())
                        .take_while(|&x| key_at(&rkeys, ridx[x] as usize) == rk)
                        .last()
                        .unwrap()
                        + 1;
                    for &li in &lidx[i..i_end] {
                        for &rj in &ridx[j..j_end] {
                            pairs.push((li, rj));
                        }
                    }
                    i = i_end;
                    j = j_end;
                }
            }
        }
        RowSet::combine(left, right, &pairs)
    }

    fn exec_nested_loop(
        &self,
        query: &Query,
        left: &RowSet,
        right: &RowSet,
        keys: &[(ColRef, ColRef)],
    ) -> Result<RowSet> {
        let (lcols, rcols) = Self::split_keys(keys, left);
        let lkeys = self.gather_keys(query, left, &lcols)?;
        let rkeys = self.gather_keys(query, right, &rcols)?;
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for i in 0..left.len() {
            'inner: for j in 0..right.len() {
                for (lc, rc) in lkeys.iter().zip(&rkeys) {
                    let (a, b) = (lc[i], rc[j]);
                    if a == NULL_SENTINEL || b == NULL_SENTINEL || a != b {
                        continue 'inner;
                    }
                }
                pairs.push((i as u32, j as u32));
            }
        }
        RowSet::combine(left, right, &pairs)
    }

    fn exec_index_nested(
        &self,
        query: &Query,
        outer: &RowSet,
        inner_plan: &PhysicalPlan,
        keys: &[(ColRef, ColRef)],
        metrics: &mut ExecMetrics,
    ) -> Result<RowSet> {
        let PhysicalPlan::Scan {
            rel: inner_rel,
            table: inner_table,
            ..
        } = inner_plan
        else {
            return Err(Error::internal(
                "index nested loop join requires a base-table scan inner",
            ));
        };
        if keys.is_empty() {
            return Err(Error::internal("index nested loop join without keys"));
        }
        let table = self.db.table(*inner_table)?;
        let compiled = compile_predicates(table, query.local_predicates(*inner_rel))?;

        // Orient keys: outer side vs inner side.
        let mut outer_cols = Vec::new();
        let mut inner_cols = Vec::new();
        for (a, b) in keys {
            if a.rel == *inner_rel {
                inner_cols.push(*a);
                outer_cols.push(*b);
            } else {
                inner_cols.push(*b);
                outer_cols.push(*a);
            }
        }
        // The first key drives the index probe; the rest are residuals.
        let probe_col = inner_cols[0].col;
        let index = table.index(probe_col).ok_or_else(|| {
            Error::internal(format!(
                "index nested loop join: column {probe_col} of table `{}` is not indexed",
                table.name()
            ))
        })?;

        let outer_keys = self.gather_keys(query, outer, &outer_cols)?;
        let inner_residual_cols: Vec<&[i64]> = inner_cols
            .iter()
            .skip(1)
            .map(|c| table.column(c.col).map(|col| col.data()))
            .collect::<Result<_>>()?;

        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut inner_rows: Vec<u32> = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for i in 0..outer.len() {
            let probe = outer_keys[0][i];
            if probe == NULL_SENTINEL {
                continue;
            }
            metrics.index_probes += 1;
            'cand: for &row in index.probe(probe) {
                // Residual key equalities.
                for (k, col) in inner_residual_cols.iter().enumerate() {
                    let ov = outer_keys[k + 1][i];
                    let iv = col[row as usize];
                    if ov == NULL_SENTINEL || iv == NULL_SENTINEL || ov != iv {
                        continue 'cand;
                    }
                }
                // Inner local predicates.
                for p in &compiled {
                    if !p.matches(row) {
                        continue 'cand;
                    }
                }
                pairs.push((i as u32, inner_rows.len() as u32));
                inner_rows.push(row);
            }
        }
        let inner_set = RowSet::single(*inner_rel, inner_rows);
        RowSet::combine(outer, &inner_set, &pairs)
    }
}

/// Mutable per-execution state threaded through the operator recursion.
struct ExecState<'c> {
    metrics: ExecMetrics,
    tracing: bool,
    trace: Vec<(RelSet, u64)>,
    cache: Option<&'c mut dyn SubtreeCache>,
}

impl<'c> ExecState<'c> {
    fn new(tracing: bool) -> Self {
        ExecState {
            metrics: ExecMetrics::default(),
            tracing,
            trace: Vec::new(),
            cache: None,
        }
    }
}

/// A predicate with its constants encoded against the target table.
struct CompiledPred<'a> {
    col: ColId,
    op: CmpOp,
    /// Encoded first constant; `None` means "matches nothing" (dictionary
    /// miss).
    c1: Option<i64>,
    c2: i64,
    data: &'a [i64],
}

impl CompiledPred<'_> {
    #[inline]
    fn matches(&self, row: u32) -> bool {
        let v = self.data[row as usize];
        if v == NULL_SENTINEL {
            return false; // SQL: comparisons with NULL are not true
        }
        match self.c1 {
            Some(c1) => self.op.eval(v, c1, self.c2),
            None => false,
        }
    }
}

fn compile_predicates<'a>(table: &'a Table, preds: &[Predicate]) -> Result<Vec<CompiledPred<'a>>> {
    preds
        .iter()
        .map(|p| {
            let column = table.column(p.col)?;
            let c1 = column.encode_constant(&p.value)?;
            let c2 = match &p.value2 {
                Some(v) => column.encode_constant(v)?.unwrap_or(i64::MAX),
                None => 0,
            };
            Ok(CompiledPred {
                col: p.col,
                op: p.op,
                c1,
                c2,
                data: column.data(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_common::TableId;
    use reopt_plan::physical::PlanNodeInfo;
    use reopt_plan::QueryBuilder;
    use reopt_storage::{Column, ColumnDef, LogicalType, TableSchema};

    /// Two tables: t0(k, v) with k=0,1,2,3,4 ×2; t1(k, w) with k=0..9.
    fn test_db() -> Database {
        let mut db = Database::new();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("k", LogicalType::Int),
                ColumnDef::new("v", LogicalType::Int),
            ])?;
            let mut t = Table::new(
                id,
                "t0",
                schema,
                vec![
                    Column::from_i64(LogicalType::Int, vec![0, 1, 2, 3, 4, 0, 1, 2, 3, 4]),
                    Column::from_i64(LogicalType::Int, (0..10).collect()),
                ],
            )?;
            t.create_index(ColId::new(0))?;
            Ok(t)
        })
        .unwrap();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("k", LogicalType::Int),
                ColumnDef::new("w", LogicalType::Int),
            ])?;
            let mut t = Table::new(
                id,
                "t1",
                schema,
                vec![
                    Column::from_i64(LogicalType::Int, (0..10).collect()),
                    Column::from_i64(LogicalType::Int, (100..110).collect()),
                ],
            )?;
            t.create_index(ColId::new(0))?;
            Ok(t)
        })
        .unwrap();
        db
    }

    fn scan(rel: u32, table: u32, access: AccessPath) -> PhysicalPlan {
        PhysicalPlan::Scan {
            rel: RelId::new(rel),
            table: TableId::new(table),
            access,
            info: PlanNodeInfo::default(),
        }
    }

    fn join(
        algo: JoinAlgo,
        l: PhysicalPlan,
        r: PhysicalPlan,
        keys: Vec<(ColRef, ColRef)>,
    ) -> PhysicalPlan {
        PhysicalPlan::Join {
            algo,
            left: Box::new(l),
            right: Box::new(r),
            keys,
            info: PlanNodeInfo::default(),
        }
    }

    fn two_table_query(db: &Database) -> Query {
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("t0").unwrap());
        let b = qb.add_relation(db.table_id("t1").unwrap());
        qb.add_join(ColRef::new(a, ColId::new(0)), ColRef::new(b, ColId::new(0)));
        qb.build()
    }

    fn keyrefs() -> Vec<(ColRef, ColRef)> {
        vec![(
            ColRef::new(RelId::new(0), ColId::new(0)),
            ColRef::new(RelId::new(1), ColId::new(0)),
        )]
    }

    #[test]
    fn seq_scan_filters_predicates() {
        let db = test_db();
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("t0").unwrap());
        qb.add_predicate(Predicate::eq(a, ColId::new(0), 2i64));
        let q = qb.build();
        let out = execute_plan(&db, &q, &scan(0, 0, AccessPath::SeqScan)).unwrap();
        assert_eq!(out.join_rows, 2);
        assert_eq!(out.metrics.rows_scanned, 10);
    }

    #[test]
    fn index_scan_equivalent_to_seq_scan() {
        let db = test_db();
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("t0").unwrap());
        qb.add_predicate(Predicate::eq(a, ColId::new(0), 3i64));
        qb.add_predicate(Predicate::gt(a, ColId::new(1), 5i64));
        let q = qb.build();
        let seq = execute_plan(&db, &q, &scan(0, 0, AccessPath::SeqScan)).unwrap();
        let idx = execute_plan(
            &db,
            &q,
            &scan(0, 0, AccessPath::IndexScan { col: ColId::new(0) }),
        )
        .unwrap();
        assert_eq!(seq.join_rows, idx.join_rows);
        assert_eq!(idx.join_rows, 1); // k=3 rows are rowids 3 (v=3) and 8 (v=8); only v=8 > 5
        assert!(idx.metrics.index_probes >= 1);
        assert_eq!(idx.metrics.rows_scanned, 0);
    }

    #[test]
    fn all_join_algorithms_agree() {
        let db = test_db();
        let q = two_table_query(&db);
        // Every t0 row matches exactly one t1 row: expect 10.
        for algo in [JoinAlgo::Hash, JoinAlgo::Merge, JoinAlgo::NestedLoop] {
            let p = join(
                algo,
                scan(0, 0, AccessPath::SeqScan),
                scan(1, 1, AccessPath::SeqScan),
                keyrefs(),
            );
            let out = execute_plan(&db, &q, &p).unwrap();
            assert_eq!(out.join_rows, 10, "{algo:?}");
        }
        // Index nested loops (inner = t1 scan, index on k).
        let p = join(
            JoinAlgo::IndexNested,
            scan(0, 0, AccessPath::SeqScan),
            scan(1, 1, AccessPath::SeqScan),
            keyrefs(),
        );
        let out = execute_plan(&db, &q, &p).unwrap();
        assert_eq!(out.join_rows, 10);
        assert!(out.metrics.index_probes >= 10);
    }

    #[test]
    fn join_respects_local_predicates() {
        let db = test_db();
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("t0").unwrap());
        let b = qb.add_relation(db.table_id("t1").unwrap());
        qb.add_predicate(Predicate::le(b, ColId::new(0), 1i64));
        qb.add_join(ColRef::new(a, ColId::new(0)), ColRef::new(b, ColId::new(0)));
        let q = qb.build();
        for algo in [
            JoinAlgo::Hash,
            JoinAlgo::Merge,
            JoinAlgo::NestedLoop,
            JoinAlgo::IndexNested,
        ] {
            let p = join(
                algo,
                scan(0, 0, AccessPath::SeqScan),
                scan(1, 1, AccessPath::SeqScan),
                keyrefs(),
            );
            let out = execute_plan(&db, &q, &p).unwrap();
            // t1 keeps k ∈ {0,1}; each matches 2 rows of t0.
            assert_eq!(out.join_rows, 4, "{algo:?}");
        }
    }

    #[test]
    fn reversed_operands_still_match() {
        let db = test_db();
        let q = two_table_query(&db);
        // Join with t1 as the outer side.
        let p = join(
            JoinAlgo::Hash,
            scan(1, 1, AccessPath::SeqScan),
            scan(0, 0, AccessPath::SeqScan),
            keyrefs(),
        );
        let out = execute_plan(&db, &q, &p).unwrap();
        assert_eq!(out.join_rows, 10);
    }

    #[test]
    fn nulls_never_join() {
        let mut db = Database::new();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![ColumnDef::new("k", LogicalType::Int)])?;
            Table::new(
                id,
                "l",
                schema,
                vec![Column::from_i64(
                    LogicalType::Int,
                    vec![1, NULL_SENTINEL, 2],
                )],
            )
        })
        .unwrap();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![ColumnDef::new("k", LogicalType::Int)])?;
            let mut t = Table::new(
                id,
                "r",
                schema,
                vec![Column::from_i64(
                    LogicalType::Int,
                    vec![NULL_SENTINEL, 1, 1],
                )],
            )?;
            t.create_index(ColId::new(0))?;
            Ok(t)
        })
        .unwrap();
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("l").unwrap());
        let b = qb.add_relation(db.table_id("r").unwrap());
        qb.add_join(ColRef::new(a, ColId::new(0)), ColRef::new(b, ColId::new(0)));
        let q = qb.build();
        for algo in [
            JoinAlgo::Hash,
            JoinAlgo::Merge,
            JoinAlgo::NestedLoop,
            JoinAlgo::IndexNested,
        ] {
            let p = join(
                algo,
                scan(0, 0, AccessPath::SeqScan),
                scan(1, 1, AccessPath::SeqScan),
                keyrefs(),
            );
            let out = execute_plan(&db, &q, &p).unwrap();
            // Only l.k=1 matches r's two k=1 rows.
            assert_eq!(out.join_rows, 2, "{algo:?}");
        }
    }

    #[test]
    fn intermediate_cap_aborts_execution() {
        let db = test_db();
        let q = two_table_query(&db);
        let p = join(
            JoinAlgo::Hash,
            scan(0, 0, AccessPath::SeqScan),
            scan(1, 1, AccessPath::SeqScan),
            keyrefs(),
        );
        let exec = Executor::with_opts(
            &db,
            ExecOpts {
                max_intermediate_rows: 5,
            },
        );
        assert!(exec.run(&q, &p).is_err());
    }

    #[test]
    fn metrics_track_rows() {
        let db = test_db();
        let q = two_table_query(&db);
        let p = join(
            JoinAlgo::Hash,
            scan(0, 0, AccessPath::SeqScan),
            scan(1, 1, AccessPath::SeqScan),
            keyrefs(),
        );
        let out = execute_plan(&db, &q, &p).unwrap();
        assert_eq!(out.metrics.rows_scanned, 20);
        // 10 (scan) + 10 (scan) + 10 (join) outputs.
        assert_eq!(out.metrics.rows_produced, 30);
        assert_eq!(out.metrics.peak_intermediate_rows, 10);
    }

    #[test]
    fn multi_key_joins_agree_across_algorithms() {
        // Two tables joined on BOTH columns: (k, v) pairs must match.
        let mut db = Database::new();
        for name in ["m0", "m1"] {
            db.add_table_with(|id| {
                let schema = TableSchema::new(vec![
                    ColumnDef::new("k", LogicalType::Int),
                    ColumnDef::new("v", LogicalType::Int),
                ])?;
                let mut t = Table::new(
                    id,
                    name,
                    schema,
                    vec![
                        Column::from_i64(LogicalType::Int, vec![1, 1, 2, 2, 3, NULL_SENTINEL]),
                        Column::from_i64(LogicalType::Int, vec![10, 20, 10, 20, 30, 30]),
                    ],
                )?;
                t.create_index(ColId::new(0))?;
                Ok(t)
            })
            .unwrap();
        }
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("m0").unwrap());
        let b = qb.add_relation(db.table_id("m1").unwrap());
        qb.add_join(ColRef::new(a, ColId::new(0)), ColRef::new(b, ColId::new(0)));
        qb.add_join(ColRef::new(a, ColId::new(1)), ColRef::new(b, ColId::new(1)));
        let q = qb.build();
        let keys = vec![
            (
                ColRef::new(RelId::new(0), ColId::new(0)),
                ColRef::new(RelId::new(1), ColId::new(0)),
            ),
            (
                ColRef::new(RelId::new(0), ColId::new(1)),
                ColRef::new(RelId::new(1), ColId::new(1)),
            ),
        ];
        // Expected: each of the five non-NULL rows matches exactly itself.
        let mut results = Vec::new();
        for algo in [
            JoinAlgo::Hash,
            JoinAlgo::Merge,
            JoinAlgo::NestedLoop,
            JoinAlgo::IndexNested,
        ] {
            let p = join(
                algo,
                scan(0, 0, AccessPath::SeqScan),
                scan(1, 1, AccessPath::SeqScan),
                keys.clone(),
            );
            let out = execute_plan(&db, &q, &p).unwrap();
            results.push((algo, out.join_rows));
        }
        for (algo, rows) in &results {
            assert_eq!(*rows, 5, "{algo:?}");
        }
    }

    #[test]
    fn multi_key_join_rejects_partial_matches() {
        // Keys match on k but not on v: zero output.
        let mut db = Database::new();
        for (name, v) in [("p0", 1i64), ("p1", 2i64)] {
            db.add_table_with(|id| {
                let schema = TableSchema::new(vec![
                    ColumnDef::new("k", LogicalType::Int),
                    ColumnDef::new("v", LogicalType::Int),
                ])?;
                let mut t = Table::new(
                    id,
                    name,
                    schema,
                    vec![
                        Column::from_i64(LogicalType::Int, vec![7, 8]),
                        Column::from_i64(LogicalType::Int, vec![v, v]),
                    ],
                )?;
                t.create_index(ColId::new(0))?;
                Ok(t)
            })
            .unwrap();
        }
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("p0").unwrap());
        let b = qb.add_relation(db.table_id("p1").unwrap());
        qb.add_join(ColRef::new(a, ColId::new(0)), ColRef::new(b, ColId::new(0)));
        qb.add_join(ColRef::new(a, ColId::new(1)), ColRef::new(b, ColId::new(1)));
        let q = qb.build();
        let keys = vec![
            (
                ColRef::new(RelId::new(0), ColId::new(0)),
                ColRef::new(RelId::new(1), ColId::new(0)),
            ),
            (
                ColRef::new(RelId::new(0), ColId::new(1)),
                ColRef::new(RelId::new(1), ColId::new(1)),
            ),
        ];
        for algo in [
            JoinAlgo::Hash,
            JoinAlgo::Merge,
            JoinAlgo::NestedLoop,
            JoinAlgo::IndexNested,
        ] {
            let p = join(
                algo,
                scan(0, 0, AccessPath::SeqScan),
                scan(1, 1, AccessPath::SeqScan),
                keys.clone(),
            );
            assert_eq!(execute_plan(&db, &q, &p).unwrap().join_rows, 0, "{algo:?}");
        }
    }

    #[test]
    fn dictionary_miss_matches_nothing() {
        let mut db = Database::new();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![ColumnDef::new("tag", LogicalType::Dict)])?;
            Table::new(id, "d", schema, vec![Column::from_strings(&["a", "b"])])
        })
        .unwrap();
        let mut qb = QueryBuilder::new();
        let r = qb.add_relation(db.table_id("d").unwrap());
        qb.add_predicate(Predicate::eq(r, ColId::new(0), "zzz"));
        let q = qb.build();
        let out = execute_plan(&db, &q, &scan(0, 0, AccessPath::SeqScan)).unwrap();
        assert_eq!(out.join_rows, 0);
    }
}
