//! Plan execution.
//!
//! # Columnar (batch-at-a-time) execution
//!
//! [`ExecOpts::columnar`] (default on; `REOPT_COLUMNAR=0` disables)
//! switches the hot operators from row-at-a-time to vectorized evaluation
//! over [`reopt_storage::batch::ColumnBatch`] windows: scan filters run
//! monomorphized comparison kernels over a selection vector ([`BATCH_SIZE`]
//! rows at a time, scratch buffers recycled through the thread-local
//! pool), hash joins counting-sort build rows into a bucket-packed table
//! (contiguous runs per bucket, zero per-key allocation) instead of a map
//! of per-key row vectors, and aggregation assigns group ids in one pass
//! then updates accumulators column-at-a-time. Results are **bit-identical
//! to the row engine**: selection vectors keep ascending row order, the
//! counting sort is stable so each bucket run iterates in ascending
//! build-row order (the map engine's insertion order), and per-group
//! accumulator updates happen in the same
//! ascending row order — so `RowSet`s, `node_cards`, Δ, trajectories and
//! float aggregates match bit for bit. Materialization back to [`RowSet`]
//! happens only at operator boundaries (the pipeline breakers), which is
//! exactly where `CheckpointStore`, `SubtreeCache` and the
//! observed-cardinality trace already live — their semantics are untouched.
//!
//! # Intra-query parallelism
//!
//! [`ExecOpts::threads`] turns on partition-parallel execution of the two
//! hot operators: sequential scans split the row space into contiguous
//! chunks (one `std::thread::scope` worker per chunk, outputs concatenated
//! in chunk order), and hash joins hash-partition both inputs on the join
//! key — per-partition build tables constructed in parallel, then the
//! probe side swept in contiguous chunk-parallel left-row order. Both
//! strategies are **bit-identical to serial execution**: every right row
//! with a given key lands in one partition, so each partition bucket
//! equals the serial bucket for that key, and concatenating probe-chunk
//! outputs in chunk order reproduces the serial `(left, right)` emission
//! sequence exactly — and with it the `RowSet` contents, `node_cards`
//! traces, and every downstream validated cardinality.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::agg::{aggregate_opts, AggOutput};
use crate::metrics::ExecMetrics;
use crate::rowset::RowSet;
use reopt_common::hash::FxHasher;
use reopt_common::{ColId, Error, FxHashMap, RelId, RelSet, Result};
use reopt_plan::query::ColRef;
use reopt_plan::{AccessPath, CmpOp, JoinAlgo, PhysicalPlan, Predicate, Query};
use reopt_storage::batch::{take_u32_buffer, ColumnBatch, BATCH_SIZE};
use reopt_storage::value::NULL_SENTINEL;
use reopt_storage::{Database, Table};
use reopt_telemetry::{names, Tracer};

/// Below this many input rows a scan or join runs serially even when
/// `threads > 1`: spawning workers costs more than the operator itself,
/// and since the parallel paths are bit-identical to serial, thresholding
/// cannot change any result.
const PARALLEL_MIN_ROWS: usize = 4096;

/// Executor limits and parallelism.
#[derive(Debug, Clone)]
pub struct ExecOpts {
    /// Abort when any single operator output exceeds this many rows —
    /// a safety valve against truly pathological plans (the OTT's bad plans
    /// are *meant* to be painful, but not to OOM the process). Enforced
    /// incrementally inside the join probe loops, not just on the
    /// materialized output, so a cross-product-ish join aborts before it
    /// allocates the result it is being capped against.
    pub max_intermediate_rows: u64,
    /// Worker threads for partition-parallel scans and hash joins.
    /// `0` (the default) resolves to the machine's available parallelism
    /// (overridable via the `REOPT_THREADS` environment variable); `1` is
    /// the fully serial executor. Results are bit-identical at every
    /// setting (see the module docs).
    pub threads: usize,
    /// Vectorized columnar execution of the hot operators (scan filters,
    /// hash-join build/probe, aggregation). `None` (the default) resolves
    /// via the `REOPT_COLUMNAR` environment variable — unset or anything
    /// but `0`/`false`/`off` means **on**; `Some(b)` forces it. Both
    /// engines are bit-identical (see the module docs), so the knob only
    /// moves wall-clock. Composes freely with [`ExecOpts::threads`].
    pub columnar: Option<bool>,
    /// Span recorder threaded through the operator recursion. The default
    /// (disabled) tracer is a true no-op — no clock reads, no allocation —
    /// and recording can never influence plan choice or row output, so the
    /// executor stays bit-identical with tracing on or off.
    pub tracer: Tracer,
}

impl Default for ExecOpts {
    fn default() -> Self {
        ExecOpts {
            max_intermediate_rows: 100_000_000,
            threads: 0,
            columnar: None,
            tracer: Tracer::disabled(),
        }
    }
}

impl ExecOpts {
    /// Default options pinned to one thread — yesterday's serial executor.
    pub fn serial() -> Self {
        ExecOpts {
            threads: 1,
            ..Default::default()
        }
    }

    /// Default options with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        ExecOpts {
            threads,
            ..Default::default()
        }
    }

    /// Default options with the columnar engine explicitly on or off.
    pub fn with_columnar(columnar: bool) -> Self {
        ExecOpts {
            columnar: Some(columnar),
            ..Default::default()
        }
    }

    /// The worker count this executor will actually use: `threads` if set,
    /// else `REOPT_THREADS`, else `std::thread::available_parallelism()`.
    pub fn effective_threads(&self) -> usize {
        if self.threads != 0 {
            return self.threads;
        }
        default_threads()
    }

    /// Whether this executor will run the columnar engine: `columnar` if
    /// set, else the `REOPT_COLUMNAR` environment default.
    pub fn effective_columnar(&self) -> bool {
        self.columnar.unwrap_or_else(default_columnar)
    }
}

/// The auto-resolved thread count used when [`ExecOpts::threads`] is 0:
/// the `REOPT_THREADS` environment variable if set and ≥ 1, otherwise the
/// machine's available parallelism (1 if that cannot be determined).
pub fn default_threads() -> usize {
    std::env::var("REOPT_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The auto-resolved columnar setting used when [`ExecOpts::columnar`] is
/// `None`: off when `REOPT_COLUMNAR` is `0`, `false`, or `off`
/// (case-insensitive), on otherwise — including when the variable is
/// unset.
pub fn default_columnar() -> bool {
    match std::env::var("REOPT_COLUMNAR") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "false" | "off"
        ),
        Err(_) => true,
    }
}

/// Result of [`Executor::run_traced`]: the join result plus the observed
/// cardinality of every plan node — what the sampling validator reads off
/// a "dry run" over the sample tables.
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// Final join result.
    pub rows: RowSet,
    /// (relation set, output rows) for every node, post-order. For cached
    /// subtrees the recorded (not re-executed) cardinalities are spliced
    /// in, so the trace is identical to an uncached run's.
    pub node_cards: Vec<(RelSet, u64)>,
    /// Execution counters (cache hits produce no scan/probe/output work).
    pub metrics: ExecMetrics,
}

/// A cross-run store of executed subtree results, consulted by
/// [`Executor::run_traced_cached`].
///
/// The executor asks the cache for a *canonical fingerprint* of each plan
/// node (the implementor decides what "same subtree" means — e.g. relation
/// set + applied predicates + join keys, independent of join order and
/// physical operators). On a `lookup` hit the node's own work (scan or
/// join matching) is skipped and the stored row set stands in; the node's
/// children are still traversed so the run's cardinality trace follows the
/// *current* plan's structure — a canonical hit may come from a
/// differently shaped subtree of an earlier run, whose internal
/// decomposition must not leak into this run's trace.
pub trait SubtreeCache {
    /// Canonical fingerprint for `plan`; `None` exempts the node (and only
    /// the node — its children are still offered) from caching. The
    /// covered relation set is passed alongside the fingerprint on every
    /// lookup/store, so implementations can key on `(set, fingerprint)`
    /// and rule out cross-set hash collisions structurally.
    fn fingerprint(&mut self, query: &Query, plan: &PhysicalPlan) -> Option<u64>;

    /// The cached output rows for `(set, fp)`, if any.
    fn lookup(&mut self, set: RelSet, fp: u64) -> Option<RowSet>;

    /// Cardinality-only lookup: the cached row *count* for `(set, fp)`,
    /// without materializing the rows. Used for trace entries under an
    /// ancestor that already hit, where the rows are never consumed.
    fn peek_rows(&mut self, set: RelSet, fp: u64) -> Option<u64> {
        self.lookup(set, fp).map(|r| r.len() as u64)
    }

    /// Record a freshly executed node's output rows.
    fn store(&mut self, set: RelSet, fp: u64, rows: &RowSet);
}

/// Result of running a full query.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Cardinality of the join result (before aggregation).
    pub join_rows: u64,
    /// Aggregate output, when the query has an aggregate stage.
    pub agg: Option<AggOutput>,
    /// Execution counters.
    pub metrics: ExecMetrics,
}

/// A plan executor bound to a database.
#[derive(Debug)]
pub struct Executor<'a> {
    db: &'a Database,
    opts: ExecOpts,
    /// [`ExecOpts::effective_threads`] resolved once at construction —
    /// the auto setting reads an environment variable, which must not
    /// land on the per-operator hot path.
    threads: usize,
    /// [`ExecOpts::effective_columnar`] resolved once at construction,
    /// for the same reason.
    columnar: bool,
}

/// Convenience: execute `plan` for `query` against `db` with default options.
pub fn execute_plan(db: &Database, query: &Query, plan: &PhysicalPlan) -> Result<QueryOutput> {
    Executor::new(db).run(query, plan)
}

/// Convenience: execute and return only the join cardinality.
pub fn execute_query(db: &Database, query: &Query, plan: &PhysicalPlan) -> Result<u64> {
    Ok(execute_plan(db, query, plan)?.join_rows)
}

impl<'a> Executor<'a> {
    /// Executor with default options.
    pub fn new(db: &'a Database) -> Self {
        Self::with_opts(db, ExecOpts::default())
    }

    /// Executor with explicit options.
    pub fn with_opts(db: &'a Database, opts: ExecOpts) -> Self {
        let threads = opts.effective_threads();
        let columnar = opts.effective_columnar();
        Executor {
            db,
            opts,
            threads,
            columnar,
        }
    }

    /// Execute the full query: join pipeline plus optional aggregation.
    pub fn run(&self, query: &Query, plan: &PhysicalPlan) -> Result<QueryOutput> {
        let start = reopt_common::Stopwatch::start();
        let mut state = ExecState::new(false, self.opts.tracer.clone());
        let rows = self.exec_node(query, plan, &mut state)?;
        let agg = match &query.aggregate {
            Some(spec) => {
                let mut span = self.opts.tracer.span(names::EXEC_AGGREGATE);
                let agg = aggregate_opts(
                    self.db,
                    query,
                    &rows,
                    spec,
                    self.columnar,
                    &mut state.metrics,
                )?;
                span.attr_u64("groups", agg.num_groups() as u64);
                Some(agg)
            }
            None => None,
        };
        state.metrics.elapsed = start.elapsed();
        Ok(QueryOutput {
            join_rows: rows.len() as u64,
            agg,
            metrics: state.metrics,
        })
    }

    /// Execute the join pipeline only, returning the row set.
    pub fn run_rowset(&self, query: &Query, plan: &PhysicalPlan) -> Result<(RowSet, ExecMetrics)> {
        let start = reopt_common::Stopwatch::start();
        let mut state = ExecState::new(false, self.opts.tracer.clone());
        let rows = self.exec_node(query, plan, &mut state)?;
        state.metrics.elapsed = start.elapsed();
        Ok((rows, state.metrics))
    }

    /// Execute the join pipeline and record every node's output
    /// cardinality — the sampling validator's entry point.
    pub fn run_traced(&self, query: &Query, plan: &PhysicalPlan) -> Result<TracedRun> {
        let start = reopt_common::Stopwatch::start();
        let mut state = ExecState::new(true, self.opts.tracer.clone());
        let rows = self.exec_node(query, plan, &mut state)?;
        state.metrics.elapsed = start.elapsed();
        Ok(TracedRun {
            rows,
            node_cards: state.trace,
            metrics: state.metrics,
        })
    }

    /// Like [`Executor::run_traced`], but skipping every subtree the
    /// `cache` already holds — the incremental dry-run of cross-round
    /// re-optimization. Freshly executed subtrees are stored back, so
    /// successive runs over structurally overlapping plans only pay for
    /// what changed.
    pub fn run_traced_cached(
        &self,
        query: &Query,
        plan: &PhysicalPlan,
        cache: &mut dyn SubtreeCache,
    ) -> Result<TracedRun> {
        let start = reopt_common::Stopwatch::start();
        let mut state = ExecState::new(true, self.opts.tracer.clone());
        state.cache = Some(cache);
        let rows = self.exec_node(query, plan, &mut state)?;
        state.metrics.elapsed = start.elapsed();
        Ok(TracedRun {
            rows,
            node_cards: state.trace,
            metrics: state.metrics,
        })
    }

    fn check_cap(&self, rows: u64) -> Result<()> {
        if rows > self.opts.max_intermediate_rows {
            return Err(Error::invalid(format!(
                "intermediate result of {rows} rows exceeds cap {}",
                self.opts.max_intermediate_rows
            )));
        }
        Ok(())
    }

    fn exec_node(
        &self,
        query: &Query,
        plan: &PhysicalPlan,
        state: &mut ExecState<'_>,
    ) -> Result<RowSet> {
        self.exec_node_inner(query, plan, state, true)?
            .ok_or_else(|| Error::internal("executor produced no rows for a rows-requested node"))
    }

    /// Operator recursion. `need_rows: false` means the caller only wants
    /// this subtree's trace entries (its own result sits in an ancestor's
    /// cache hit) — a cached node can then answer with a row *count* and
    /// skip materializing anything.
    fn exec_node_inner(
        &self,
        query: &Query,
        plan: &PhysicalPlan,
        state: &mut ExecState<'_>,
        need_rows: bool,
    ) -> Result<Option<RowSet>> {
        // One span per operator. With a disabled tracer all of this is
        // branch-on-None and costs nothing; recording re-parents
        // `state.tracer` so child operators nest under this span (restored
        // at both successful exits; error paths abort the whole run).
        let mut span = state.tracer.span(names::EXEC_OPERATOR);
        if span.is_recording() {
            span.attr_str("op", op_label(plan));
            span.attr_u64("node", plan.relset().mask());
            span.attr_display("rels", &plan.relset());
        }
        let child = state.tracer.under(&span);
        let saved = std::mem::replace(&mut state.tracer, child);
        // Cached dry-run (only via `run_traced_cached`): a canonical-
        // fingerprint hit replaces this node's own scan/join work with the
        // stored rows. Children are *still* traversed — their (possibly
        // cached) results feed the trace in current-plan order, which a
        // hit from a differently shaped earlier subtree cannot provide.
        let fp = match state.cache.as_mut() {
            Some(c) => c.fingerprint(query, plan),
            None => None,
        };
        if let Some(fp) = fp {
            let set = plan.relset();
            // `fp` can only be Some when a cache is bound; losing it here
            // would be an executor bug, which must surface as a structured
            // error rather than a hot-path panic.
            let cache = state.cache.as_mut().ok_or_else(cache_vanished)?;
            let hit = if need_rows {
                cache.lookup(set, fp).map(|r| (r.len() as u64, Some(r)))
            } else {
                cache.peek_rows(set, fp).map(|n| (n, None))
            };
            if let Some((count, rows)) = hit {
                if let PhysicalPlan::Join {
                    algo, left, right, ..
                } = plan
                {
                    self.exec_node_inner(query, left, state, false)?;
                    // The index-nested inner is probed, never planned as a
                    // standalone node; it has no trace entry to produce.
                    if *algo != JoinAlgo::IndexNested {
                        self.exec_node_inner(query, right, state, false)?;
                    }
                }
                if state.tracing {
                    state.trace.push((plan.relset(), count));
                }
                // A replayed result must respect *this* run's cap, which
                // may be tighter than the one in force when it was stored.
                self.check_cap(count)?;
                if span.is_recording() {
                    span.attr_bool("cache_hit", true);
                    span.attr_u64("rows", count);
                }
                state.tracer = saved;
                return Ok(rows);
            }
        }
        let out = match plan {
            PhysicalPlan::Scan {
                rel, table, access, ..
            } => self.exec_scan(query, *rel, *table, *access, &mut state.metrics)?,
            PhysicalPlan::Join {
                algo,
                left,
                right,
                keys,
                ..
            } => match algo {
                JoinAlgo::IndexNested => {
                    let outer = self.exec_node(query, left, state)?;
                    self.exec_index_nested(query, &outer, right, keys, &mut state.metrics)?
                }
                _ => {
                    let l = self.exec_node(query, left, state)?;
                    let r = self.exec_node(query, right, state)?;
                    match algo {
                        JoinAlgo::Hash => {
                            self.exec_hash_join(query, &l, &r, keys, &mut state.metrics)?
                        }
                        JoinAlgo::Merge => self.exec_merge_join(query, &l, &r, keys)?,
                        JoinAlgo::NestedLoop => self.exec_nested_loop(query, &l, &r, keys)?,
                        JoinAlgo::IndexNested => {
                            // Handled by the arm above when well-formed; a
                            // plan that lands here is malformed (e.g. a
                            // future transformation emitted an index-nested
                            // join in a generic position) and must fail the
                            // query, not panic the process — in a serving
                            // context a panicked leader burns every
                            // coalesced session on its flight.
                            return Err(Error::internal(
                                "index-nested-loop join reached the generic join path; \
                                 the physical plan is malformed",
                            ));
                        }
                    }
                }
            },
        };
        state.metrics.record_output(out.len() as u64);
        if state.tracing {
            state.trace.push((plan.relset(), out.len() as u64));
        }
        self.check_cap(out.len() as u64)?;
        if let Some(fp) = fp {
            let cache = state.cache.as_mut().ok_or_else(cache_vanished)?;
            cache.store(plan.relset(), fp, &out);
        }
        if span.is_recording() {
            span.attr_u64("rows", out.len() as u64);
            span.attr_u64("batches", state.metrics.batches_processed);
        }
        state.tracer = saved;
        Ok(Some(out))
    }

    fn exec_scan(
        &self,
        query: &Query,
        rel: RelId,
        table_id: reopt_common::TableId,
        access: AccessPath,
        metrics: &mut ExecMetrics,
    ) -> Result<RowSet> {
        let table = self.db.table(table_id)?;
        let preds = query.local_predicates(rel);
        let compiled = compile_predicates(table, preds)?;

        let rows: Vec<u32> = match access {
            AccessPath::SeqScan => {
                let n = table.row_count();
                let threads = self.threads;
                if threads > 1 && n >= PARALLEL_MIN_ROWS {
                    self.parallel_seq_scan(n as u32, &compiled, threads, metrics)?
                } else {
                    metrics.rows_scanned += n as u64;
                    let mut out = Vec::new();
                    if self.columnar {
                        columnar_filter_range(&compiled, 0, n as u32, &mut out, metrics);
                    } else {
                        'rows: for row in 0..n as u32 {
                            for p in &compiled {
                                if !p.matches(row) {
                                    continue 'rows;
                                }
                            }
                            out.push(row);
                        }
                    }
                    out
                }
            }
            AccessPath::IndexScan { col } => {
                // Find the driving equality predicate on `col`.
                let driver = compiled
                    .iter()
                    .position(|p| p.col == col && p.op == CmpOp::Eq)
                    .ok_or_else(|| {
                        Error::internal(format!(
                            "index scan on {rel}.{col} without an equality predicate"
                        ))
                    })?;
                let index = table.index(col).ok_or_else(|| {
                    Error::internal(format!("index scan on unindexed column {col}"))
                })?;
                metrics.index_probes += 1;
                let candidates: &[u32] = match compiled[driver].c1 {
                    Some(v) => index.probe(v),
                    None => &[], // constant absent from dictionary
                };
                let mut out = Vec::with_capacity(candidates.len());
                'cand: for &row in candidates {
                    for (i, p) in compiled.iter().enumerate() {
                        if i != driver && !p.matches(row) {
                            continue 'cand;
                        }
                    }
                    out.push(row);
                }
                out
            }
        };
        Ok(RowSet::single(rel, rows))
    }

    /// Gather the raw key values for `key` columns over a row set.
    fn gather_keys(&self, query: &Query, rows: &RowSet, cols: &[ColRef]) -> Result<Vec<Vec<i64>>> {
        let mut out = Vec::with_capacity(cols.len());
        for c in cols {
            let table = self.db.table(query.table_of(c.rel)?)?;
            let data = table.column(c.col)?.data();
            let ids = rows.rowids(c.rel)?;
            out.push(ids.iter().map(|&r| data[r as usize]).collect());
        }
        Ok(out)
    }

    fn split_keys(keys: &[(ColRef, ColRef)], left: &RowSet) -> (Vec<ColRef>, Vec<ColRef>) {
        // Plan keys are (left-input column, right-input column) by
        // construction, but be robust to orientation.
        let lset = left.relset();
        let mut lcols = Vec::with_capacity(keys.len());
        let mut rcols = Vec::with_capacity(keys.len());
        for (a, b) in keys {
            if lset.contains(a.rel) {
                lcols.push(*a);
                rcols.push(*b);
            } else {
                lcols.push(*b);
                rcols.push(*a);
            }
        }
        (lcols, rcols)
    }

    fn exec_hash_join(
        &self,
        query: &Query,
        left: &RowSet,
        right: &RowSet,
        keys: &[(ColRef, ColRef)],
        metrics: &mut ExecMetrics,
    ) -> Result<RowSet> {
        if keys.is_empty() {
            return self.exec_nested_loop(query, left, right, keys);
        }
        let (lcols, rcols) = Self::split_keys(keys, left);
        let lkeys = self.gather_keys(query, left, &lcols)?;
        let rkeys = self.gather_keys(query, right, &rcols)?;

        let threads = self.threads;
        let pairs = if threads > 1 && left.len() + right.len() >= PARALLEL_MIN_ROWS {
            self.hash_join_partitioned(&lkeys, &rkeys, threads, metrics)?
        } else if self.columnar {
            self.hash_join_packed(&lkeys, &rkeys, metrics)?
        } else {
            self.hash_join_serial(&lkeys, &rkeys)?
        };
        RowSet::combine(left, right, &pairs)
    }

    /// Columnar serial hash join: one [`PackedTable`] over the build side
    /// (no per-key row vectors, no per-row allocation), probed in
    /// ascending left-row order. Bucket runs iterate in ascending
    /// build-row order, so the emitted pair sequence is identical to
    /// [`Executor::hash_join_serial`]'s.
    fn hash_join_packed(
        &self,
        lkeys: &[Vec<i64>],
        rkeys: &[Vec<i64>],
        metrics: &mut ExecMetrics,
    ) -> Result<Vec<(u32, u32)>> {
        let cap = self.opts.max_intermediate_rows;
        let table = PackedTable::build(rkeys, None);
        let n = lkeys.first().map_or(0, Vec::len);
        metrics.batches_processed += (n as u64).div_ceil(BATCH_SIZE as u64);
        metrics.batch_rows += n as u64;
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for i in 0..n {
            if table.probe_into(lkeys, i, &mut pairs) > 0 {
                check_probe_cap(pairs.len() as u64, cap)?;
            }
        }
        Ok(pairs)
    }

    /// Serial build + probe; emits pairs in ascending `(left, right)`
    /// lexicographic order. The intermediate-row cap is checked after each
    /// probe row's emissions — overshoot is bounded by one bucket, which is
    /// at most `right.len()` and therefore itself already under the cap.
    fn hash_join_serial(&self, lkeys: &[Vec<i64>], rkeys: &[Vec<i64>]) -> Result<Vec<(u32, u32)>> {
        let cap = self.opts.max_intermediate_rows;
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        if lkeys.len() == 1 {
            // Fast path: single i64 key.
            let mut table: FxHashMap<i64, Vec<u32>> = FxHashMap::default();
            for (j, &v) in rkeys[0].iter().enumerate() {
                if v != NULL_SENTINEL {
                    table.entry(v).or_default().push(j as u32);
                }
            }
            for (i, &v) in lkeys[0].iter().enumerate() {
                if v == NULL_SENTINEL {
                    continue;
                }
                if let Some(matches) = table.get(&v) {
                    for &j in matches {
                        pairs.push((i as u32, j));
                    }
                    check_probe_cap(pairs.len() as u64, cap)?;
                }
            }
        } else {
            let mut table: FxHashMap<Vec<i64>, Vec<u32>> = FxHashMap::default();
            'rrows: for j in 0..rkeys[0].len() {
                let mut k = Vec::with_capacity(rkeys.len());
                for col in rkeys {
                    if col[j] == NULL_SENTINEL {
                        continue 'rrows;
                    }
                    k.push(col[j]);
                }
                table.entry(k).or_default().push(j as u32);
            }
            'lrows: for i in 0..lkeys[0].len() {
                let mut k = Vec::with_capacity(lkeys.len());
                for col in lkeys {
                    if col[i] == NULL_SENTINEL {
                        continue 'lrows;
                    }
                    k.push(col[i]);
                }
                if let Some(matches) = table.get(&k) {
                    for &j in matches {
                        pairs.push((i as u32, j));
                    }
                    check_probe_cap(pairs.len() as u64, cap)?;
                }
            }
        }
        Ok(pairs)
    }

    /// Partitioned parallel hash join, two phases:
    ///
    /// 1. **Build** — the right input is hash-partitioned on the join key;
    ///    worker `p` builds the hash table of the rows that hash to `p`,
    ///    scanning them in ascending row order. Every right row with a
    ///    given key lands in the same partition, so each bucket is
    ///    *identical* to the serial build's bucket for that key.
    /// 2. **Probe** — the left input is split into contiguous chunks, one
    ///    worker each; every row routes to its key's partition table (the
    ///    same hash) and emits matches in bucket order.
    ///
    /// Concatenating the chunk outputs in chunk order therefore reproduces
    /// the serial probe's `(left, right)` emission sequence exactly — no
    /// sort, no tie-breaking, bit-identical results.
    ///
    /// The intermediate-row cap is enforced *while probing* through a
    /// shared atomic emission counter, so a cross-product-ish join aborts
    /// long before its output materializes.
    fn hash_join_partitioned(
        &self,
        lkeys: &[Vec<i64>],
        rkeys: &[Vec<i64>],
        threads: usize,
        metrics: &mut ExecMetrics,
    ) -> Result<Vec<(u32, u32)>> {
        let cap = self.opts.max_intermediate_rows;
        let parts = threads as u64;
        let lpart = partition_assignment(lkeys, parts);
        let rpart = partition_assignment(rkeys, parts);

        // Bucket the build side once — O(|R|) total, ascending row order
        // within each bucket — so each build worker touches only its own
        // partition's rows instead of filtering the whole input.
        let mut rbuckets: Vec<Vec<u32>> = vec![Vec::new(); threads];
        for (j, &part) in rpart.iter().enumerate() {
            if part != NO_PARTITION {
                rbuckets[part as usize].push(j as u32);
            }
        }

        // Phase 1: per-partition build, one worker per partition.
        let columnar = self.columnar;
        let tables: Vec<PartitionTable<'_>> = std::thread::scope(|s| {
            let handles: Vec<_> = rbuckets
                .iter()
                .map(|bucket| {
                    s.spawn(move || {
                        if columnar {
                            // The bucket lists ascending right rows, so a
                            // packed table over it probes in the same
                            // order as the map-based builds below.
                            PartitionTable::Packed(PackedTable::build(rkeys, Some(bucket)))
                        } else if lkeys.len() == 1 {
                            let mut t: FxHashMap<i64, Vec<u32>> = FxHashMap::default();
                            for &j in bucket {
                                t.entry(rkeys[0][j as usize]).or_default().push(j);
                            }
                            PartitionTable::Single(t)
                        } else {
                            let mut t: FxHashMap<Vec<i64>, Vec<u32>> = FxHashMap::default();
                            for &j in bucket {
                                let k = rkeys
                                    .iter()
                                    .map(|col| col[j as usize])
                                    .collect::<Vec<i64>>();
                                t.entry(k).or_default().push(j);
                            }
                            PartitionTable::Multi(t)
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .map_err(|_| Error::internal("parallel join build worker panicked"))
                })
                .collect::<Result<Vec<_>>>()
        })?;

        // Phase 2: chunk-parallel probe in left-row order.
        let emitted = AtomicU64::new(0);
        let n = lpart.len();
        let chunk = n.div_ceil(threads).max(1);
        let chunks: Vec<(Vec<(u32, u32)>, ExecMetrics)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .step_by(chunk)
                .map(|start| {
                    let end = (start + chunk).min(n);
                    let (tables, lpart, emitted) = (&tables, &lpart, &emitted);
                    s.spawn(move || -> Result<(Vec<(u32, u32)>, ExecMetrics)> {
                        let mut local = ExecMetrics {
                            parallel_workers: 1,
                            ..Default::default()
                        };
                        if columnar {
                            local.batches_processed +=
                                ((end - start) as u64).div_ceil(BATCH_SIZE as u64);
                            local.batch_rows += (end - start) as u64;
                        }
                        let mut pairs: Vec<(u32, u32)> = Vec::new();
                        let mut key = Vec::with_capacity(lkeys.len());
                        for i in start..end {
                            let p = lpart[i];
                            if p == NO_PARTITION {
                                continue;
                            }
                            let emitted_here = match &tables[p as usize] {
                                PartitionTable::Packed(t) => t.probe_into(lkeys, i, &mut pairs),
                                PartitionTable::Single(t) => match t.get(&lkeys[0][i]) {
                                    Some(matches) => {
                                        for &j in matches {
                                            pairs.push((i as u32, j));
                                        }
                                        matches.len() as u64
                                    }
                                    None => 0,
                                },
                                PartitionTable::Multi(t) => {
                                    key.clear();
                                    key.extend(lkeys.iter().map(|col| col[i]));
                                    match t.get(&key) {
                                        Some(matches) => {
                                            for &j in matches {
                                                pairs.push((i as u32, j));
                                            }
                                            matches.len() as u64
                                        }
                                        None => 0,
                                    }
                                }
                            };
                            if emitted_here > 0 {
                                // lint: relaxed-ok(fetch_add RMWs on one atomic are totally ordered, so the running total is exact regardless of interleaving; the cap check needs only the count, no other memory)
                                let total = emitted.fetch_add(emitted_here, Ordering::Relaxed)
                                    + emitted_here;
                                check_probe_cap(total, cap)?;
                            }
                        }
                        Ok((pairs, local))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(join_worker)
                .collect::<Result<Vec<_>>>()
        })?;

        metrics.parallel_ops += 1;
        metrics.parallel_workers += threads as u64; // build workers
        let mut pairs: Vec<(u32, u32)> =
            Vec::with_capacity(chunks.iter().map(|(c, _)| c.len()).sum());
        for (part, local) in &chunks {
            // Chunk order = ascending left row = serial emission order.
            // The worker counters are all sums, so this fold is
            // associative and order-blind.
            metrics.merge_worker(local);
            pairs.extend_from_slice(part);
        }
        Ok(pairs)
    }

    /// Partition-parallel sequential scan: contiguous row chunks, one
    /// worker each, outputs concatenated in chunk order — identical to the
    /// serial scan's ascending row order.
    fn parallel_seq_scan(
        &self,
        n: u32,
        compiled: &[CompiledPred<'_>],
        threads: usize,
        metrics: &mut ExecMetrics,
    ) -> Result<Vec<u32>> {
        let chunk = (n as usize).div_ceil(threads).max(1);
        let columnar = self.columnar;
        let results: Vec<(Vec<u32>, ExecMetrics)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n as usize)
                .step_by(chunk)
                .map(|start| {
                    let end = (start + chunk).min(n as usize);
                    s.spawn(move || {
                        let mut local = ExecMetrics {
                            rows_scanned: (end - start) as u64,
                            parallel_workers: 1,
                            ..Default::default()
                        };
                        let mut out = Vec::new();
                        if columnar {
                            columnar_filter_range(
                                compiled,
                                start as u32,
                                end as u32,
                                &mut out,
                                &mut local,
                            );
                        } else {
                            'rows: for row in start as u32..end as u32 {
                                for p in compiled {
                                    if !p.matches(row) {
                                        continue 'rows;
                                    }
                                }
                                out.push(row);
                            }
                        }
                        (out, local)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .map_err(|_| Error::internal("parallel scan worker panicked"))
                })
                .collect::<Result<Vec<_>>>()
        })?;
        metrics.parallel_ops += 1;
        let mut rows = Vec::new();
        for (part, local) in &results {
            metrics.merge_worker(local);
            rows.extend_from_slice(part);
        }
        Ok(rows)
    }

    fn exec_merge_join(
        &self,
        query: &Query,
        left: &RowSet,
        right: &RowSet,
        keys: &[(ColRef, ColRef)],
    ) -> Result<RowSet> {
        if keys.is_empty() {
            return self.exec_nested_loop(query, left, right, keys);
        }
        let cap = self.opts.max_intermediate_rows;
        let (lcols, rcols) = Self::split_keys(keys, left);
        let lkeys = self.gather_keys(query, left, &lcols)?;
        let rkeys = self.gather_keys(query, right, &rcols)?;

        let key_at =
            |cols: &[Vec<i64>], i: usize| -> Vec<i64> { cols.iter().map(|c| c[i]).collect() };
        let non_null = |cols: &[Vec<i64>], i: usize| cols.iter().all(|c| c[i] != NULL_SENTINEL);

        let mut lidx: Vec<u32> = (0..left.len() as u32)
            .filter(|&i| non_null(&lkeys, i as usize))
            .collect();
        let mut ridx: Vec<u32> = (0..right.len() as u32)
            .filter(|&j| non_null(&rkeys, j as usize))
            .collect();
        lidx.sort_by_key(|&i| key_at(&lkeys, i as usize));
        ridx.sort_by_key(|&j| key_at(&rkeys, j as usize));

        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < lidx.len() && j < ridx.len() {
            let lk = key_at(&lkeys, lidx[i] as usize);
            let rk = key_at(&rkeys, ridx[j] as usize);
            match lk.cmp(&rk) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Extent of the equal runs on both sides. Plain
                    // bounded walks: no iterator-`last()` to unwrap, and
                    // correct when a run touches the end of its input.
                    let mut i_end = i + 1;
                    while i_end < lidx.len() && key_at(&lkeys, lidx[i_end] as usize) == lk {
                        i_end += 1;
                    }
                    let mut j_end = j + 1;
                    while j_end < ridx.len() && key_at(&rkeys, ridx[j_end] as usize) == rk {
                        j_end += 1;
                    }
                    // An equal-run cross product can blow up on its own
                    // (every key identical ⇒ |L|×|R| pairs): enforce the
                    // cap per emission, not after the run completes.
                    for &li in &lidx[i..i_end] {
                        for &rj in &ridx[j..j_end] {
                            pairs.push((li, rj));
                            check_probe_cap(pairs.len() as u64, cap)?;
                        }
                    }
                    i = i_end;
                    j = j_end;
                }
            }
        }
        RowSet::combine(left, right, &pairs)
    }

    fn exec_nested_loop(
        &self,
        query: &Query,
        left: &RowSet,
        right: &RowSet,
        keys: &[(ColRef, ColRef)],
    ) -> Result<RowSet> {
        let cap = self.opts.max_intermediate_rows;
        let (lcols, rcols) = Self::split_keys(keys, left);
        let lkeys = self.gather_keys(query, left, &lcols)?;
        let rkeys = self.gather_keys(query, right, &rcols)?;
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for i in 0..left.len() {
            'inner: for j in 0..right.len() {
                for (lc, rc) in lkeys.iter().zip(&rkeys) {
                    let (a, b) = (lc[i], rc[j]);
                    if a == NULL_SENTINEL || b == NULL_SENTINEL || a != b {
                        continue 'inner;
                    }
                }
                // A keyless (or all-equal) nested loop is the textbook
                // cross product: cap every emission, or the cap arrives
                // only after the blow-up it exists to prevent.
                pairs.push((i as u32, j as u32));
                check_probe_cap(pairs.len() as u64, cap)?;
            }
        }
        RowSet::combine(left, right, &pairs)
    }

    fn exec_index_nested(
        &self,
        query: &Query,
        outer: &RowSet,
        inner_plan: &PhysicalPlan,
        keys: &[(ColRef, ColRef)],
        metrics: &mut ExecMetrics,
    ) -> Result<RowSet> {
        let PhysicalPlan::Scan {
            rel: inner_rel,
            table: inner_table,
            ..
        } = inner_plan
        else {
            return Err(Error::internal(
                "index nested loop join requires a base-table scan inner",
            ));
        };
        if keys.is_empty() {
            return Err(Error::internal("index nested loop join without keys"));
        }
        let table = self.db.table(*inner_table)?;
        let compiled = compile_predicates(table, query.local_predicates(*inner_rel))?;

        // Orient keys: outer side vs inner side.
        let mut outer_cols = Vec::new();
        let mut inner_cols = Vec::new();
        for (a, b) in keys {
            if a.rel == *inner_rel {
                inner_cols.push(*a);
                outer_cols.push(*b);
            } else {
                inner_cols.push(*b);
                outer_cols.push(*a);
            }
        }
        // The first key drives the index probe; the rest are residuals.
        let probe_col = inner_cols[0].col;
        let index = table.index(probe_col).ok_or_else(|| {
            Error::internal(format!(
                "index nested loop join: column {probe_col} of table `{}` is not indexed",
                table.name()
            ))
        })?;

        let outer_keys = self.gather_keys(query, outer, &outer_cols)?;
        let inner_residual_cols: Vec<&[i64]> = inner_cols
            .iter()
            .skip(1)
            .map(|c| table.column(c.col).map(|col| col.data()))
            .collect::<Result<_>>()?;

        let cap = self.opts.max_intermediate_rows;
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut inner_rows: Vec<u32> = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for i in 0..outer.len() {
            let probe = outer_keys[0][i];
            if probe == NULL_SENTINEL {
                continue;
            }
            metrics.index_probes += 1;
            'cand: for &row in index.probe(probe) {
                // Residual key equalities.
                for (k, col) in inner_residual_cols.iter().enumerate() {
                    let ov = outer_keys[k + 1][i];
                    let iv = col[row as usize];
                    if ov == NULL_SENTINEL || iv == NULL_SENTINEL || ov != iv {
                        continue 'cand;
                    }
                }
                // Inner local predicates.
                for p in &compiled {
                    if !p.matches(row) {
                        continue 'cand;
                    }
                }
                pairs.push((i as u32, inner_rows.len() as u32));
                inner_rows.push(row);
                // Per-emission, not per-outer-row: unlike the other joins
                // the inner side here is a raw base table, so one outer
                // row's index bucket is unbounded by any prior cap check.
                check_probe_cap(pairs.len() as u64, cap)?;
            }
        }
        let inner_set = RowSet::single(*inner_rel, inner_rows);
        RowSet::combine(outer, &inner_set, &pairs)
    }
}

/// Incremental intermediate-row cap check, shared by every join's probe
/// loop (serial and parallel). The message deliberately carries no running
/// count: the exact abort point depends on worker interleaving, and the
/// error must be identical at every thread count.
#[inline]
fn check_probe_cap(emitted: u64, cap: u64) -> Result<()> {
    if emitted > cap {
        return Err(Error::invalid(format!(
            "join output exceeds intermediate row cap {cap}; aborted during probe"
        )));
    }
    Ok(())
}

/// One partition's build-side hash table: a [`PackedTable`] under the
/// columnar engine, a map specialized for the hot single-i64-key case
/// under the row engine.
enum PartitionTable<'a> {
    Packed(PackedTable<'a>),
    Single(FxHashMap<i64, Vec<u32>>),
    Multi(FxHashMap<Vec<i64>, Vec<u32>>),
}

/// The columnar engine's build-side hash table: build positions
/// counting-sorted by key bucket into one contiguous `order` array
/// (`starts[b]..starts[b+1]` is bucket `b`'s run). No per-key `Vec`, no
/// allocation past three flat arrays, and a probe walks a contiguous run
/// instead of chasing chain links — which matters exactly when keys have
/// high multiplicity (the M^k join blow-ups).
///
/// The counting sort is stable over ascending positions, so every run
/// iterates in ascending build-row order — the emission order of the row
/// engine's map (which pushes rows into per-key vectors in ascending scan
/// order). That makes packed probes bit-identical to map probes, serial
/// and partitioned alike.
struct PackedTable<'a> {
    /// Gathered build-side key columns (all rows, not just this table's).
    keys: &'a [Vec<i64>],
    /// The build rows this table holds, ascending; `None` means all rows
    /// `0..n` (the serial, unpartitioned case).
    rows: Option<&'a [u32]>,
    /// Bucket run boundaries: bucket `b` owns `order[starts[b]..starts[b+1]]`.
    starts: Vec<u32>,
    /// Build positions grouped by bucket, ascending within each run.
    order: Vec<u32>,
    mask: u64,
}

/// Bucket marker for NULL keys, which never join.
const NO_BUCKET: u32 = u32::MAX;

impl<'a> PackedTable<'a> {
    fn build(keys: &'a [Vec<i64>], rows: Option<&'a [u32]>) -> Self {
        let n = rows.map_or_else(|| keys.first().map_or(0, Vec::len), <[u32]>::len);
        let buckets = (n.max(1) * 2).next_power_of_two();
        let mask = buckets as u64 - 1;
        let mut bucket_of = vec![NO_BUCKET; n];
        let mut starts = vec![0u32; buckets + 1];
        for pos in 0..n {
            let row = rows.map_or(pos as u32, |r| r[pos]);
            if let Some(b) = key_bucket(keys, row as usize, mask) {
                bucket_of[pos] = b as u32;
                starts[b + 1] += 1;
            }
        }
        for b in 0..buckets {
            starts[b + 1] += starts[b];
        }
        let mut cursor = starts.clone();
        let mut order = vec![0u32; starts[buckets] as usize];
        for (pos, &b) in bucket_of.iter().enumerate() {
            if b != NO_BUCKET {
                let c = &mut cursor[b as usize];
                order[*c as usize] = pos as u32;
                *c += 1;
            }
        }
        PackedTable {
            keys,
            rows,
            starts,
            order,
            mask,
        }
    }

    /// The bucket run for bucket `b`.
    #[inline]
    fn run(&self, b: usize) -> &[u32] {
        &self.order[self.starts[b] as usize..self.starts[b + 1] as usize]
    }

    /// Emit `(i, j)` for every build row `j` whose key equals probe row
    /// `i`'s, in ascending `j` order; returns the number of pairs emitted.
    #[inline]
    fn probe_into(&self, lkeys: &[Vec<i64>], i: usize, pairs: &mut Vec<(u32, u32)>) -> u64 {
        // Single-key equi-joins dominate: skip the per-column hash fold
        // and the per-entry column iteration.
        if let ([bkey], [lcol]) = (self.keys, lkeys) {
            let lk = lcol[i];
            if lk == NULL_SENTINEL {
                return 0;
            }
            let mut h = FxHasher::default();
            std::hash::Hasher::write_i64(&mut h, lk);
            let b = (std::hash::Hasher::finish(&h) & self.mask) as usize;
            let mut emitted = 0u64;
            match self.rows {
                None => {
                    for &j in self.run(b) {
                        if bkey[j as usize] == lk {
                            pairs.push((i as u32, j));
                            emitted += 1;
                        }
                    }
                }
                Some(rows) => {
                    for &pos in self.run(b) {
                        let j = rows[pos as usize];
                        if bkey[j as usize] == lk {
                            pairs.push((i as u32, j));
                            emitted += 1;
                        }
                    }
                }
            }
            return emitted;
        }
        let Some(b) = key_bucket(lkeys, i, self.mask) else {
            return 0; // NULL probe key
        };
        let mut emitted = 0u64;
        for &pos in self.run(b) {
            let j = self.rows.map_or(pos, |r| r[pos as usize]);
            if self
                .keys
                .iter()
                .zip(lkeys)
                .all(|(rc, lc)| rc[j as usize] == lc[i])
            {
                pairs.push((i as u32, j));
                emitted += 1;
            }
        }
        emitted
    }
}

/// FxHash bucket of row `row`'s key under `mask`; `None` when any key
/// column is NULL (NULL never joins). The same per-column `write_i64`
/// fold as [`partition_assignment`], so probe and build always agree.
#[inline]
fn key_bucket(keys: &[Vec<i64>], row: usize, mask: u64) -> Option<usize> {
    let mut h = FxHasher::default();
    for col in keys {
        let v = col[row];
        if v == NULL_SENTINEL {
            return None;
        }
        std::hash::Hasher::write_i64(&mut h, v);
    }
    Some((std::hash::Hasher::finish(&h) & mask) as usize)
}

/// Vectorized scan filter over rows `start..end`: batch windows of
/// [`BATCH_SIZE`], the first predicate seeding a pooled selection vector
/// and the rest refining it in place, appended to `out` in ascending row
/// order — the row engine's emission order exactly.
fn columnar_filter_range(
    compiled: &[CompiledPred<'_>],
    start: u32,
    end: u32,
    out: &mut Vec<u32>,
    metrics: &mut ExecMetrics,
) {
    let mut sel = take_u32_buffer();
    let mut base = start;
    while base < end {
        let hi = base.saturating_add(BATCH_SIZE as u32).min(end);
        metrics.batches_processed += 1;
        metrics.batch_rows += (hi - base) as u64;
        match compiled.split_first() {
            None => out.extend(base..hi),
            Some((first, rest)) => {
                sel.clear();
                first.filter_batch(base, hi, &mut sel);
                if first.dict {
                    metrics.dict_hits += sel.len() as u64;
                }
                for p in rest {
                    if sel.is_empty() {
                        break;
                    }
                    p.refine_batch(base, hi, &mut sel);
                    if p.dict {
                        metrics.dict_hits += sel.len() as u64;
                    }
                }
                out.extend_from_slice(&sel);
            }
        }
        base = hi;
    }
}

/// Row sentinel for "this row has a NULL key and joins nothing": outside
/// the valid partition range, so no worker ever visits it.
const NO_PARTITION: u32 = u32::MAX;

/// Deterministic partition id per row: FxHash of the full key vector,
/// reduced mod `parts`. NULL-keyed rows get [`NO_PARTITION`].
fn partition_assignment(keys: &[Vec<i64>], parts: u64) -> Vec<u32> {
    let n = keys.first().map_or(0, Vec::len);
    let mut out = Vec::with_capacity(n);
    'rows: for row in 0..n {
        let mut h = FxHasher::default();
        for col in keys {
            let v = col[row];
            if v == NULL_SENTINEL {
                out.push(NO_PARTITION);
                continue 'rows;
            }
            std::hash::Hasher::write_i64(&mut h, v);
        }
        out.push((std::hash::Hasher::finish(&h) % parts) as u32);
    }
    out
}

/// Join a scoped worker, converting a worker panic into a structured
/// error: in a serving context a panicked executor thread must fail the
/// query, not take down the process (or burn a single-flight's followers).
fn join_worker<T>(h: std::thread::ScopedJoinHandle<'_, Result<T>>) -> Result<T> {
    h.join()
        .map_err(|_| Error::internal("parallel executor worker panicked"))?
}

/// Physical operator label for span attributes and `EXPLAIN ANALYZE`.
pub fn op_label(plan: &PhysicalPlan) -> &'static str {
    match plan {
        PhysicalPlan::Scan { access, .. } => match access {
            AccessPath::SeqScan => "SeqScan",
            AccessPath::IndexScan { .. } => "IndexScan",
        },
        PhysicalPlan::Join { algo, .. } => match algo {
            JoinAlgo::Hash => "HashJoin",
            JoinAlgo::Merge => "MergeJoin",
            JoinAlgo::NestedLoop => "NestedLoopJoin",
            JoinAlgo::IndexNested => "IndexNestedLoopJoin",
        },
    }
}

/// Mutable per-execution state threaded through the operator recursion.
struct ExecState<'c> {
    metrics: ExecMetrics,
    tracing: bool,
    trace: Vec<(RelSet, u64)>,
    cache: Option<&'c mut dyn SubtreeCache>,
    /// Current span-emission handle; `exec_node_inner` re-parents it around
    /// each operator so child operators nest under their parent's span.
    tracer: Tracer,
}

impl<'c> ExecState<'c> {
    fn new(tracing: bool, tracer: Tracer) -> Self {
        ExecState {
            metrics: ExecMetrics::default(),
            tracing,
            trace: Vec::new(),
            cache: None,
            tracer,
        }
    }
}

/// A predicate with its constants encoded against the target table.
struct CompiledPred<'a> {
    col: ColId,
    op: CmpOp,
    /// Encoded first constant; `None` means "matches nothing" (dictionary
    /// miss).
    c1: Option<i64>,
    c2: i64,
    /// Whether the column is dictionary-encoded — the constant above was
    /// resolved through the dictionary, so rows this predicate selects
    /// count as [`ExecMetrics::dict_hits`].
    dict: bool,
    data: &'a [i64],
}

impl CompiledPred<'_> {
    #[inline]
    fn matches(&self, row: u32) -> bool {
        let v = self.data[row as usize];
        if v == NULL_SENTINEL {
            return false; // SQL: comparisons with NULL are not true
        }
        match self.c1 {
            Some(c1) => self.op.eval(v, c1, self.c2),
            None => false,
        }
    }

    /// Seed `sel` with the rows of `start..end` this predicate selects.
    /// The `match` on the operator happens once per batch; each arm hands
    /// [`ColumnBatch::filter_into`] a monomorphized closure, so the inner
    /// loop is a branch-free compare instead of per-row dispatch.
    #[inline]
    fn filter_batch(&self, start: u32, end: u32, sel: &mut Vec<u32>) {
        let Some(c1) = self.c1 else {
            return; // dictionary miss: matches nothing
        };
        let c2 = self.c2;
        let batch = ColumnBatch::new(&self.data[start as usize..end as usize], start);
        match self.op {
            CmpOp::Eq => batch.filter_into(sel, |v| v == c1),
            CmpOp::Ne => batch.filter_into(sel, |v| v != c1),
            CmpOp::Lt => batch.filter_into(sel, |v| v < c1),
            CmpOp::Le => batch.filter_into(sel, |v| v <= c1),
            CmpOp::Gt => batch.filter_into(sel, |v| v > c1),
            CmpOp::Ge => batch.filter_into(sel, |v| v >= c1),
            CmpOp::Between => batch.filter_into(sel, |v| v >= c1 && v <= c2),
        }
    }

    /// Narrow an existing selection (ids within `start..end`) in place.
    #[inline]
    fn refine_batch(&self, start: u32, end: u32, sel: &mut Vec<u32>) {
        let Some(c1) = self.c1 else {
            sel.clear();
            return;
        };
        let c2 = self.c2;
        let batch = ColumnBatch::new(&self.data[start as usize..end as usize], start);
        match self.op {
            CmpOp::Eq => batch.refine(sel, |v| v == c1),
            CmpOp::Ne => batch.refine(sel, |v| v != c1),
            CmpOp::Lt => batch.refine(sel, |v| v < c1),
            CmpOp::Le => batch.refine(sel, |v| v <= c1),
            CmpOp::Gt => batch.refine(sel, |v| v > c1),
            CmpOp::Ge => batch.refine(sel, |v| v >= c1),
            CmpOp::Between => batch.refine(sel, |v| v >= c1 && v <= c2),
        }
    }
}

fn compile_predicates<'a>(table: &'a Table, preds: &[Predicate]) -> Result<Vec<CompiledPred<'a>>> {
    preds
        .iter()
        .map(|p| {
            let column = table.column(p.col)?;
            let c1 = column.encode_constant(&p.value)?;
            let c2 = match &p.value2 {
                Some(v) => column.encode_constant(v)?.unwrap_or(i64::MAX),
                None => 0,
            };
            Ok(CompiledPred {
                col: p.col,
                op: p.op,
                c1,
                c2,
                dict: column.dict().is_some(),
                data: column.data(),
            })
        })
        .collect()
}

/// Error for the impossible loss of a bound subtree cache.
fn cache_vanished() -> Error {
    Error::internal("subtree cache vanished between fingerprint and lookup")
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_common::TableId;
    use reopt_plan::physical::PlanNodeInfo;
    use reopt_plan::QueryBuilder;
    use reopt_storage::{Column, ColumnDef, LogicalType, TableSchema};

    /// Two tables: t0(k, v) with k=0,1,2,3,4 ×2; t1(k, w) with k=0..9.
    fn test_db() -> Database {
        let mut db = Database::new();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("k", LogicalType::Int),
                ColumnDef::new("v", LogicalType::Int),
            ])?;
            let mut t = Table::new(
                id,
                "t0",
                schema,
                vec![
                    Column::from_i64(LogicalType::Int, vec![0, 1, 2, 3, 4, 0, 1, 2, 3, 4]),
                    Column::from_i64(LogicalType::Int, (0..10).collect()),
                ],
            )?;
            t.create_index(ColId::new(0))?;
            Ok(t)
        })
        .unwrap();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("k", LogicalType::Int),
                ColumnDef::new("w", LogicalType::Int),
            ])?;
            let mut t = Table::new(
                id,
                "t1",
                schema,
                vec![
                    Column::from_i64(LogicalType::Int, (0..10).collect()),
                    Column::from_i64(LogicalType::Int, (100..110).collect()),
                ],
            )?;
            t.create_index(ColId::new(0))?;
            Ok(t)
        })
        .unwrap();
        db
    }

    fn scan(rel: u32, table: u32, access: AccessPath) -> PhysicalPlan {
        PhysicalPlan::Scan {
            rel: RelId::new(rel),
            table: TableId::new(table),
            access,
            info: PlanNodeInfo::default(),
        }
    }

    fn join(
        algo: JoinAlgo,
        l: PhysicalPlan,
        r: PhysicalPlan,
        keys: Vec<(ColRef, ColRef)>,
    ) -> PhysicalPlan {
        PhysicalPlan::Join {
            algo,
            left: Box::new(l),
            right: Box::new(r),
            keys,
            info: PlanNodeInfo::default(),
        }
    }

    fn two_table_query(db: &Database) -> Query {
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("t0").unwrap());
        let b = qb.add_relation(db.table_id("t1").unwrap());
        qb.add_join(ColRef::new(a, ColId::new(0)), ColRef::new(b, ColId::new(0)));
        qb.build()
    }

    fn keyrefs() -> Vec<(ColRef, ColRef)> {
        vec![(
            ColRef::new(RelId::new(0), ColId::new(0)),
            ColRef::new(RelId::new(1), ColId::new(0)),
        )]
    }

    #[test]
    fn seq_scan_filters_predicates() {
        let db = test_db();
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("t0").unwrap());
        qb.add_predicate(Predicate::eq(a, ColId::new(0), 2i64));
        let q = qb.build();
        let out = execute_plan(&db, &q, &scan(0, 0, AccessPath::SeqScan)).unwrap();
        assert_eq!(out.join_rows, 2);
        assert_eq!(out.metrics.rows_scanned, 10);
    }

    #[test]
    fn index_scan_equivalent_to_seq_scan() {
        let db = test_db();
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("t0").unwrap());
        qb.add_predicate(Predicate::eq(a, ColId::new(0), 3i64));
        qb.add_predicate(Predicate::gt(a, ColId::new(1), 5i64));
        let q = qb.build();
        let seq = execute_plan(&db, &q, &scan(0, 0, AccessPath::SeqScan)).unwrap();
        let idx = execute_plan(
            &db,
            &q,
            &scan(0, 0, AccessPath::IndexScan { col: ColId::new(0) }),
        )
        .unwrap();
        assert_eq!(seq.join_rows, idx.join_rows);
        assert_eq!(idx.join_rows, 1); // k=3 rows are rowids 3 (v=3) and 8 (v=8); only v=8 > 5
        assert!(idx.metrics.index_probes >= 1);
        assert_eq!(idx.metrics.rows_scanned, 0);
    }

    #[test]
    fn all_join_algorithms_agree() {
        let db = test_db();
        let q = two_table_query(&db);
        // Every t0 row matches exactly one t1 row: expect 10.
        for algo in [JoinAlgo::Hash, JoinAlgo::Merge, JoinAlgo::NestedLoop] {
            let p = join(
                algo,
                scan(0, 0, AccessPath::SeqScan),
                scan(1, 1, AccessPath::SeqScan),
                keyrefs(),
            );
            let out = execute_plan(&db, &q, &p).unwrap();
            assert_eq!(out.join_rows, 10, "{algo:?}");
        }
        // Index nested loops (inner = t1 scan, index on k).
        let p = join(
            JoinAlgo::IndexNested,
            scan(0, 0, AccessPath::SeqScan),
            scan(1, 1, AccessPath::SeqScan),
            keyrefs(),
        );
        let out = execute_plan(&db, &q, &p).unwrap();
        assert_eq!(out.join_rows, 10);
        assert!(out.metrics.index_probes >= 10);
    }

    #[test]
    fn join_respects_local_predicates() {
        let db = test_db();
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("t0").unwrap());
        let b = qb.add_relation(db.table_id("t1").unwrap());
        qb.add_predicate(Predicate::le(b, ColId::new(0), 1i64));
        qb.add_join(ColRef::new(a, ColId::new(0)), ColRef::new(b, ColId::new(0)));
        let q = qb.build();
        for algo in [
            JoinAlgo::Hash,
            JoinAlgo::Merge,
            JoinAlgo::NestedLoop,
            JoinAlgo::IndexNested,
        ] {
            let p = join(
                algo,
                scan(0, 0, AccessPath::SeqScan),
                scan(1, 1, AccessPath::SeqScan),
                keyrefs(),
            );
            let out = execute_plan(&db, &q, &p).unwrap();
            // t1 keeps k ∈ {0,1}; each matches 2 rows of t0.
            assert_eq!(out.join_rows, 4, "{algo:?}");
        }
    }

    #[test]
    fn reversed_operands_still_match() {
        let db = test_db();
        let q = two_table_query(&db);
        // Join with t1 as the outer side.
        let p = join(
            JoinAlgo::Hash,
            scan(1, 1, AccessPath::SeqScan),
            scan(0, 0, AccessPath::SeqScan),
            keyrefs(),
        );
        let out = execute_plan(&db, &q, &p).unwrap();
        assert_eq!(out.join_rows, 10);
    }

    #[test]
    fn nulls_never_join() {
        let mut db = Database::new();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![ColumnDef::new("k", LogicalType::Int)])?;
            Table::new(
                id,
                "l",
                schema,
                vec![Column::from_i64(
                    LogicalType::Int,
                    vec![1, NULL_SENTINEL, 2],
                )],
            )
        })
        .unwrap();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![ColumnDef::new("k", LogicalType::Int)])?;
            let mut t = Table::new(
                id,
                "r",
                schema,
                vec![Column::from_i64(
                    LogicalType::Int,
                    vec![NULL_SENTINEL, 1, 1],
                )],
            )?;
            t.create_index(ColId::new(0))?;
            Ok(t)
        })
        .unwrap();
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("l").unwrap());
        let b = qb.add_relation(db.table_id("r").unwrap());
        qb.add_join(ColRef::new(a, ColId::new(0)), ColRef::new(b, ColId::new(0)));
        let q = qb.build();
        for algo in [
            JoinAlgo::Hash,
            JoinAlgo::Merge,
            JoinAlgo::NestedLoop,
            JoinAlgo::IndexNested,
        ] {
            let p = join(
                algo,
                scan(0, 0, AccessPath::SeqScan),
                scan(1, 1, AccessPath::SeqScan),
                keyrefs(),
            );
            let out = execute_plan(&db, &q, &p).unwrap();
            // Only l.k=1 matches r's two k=1 rows.
            assert_eq!(out.join_rows, 2, "{algo:?}");
        }
    }

    #[test]
    fn intermediate_cap_aborts_execution() {
        let db = test_db();
        let q = two_table_query(&db);
        let p = join(
            JoinAlgo::Hash,
            scan(0, 0, AccessPath::SeqScan),
            scan(1, 1, AccessPath::SeqScan),
            keyrefs(),
        );
        let exec = Executor::with_opts(
            &db,
            ExecOpts {
                max_intermediate_rows: 5,
                ..Default::default()
            },
        );
        assert!(exec.run(&q, &p).is_err());
    }

    #[test]
    fn metrics_track_rows() {
        let db = test_db();
        let q = two_table_query(&db);
        let p = join(
            JoinAlgo::Hash,
            scan(0, 0, AccessPath::SeqScan),
            scan(1, 1, AccessPath::SeqScan),
            keyrefs(),
        );
        let out = execute_plan(&db, &q, &p).unwrap();
        assert_eq!(out.metrics.rows_scanned, 20);
        // 10 (scan) + 10 (scan) + 10 (join) outputs.
        assert_eq!(out.metrics.rows_produced, 30);
        assert_eq!(out.metrics.peak_intermediate_rows, 10);
    }

    #[test]
    fn multi_key_joins_agree_across_algorithms() {
        // Two tables joined on BOTH columns: (k, v) pairs must match.
        let mut db = Database::new();
        for name in ["m0", "m1"] {
            db.add_table_with(|id| {
                let schema = TableSchema::new(vec![
                    ColumnDef::new("k", LogicalType::Int),
                    ColumnDef::new("v", LogicalType::Int),
                ])?;
                let mut t = Table::new(
                    id,
                    name,
                    schema,
                    vec![
                        Column::from_i64(LogicalType::Int, vec![1, 1, 2, 2, 3, NULL_SENTINEL]),
                        Column::from_i64(LogicalType::Int, vec![10, 20, 10, 20, 30, 30]),
                    ],
                )?;
                t.create_index(ColId::new(0))?;
                Ok(t)
            })
            .unwrap();
        }
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("m0").unwrap());
        let b = qb.add_relation(db.table_id("m1").unwrap());
        qb.add_join(ColRef::new(a, ColId::new(0)), ColRef::new(b, ColId::new(0)));
        qb.add_join(ColRef::new(a, ColId::new(1)), ColRef::new(b, ColId::new(1)));
        let q = qb.build();
        let keys = vec![
            (
                ColRef::new(RelId::new(0), ColId::new(0)),
                ColRef::new(RelId::new(1), ColId::new(0)),
            ),
            (
                ColRef::new(RelId::new(0), ColId::new(1)),
                ColRef::new(RelId::new(1), ColId::new(1)),
            ),
        ];
        // Expected: each of the five non-NULL rows matches exactly itself.
        let mut results = Vec::new();
        for algo in [
            JoinAlgo::Hash,
            JoinAlgo::Merge,
            JoinAlgo::NestedLoop,
            JoinAlgo::IndexNested,
        ] {
            let p = join(
                algo,
                scan(0, 0, AccessPath::SeqScan),
                scan(1, 1, AccessPath::SeqScan),
                keys.clone(),
            );
            let out = execute_plan(&db, &q, &p).unwrap();
            results.push((algo, out.join_rows));
        }
        for (algo, rows) in &results {
            assert_eq!(*rows, 5, "{algo:?}");
        }
    }

    #[test]
    fn multi_key_join_rejects_partial_matches() {
        // Keys match on k but not on v: zero output.
        let mut db = Database::new();
        for (name, v) in [("p0", 1i64), ("p1", 2i64)] {
            db.add_table_with(|id| {
                let schema = TableSchema::new(vec![
                    ColumnDef::new("k", LogicalType::Int),
                    ColumnDef::new("v", LogicalType::Int),
                ])?;
                let mut t = Table::new(
                    id,
                    name,
                    schema,
                    vec![
                        Column::from_i64(LogicalType::Int, vec![7, 8]),
                        Column::from_i64(LogicalType::Int, vec![v, v]),
                    ],
                )?;
                t.create_index(ColId::new(0))?;
                Ok(t)
            })
            .unwrap();
        }
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("p0").unwrap());
        let b = qb.add_relation(db.table_id("p1").unwrap());
        qb.add_join(ColRef::new(a, ColId::new(0)), ColRef::new(b, ColId::new(0)));
        qb.add_join(ColRef::new(a, ColId::new(1)), ColRef::new(b, ColId::new(1)));
        let q = qb.build();
        let keys = vec![
            (
                ColRef::new(RelId::new(0), ColId::new(0)),
                ColRef::new(RelId::new(1), ColId::new(0)),
            ),
            (
                ColRef::new(RelId::new(0), ColId::new(1)),
                ColRef::new(RelId::new(1), ColId::new(1)),
            ),
        ];
        for algo in [
            JoinAlgo::Hash,
            JoinAlgo::Merge,
            JoinAlgo::NestedLoop,
            JoinAlgo::IndexNested,
        ] {
            let p = join(
                algo,
                scan(0, 0, AccessPath::SeqScan),
                scan(1, 1, AccessPath::SeqScan),
                keys.clone(),
            );
            assert_eq!(execute_plan(&db, &q, &p).unwrap().join_rows, 0, "{algo:?}");
        }
    }

    /// Two tables large enough to cross `PARALLEL_MIN_ROWS`, with keys
    /// arranged so the join has skewed match counts (value v appears v%7+1
    /// times on the right).
    fn big_pair_db(n: i64) -> Database {
        let mut db = Database::new();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("k", LogicalType::Int),
                ColumnDef::new("v", LogicalType::Int),
            ])?;
            let keys: Vec<i64> = (0..n)
                .map(|i| if i % 97 == 0 { NULL_SENTINEL } else { i % 512 })
                .collect();
            Table::new(
                id,
                "bl",
                schema,
                vec![
                    Column::from_i64(LogicalType::Int, keys),
                    Column::from_i64(LogicalType::Int, (0..n).collect()),
                ],
            )
        })
        .unwrap();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("k", LogicalType::Int),
                ColumnDef::new("w", LogicalType::Int),
            ])?;
            let mut keys = Vec::new();
            for v in 0..512i64 {
                for _ in 0..(v % 7 + 1) {
                    keys.push(v);
                }
            }
            while (keys.len() as i64) < n {
                keys.push(NULL_SENTINEL);
            }
            let len = keys.len() as i64;
            Table::new(
                id,
                "br",
                schema,
                vec![
                    Column::from_i64(LogicalType::Int, keys),
                    Column::from_i64(LogicalType::Int, (0..len).collect()),
                ],
            )
        })
        .unwrap();
        db
    }

    fn big_pair_query(db: &Database) -> Query {
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("bl").unwrap());
        let b = qb.add_relation(db.table_id("br").unwrap());
        qb.add_predicate(Predicate::gt(a, ColId::new(1), 5i64));
        qb.add_join(ColRef::new(a, ColId::new(0)), ColRef::new(b, ColId::new(0)));
        qb.build()
    }

    fn assert_rowsets_identical(a: &RowSet, b: &RowSet) {
        assert_eq!(a.rels(), b.rels());
        assert_eq!(a.len(), b.len());
        for &rel in a.rels() {
            assert_eq!(a.rowids(rel).unwrap(), b.rowids(rel).unwrap(), "{rel}");
        }
    }

    #[test]
    fn parallel_execution_is_bit_identical_to_serial() {
        let db = big_pair_db(6000);
        let q = big_pair_query(&db);
        let p = join(
            JoinAlgo::Hash,
            scan(0, 0, AccessPath::SeqScan),
            scan(1, 1, AccessPath::SeqScan),
            keyrefs(),
        );
        let serial = Executor::with_opts(&db, ExecOpts::serial());
        let (base_rows, base_metrics) = serial.run_rowset(&q, &p).unwrap();
        let base_trace = serial.run_traced(&q, &p).unwrap().node_cards;
        assert!(!base_rows.is_empty(), "fixture join must be non-empty");
        for threads in [2, 4, 8] {
            let par = Executor::with_opts(&db, ExecOpts::with_threads(threads));
            let (rows, metrics) = par.run_rowset(&q, &p).unwrap();
            assert_rowsets_identical(&base_rows, &rows);
            let traced = par.run_traced(&q, &p).unwrap();
            assert_eq!(base_trace, traced.node_cards, "threads={threads}");
            // The comparable counters match serial exactly; only the
            // parallel bookkeeping differs.
            assert_eq!(metrics.rows_scanned, base_metrics.rows_scanned);
            assert_eq!(metrics.rows_produced, base_metrics.rows_produced);
            assert_eq!(
                metrics.peak_intermediate_rows,
                base_metrics.peak_intermediate_rows
            );
            assert!(metrics.parallel_ops > 0, "parallel path not taken");
            assert!(metrics.parallel_workers > 0);
        }
        assert_eq!(base_metrics.parallel_ops, 0, "threads=1 must stay serial");
    }

    #[test]
    fn incremental_cap_aborts_cross_product_joins_early() {
        // Every key identical on both sides: a 3000×3000 cross product
        // (9M pairs). With a 10k cap the probe loop must abort without
        // materializing the output — at no point may the pair buffer grow
        // past cap + one bucket (serial) / cap + threads·bucket (parallel).
        // 3000 + 3000 input rows crosses PARALLEL_MIN_ROWS, so the
        // threads=4 leg exercises the partitioned join's shared atomic
        // emission counter, not the serial per-push check.
        let n = 3000usize;
        let mut db = Database::new();
        for name in ["xl", "xr"] {
            db.add_table_with(|id| {
                let schema = TableSchema::new(vec![ColumnDef::new("k", LogicalType::Int)])?;
                let mut t = Table::new(
                    id,
                    name,
                    schema,
                    vec![Column::from_i64(LogicalType::Int, vec![7i64; n])],
                )?;
                t.create_index(ColId::new(0))?;
                Ok(t)
            })
            .unwrap();
        }
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("xl").unwrap());
        let b = qb.add_relation(db.table_id("xr").unwrap());
        qb.add_join(ColRef::new(a, ColId::new(0)), ColRef::new(b, ColId::new(0)));
        let q = qb.build();
        // IndexNested included: its inner is a raw indexed base table, so
        // the key-7 bucket alone (3000 rows per outer row) must trip the
        // per-emission check, not a post-materialization one.
        for algo in [
            JoinAlgo::Hash,
            JoinAlgo::Merge,
            JoinAlgo::NestedLoop,
            JoinAlgo::IndexNested,
        ] {
            let p = join(
                algo,
                scan(0, 0, AccessPath::SeqScan),
                scan(1, 1, AccessPath::SeqScan),
                keyrefs(),
            );
            for threads in [1, 4] {
                let exec = Executor::with_opts(
                    &db,
                    ExecOpts {
                        max_intermediate_rows: 10_000,
                        threads,
                        ..Default::default()
                    },
                );
                let err = exec.run(&q, &p).unwrap_err();
                assert!(
                    err.to_string().contains("cap"),
                    "{algo:?}/threads={threads}: {err}"
                );
            }
        }
    }

    #[test]
    fn probe_cap_error_is_identical_at_every_thread_count() {
        // Determinism extends to the failure path: the cap error carries
        // no interleaving-dependent counters.
        let a = check_probe_cap(11, 10).unwrap_err();
        let b = check_probe_cap(4_000_000, 10).unwrap_err();
        assert_eq!(a, b);
    }

    #[test]
    fn dictionary_miss_matches_nothing() {
        let mut db = Database::new();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![ColumnDef::new("tag", LogicalType::Dict)])?;
            Table::new(id, "d", schema, vec![Column::from_strings(&["a", "b"])])
        })
        .unwrap();
        let mut qb = QueryBuilder::new();
        let r = qb.add_relation(db.table_id("d").unwrap());
        qb.add_predicate(Predicate::eq(r, ColId::new(0), "zzz"));
        let q = qb.build();
        let out = execute_plan(&db, &q, &scan(0, 0, AccessPath::SeqScan)).unwrap();
        assert_eq!(out.join_rows, 0);
    }

    /// Regression for the structured worker-join path: a panicking worker
    /// thread must surface as [`Error::Internal`], never unwind through
    /// the scope (which would abort a serving process).
    #[test]
    fn worker_panic_becomes_internal_error() {
        let res: Result<()> = std::thread::scope(|scope| {
            let h = scope.spawn(|| -> Result<()> { panic!("injected worker failure") });
            join_worker(h)
        });
        match res {
            Err(Error::Internal(msg)) => assert!(msg.contains("worker panicked"), "{msg}"),
            other => panic!("expected Internal error, got {other:?}"),
        }
    }

    /// The columnar engine must be bit-identical to the row engine on
    /// rowsets, traces, and the shared counters — across serial and
    /// partition-parallel execution, for the operators the batch paths
    /// touch (vectorized scans feed both join algorithms here).
    #[test]
    fn columnar_execution_is_bit_identical_to_row_engine() {
        let db = big_pair_db(6000);
        let q = big_pair_query(&db);
        for algo in [JoinAlgo::Hash, JoinAlgo::Merge] {
            let p = join(
                algo,
                scan(0, 0, AccessPath::SeqScan),
                scan(1, 1, AccessPath::SeqScan),
                keyrefs(),
            );
            for threads in [1usize, 4] {
                let row_exec = Executor::with_opts(
                    &db,
                    ExecOpts {
                        threads,
                        columnar: Some(false),
                        ..Default::default()
                    },
                );
                let col_exec = Executor::with_opts(
                    &db,
                    ExecOpts {
                        threads,
                        columnar: Some(true),
                        ..Default::default()
                    },
                );
                let (row_rows, row_m) = row_exec.run_rowset(&q, &p).unwrap();
                let (col_rows, col_m) = col_exec.run_rowset(&q, &p).unwrap();
                assert!(!row_rows.is_empty(), "fixture join must be non-empty");
                assert_rowsets_identical(&row_rows, &col_rows);
                let row_trace = row_exec.run_traced(&q, &p).unwrap().node_cards;
                let col_trace = col_exec.run_traced(&q, &p).unwrap().node_cards;
                assert_eq!(row_trace, col_trace, "{algo:?}/threads={threads}");
                assert_eq!(row_m.rows_scanned, col_m.rows_scanned);
                assert_eq!(row_m.rows_produced, col_m.rows_produced);
                assert_eq!(row_m.peak_intermediate_rows, col_m.peak_intermediate_rows);
                assert_eq!(row_m.batches_processed, 0, "row engine must not batch");
                assert!(
                    col_m.batches_processed > 0,
                    "{algo:?}/threads={threads}: columnar path not taken"
                );
            }
        }
    }

    #[test]
    fn columnar_knob_resolution() {
        assert!(ExecOpts::default().columnar.is_none());
        assert!(ExecOpts::with_columnar(true).effective_columnar());
        assert!(!ExecOpts::with_columnar(false).effective_columnar());
        // The explicit setting wins over the environment default.
        let pinned = ExecOpts {
            columnar: Some(false),
            ..Default::default()
        };
        assert!(!pinned.effective_columnar());
    }
}
