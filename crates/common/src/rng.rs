//! Deterministic RNG plumbing.
//!
//! Every stochastic process in the workspace — data generation, Bernoulli
//! sampling, GEQO, the Procedure-1 simulation — takes an explicit seed so
//! experiments replay bit-for-bit. This module centralizes how seeds are
//! derived so that, e.g., regenerating one table of a database does not
//! perturb the data of another (the paper's OTT generator likewise draws an
//! independent seed per relation, Algorithm 2 line 2).

use crate::hash::fx_mix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The workspace-standard RNG (`StdRng`, seeded).
pub type Rng = StdRng;

/// Create the root RNG for a given experiment seed.
pub fn root_rng(seed: u64) -> Rng {
    StdRng::seed_from_u64(seed)
}

/// Derive a stable sub-seed from a root seed and a label.
///
/// Mixing the label's bytes keeps streams independent per purpose:
/// `derive_seed(s, "lineitem")` and `derive_seed(s, "orders")` never share a
/// stream, and inserting a new label does not shift existing ones (unlike
/// drawing sub-seeds sequentially from one RNG).
pub fn derive_seed(root: u64, label: &str) -> u64 {
    let mut h = fx_mix(root, 0x9e37_79b9_7f4a_7c15);
    for chunk in label.as_bytes().chunks(8) {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        h = fx_mix(h, u64::from_le_bytes(buf));
    }
    // Mix in the length so "ab"+"" and "a"+"b" style labels can't alias.
    fx_mix(h, label.len() as u64)
}

/// Derive an RNG for a labelled sub-stream.
pub fn derive_rng(root: u64, label: &str) -> Rng {
    StdRng::seed_from_u64(derive_seed(root, label))
}

/// Derive an RNG for a labelled, indexed sub-stream (e.g. query instance
/// `i` of template `t`).
pub fn derive_rng_indexed(root: u64, label: &str, index: u64) -> Rng {
    StdRng::seed_from_u64(fx_mix(derive_seed(root, label), index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn same_seed_same_stream() {
        let mut a = root_rng(7);
        let mut b = root_rng(7);
        for _ in 0..16 {
            assert_eq!(a.random_range(0..u64::MAX), b.random_range(0..u64::MAX));
        }
    }

    #[test]
    fn labels_produce_independent_streams() {
        assert_ne!(derive_seed(7, "lineitem"), derive_seed(7, "orders"));
        assert_ne!(derive_seed(7, "lineitem"), derive_seed(8, "lineitem"));
        // Deterministic.
        assert_eq!(derive_seed(7, "lineitem"), derive_seed(7, "lineitem"));
    }

    #[test]
    fn indexed_streams_differ() {
        let mut a = derive_rng_indexed(7, "q3", 0);
        let mut b = derive_rng_indexed(7, "q3", 1);
        let xa: u64 = a.random_range(0..u64::MAX);
        let xb: u64 = b.random_range(0..u64::MAX);
        assert_ne!(xa, xb);
    }

    #[test]
    fn long_labels_do_not_alias() {
        assert_ne!(
            derive_seed(1, "abcdefgh-long-label-1"),
            derive_seed(1, "abcdefgh-long-label-2")
        );
        assert_ne!(derive_seed(1, "ab"), derive_seed(1, "a"));
    }
}
