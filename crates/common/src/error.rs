//! Workspace-wide error type.
//!
//! The engine is a library, so errors are values, never panics. Each
//! subsystem maps its failure modes onto one of the variants below; the
//! string payloads carry human-readable context (table/column names, plan
//! descriptions).

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Unified error type for the whole engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A named entity (table, column, index, statistics entry) was not found.
    NotFound(String),
    /// The caller supplied something structurally invalid (mismatched column
    /// lengths, a join predicate over a relation that is not in the query,
    /// an empty query, ...).
    Invalid(String),
    /// A requested feature is deliberately outside the engine's algebra
    /// (e.g. non-equi joins in the join enumerator).
    Unsupported(String),
    /// Internal invariant violation. Seeing this is a bug in the engine.
    Internal(String),
    /// A serving-layer failure: a coalesced request whose leading session
    /// died, a session submitted after shutdown, a poisoned service
    /// structure. Unlike [`Error::Internal`] these are expected under
    /// concurrency and callers are meant to retry.
    Service(String),
}

impl Error {
    /// Shorthand for [`Error::NotFound`].
    pub fn not_found(what: impl Into<String>) -> Self {
        Error::NotFound(what.into())
    }

    /// Shorthand for [`Error::Invalid`].
    pub fn invalid(what: impl Into<String>) -> Self {
        Error::Invalid(what.into())
    }

    /// Shorthand for [`Error::Unsupported`].
    pub fn unsupported(what: impl Into<String>) -> Self {
        Error::Unsupported(what.into())
    }

    /// Shorthand for [`Error::Internal`].
    pub fn internal(what: impl Into<String>) -> Self {
        Error::Internal(what.into())
    }

    /// Shorthand for [`Error::Service`].
    pub fn service(what: impl Into<String>) -> Self {
        Error::Service(what.into())
    }

    /// Whether retrying the operation can plausibly succeed — true only
    /// for serving-layer transients.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::Service(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound(s) => write!(f, "not found: {s}"),
            Error::Invalid(s) => write!(f, "invalid: {s}"),
            Error::Unsupported(s) => write!(f, "unsupported: {s}"),
            Error::Internal(s) => write!(f, "internal error: {s}"),
            Error::Service(s) => write!(f, "service error: {s}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = Error::not_found("table lineitem");
        assert_eq!(e.to_string(), "not found: table lineitem");
        let e = Error::invalid("join predicate references absent relation");
        assert!(e.to_string().starts_with("invalid:"));
        let e = Error::unsupported("theta join");
        assert!(e.to_string().contains("theta join"));
        let e = Error::internal("dp table miss");
        assert!(e.to_string().contains("internal"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::not_found("x"), Error::not_found("x"));
        assert_ne!(Error::not_found("x"), Error::invalid("x"));
    }

    #[test]
    fn service_errors_are_retryable_transients() {
        let e = Error::service("leading session panicked");
        assert!(e.to_string().starts_with("service error:"));
        assert!(e.is_retryable());
        assert!(!Error::internal("dp table miss").is_retryable());
        assert!(!Error::invalid("no relations").is_retryable());
    }
}
