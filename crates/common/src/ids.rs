//! Strongly-typed identifiers.
//!
//! * [`TableId`] — a base table in the catalog (global across the database).
//! * [`ColId`] — a column *within* its table (0-based position).
//! * [`RelId`] — a relation *occurrence* within one query (0-based position
//!   in the query's `FROM` list). The same base table may appear under two
//!   different `RelId`s (self-joins), which is why plans and statistics are
//!   keyed by `RelId`, not `TableId`.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw index.
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Raw index, convenient for slice addressing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<usize> for $name {
            fn from(raw: usize) -> Self {
                Self(raw as u32)
            }
        }
    };
}

id_type!(
    /// Identifier of a base table in the catalog.
    TableId,
    "t"
);
id_type!(
    /// Identifier of a column within its table (positional).
    ColId,
    "c"
);
id_type!(
    /// Identifier of a relation occurrence within a query (positional in the
    /// `FROM` list). At most [`crate::relset::MAX_RELS`] relations per query.
    RelId,
    "r"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_display() {
        let t = TableId::new(3);
        assert_eq!(t.index(), 3);
        assert_eq!(t.to_string(), "t3");
        assert_eq!(TableId::from(3usize), t);
        assert_eq!(TableId::from(3u32), t);

        let r = RelId::new(0);
        assert_eq!(r.to_string(), "r0");
        let c = ColId::new(7);
        assert_eq!(c.to_string(), "c7");
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(RelId::new(1) < RelId::new(2));
        assert!(ColId::new(0) < ColId::new(10));
    }
}
