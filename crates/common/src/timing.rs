//! The workspace's single doorway to the wall clock.
//!
//! Query results in this engine are bit-identical under replay; wall-clock
//! reads scattered through library code are exactly the kind of hidden
//! input that erodes that promise one "harmless" telemetry field at a
//! time. The static-analysis pass (rule R3, `reopt-lint`) therefore bans
//! `Instant::now`/`SystemTime` everywhere outside `crates/bench` — and
//! this module holds the one waived call site. Everything that needs a
//! duration (executor metrics, per-round optimizer timings, service
//! latency stats, cost-model calibration, the explicit user-set
//! `time_budget`) measures it through a [`Stopwatch`], which keeps every
//! clock read greppable and visibly timing-only.
//!
//! Nothing here may feed back into plan choice or row output except the
//! documented `ReOptConfig::time_budget` round gate, which is off by
//! default and is an explicit user opt-in to wall-clock-dependent
//! behavior.

use std::time::Duration;
use std::time::Instant;

/// A started wall-clock timer. The only way in the workspace to read the
/// clock; produces opaque elapsed [`Duration`]s for telemetry and explicit
/// time budgets.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        // The workspace's single sanctioned clock read.
        Stopwatch(Instant::now()) // lint: clock-ok(sole R3-waived site: all timing flows through Stopwatch; consumers are telemetry fields and the explicit opt-in time_budget gate)
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }
}
