//! Shared substrate for the `reopt` workspace.
//!
//! This crate holds the small, dependency-free building blocks every other
//! crate needs:
//!
//! * [`error`] — the workspace-wide [`error::Error`] type,
//! * [`ids`] — strongly-typed identifiers for tables, columns and relations,
//! * [`relset`] — [`relset::RelSet`], a bitset over the base
//!   relations of a query (the canonical key of the paper's Γ statistics),
//! * [`hash`] — an FxHash-style fast hasher plus `FxHashMap`/`FxHashSet`
//!   aliases (integer-keyed maps are hot in the optimizer and executor),
//! * [`rng`] — deterministic RNG plumbing so every experiment is replayable,
//! * [`sync`] — the poison-recovering lock idiom shared by every crate,
//! * [`timing`] — [`timing::Stopwatch`], the workspace's only doorway to
//!   the wall clock (rule R3 of `reopt-lint`).

pub mod error;
pub mod hash;
pub mod ids;
pub mod relset;
pub mod rng;
pub mod sync;
pub mod timing;

pub use error::{Error, Result};
pub use hash::{FxHashMap, FxHashSet};
pub use ids::{ColId, RelId, TableId};
pub use relset::RelSet;
pub use sync::lock_unpoisoned;
pub use timing::Stopwatch;
