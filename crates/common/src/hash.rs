//! FxHash-style fast hashing.
//!
//! The optimizer's DP table, the executor's hash joins and the Γ statistics
//! store are all integer-keyed hash maps on the hot path. The standard
//! library's SipHash is collision-hardened but slow for small integer keys;
//! the classic Fx multiply-and-rotate hash (as used inside rustc) is an
//! order of magnitude cheaper and adequate because keys are never
//! attacker-controlled here.
//!
//! Implemented locally (~40 lines) rather than pulling `rustc-hash`, which
//! is not on the approved dependency list.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-and-rotate hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // lint: panic-ok(chunks_exact(8) yields exactly 8-byte slices, so the array conversion is infallible)
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hash a single `u64` with the Fx mix — handy for fingerprint combination.
#[inline]
pub fn fx_mix(seed: u64, word: u64) -> u64 {
    (seed.rotate_left(5) ^ word).wrapping_mul(SEED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"lineitem"), hash_of(&"lineitem"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a collision-resistance claim, just sanity that low bits differ
        // for sequential keys (the map uses the low bits for bucketing).
        let a = hash_of(&1u64);
        let b = hash_of(&2u64);
        assert_ne!(a, b);
        assert_ne!(a & 0xffff, b & 0xffff);
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m[&1], "one");

        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        s.insert((1, 2));
        assert!(s.contains(&(1, 2)));
        assert!(!s.contains(&(2, 1)));
    }

    #[test]
    fn unaligned_tail_bytes_hash() {
        // 11 bytes exercises the chunk remainder path.
        let bytes: [u8; 11] = *b"hello world";
        let mut h1 = FxHasher::default();
        h1.write(&bytes);
        let mut h2 = FxHasher::default();
        h2.write(&bytes);
        assert_eq!(h1.finish(), h2.finish());

        let mut h3 = FxHasher::default();
        h3.write(b"hello worle");
        assert_ne!(h1.finish(), h3.finish());
    }

    #[test]
    fn fx_mix_differs_by_seed_and_word() {
        assert_ne!(fx_mix(0, 1), fx_mix(0, 2));
        assert_ne!(fx_mix(1, 1), fx_mix(2, 1));
    }
}
