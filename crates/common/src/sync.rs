//! Shared locking idiom: poison recovery.
//!
//! `Mutex::lock().unwrap()` turns one panicked lock holder into a panic
//! cascade across every thread that touches the lock afterwards — in a
//! query service that means a single buggy session kills its neighbors.
//! The static-analysis pass (rule R5, `reopt-lint`) bans the pattern; this
//! helper is the prescribed replacement for the common case where every
//! critical section leaves the data structurally whole even if it panics
//! mid-way (single-operation sections, or sections whose partial effects
//! are benign, like a cache missing one insert).
//!
//! When a section *can* tear its data, do not use this helper — propagate
//! a structured [`crate::Error::service`] instead and rebuild the state.

use std::sync::{Mutex, MutexGuard};

/// Lock `mutex`, recovering the guard if a previous holder panicked.
///
/// Poisoning is only a *flag* — the data is still there; recovering is
/// sound exactly when every critical section is atomic-enough that a
/// mid-section panic cannot leave it torn. Callers assert that property by
/// choosing this helper.
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn recovers_after_a_panicked_holder() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().expect("first lock cannot be poisoned");
            panic!("poison the mutex");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_unpoisoned(&m), 7);
        *lock_unpoisoned(&m) = 8;
        assert_eq!(*lock_unpoisoned(&m), 8);
    }
}
