//! [`RelSet`]: a set of relation occurrences of one query, as a `u64` bitset.
//!
//! The paper's Γ ("validated cardinalities") is keyed by *which base
//! relations a join subtree covers* — within a single query the local
//! predicates per relation are fixed, so the relation set identifies the
//! logical join result uniquely (§2.2, §3.1). `RelSet` is that key. It is
//! also the subset key of the optimizer's dynamic-programming table.
//!
//! Queries are limited to [`MAX_RELS`] = 64 relation occurrences, far above
//! anything the paper evaluates (OTT uses 5–6, TPC-H ≤ 8).

use crate::ids::RelId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of relation occurrences per query.
pub const MAX_RELS: usize = 64;

/// An immutable set of [`RelId`]s, represented as a 64-bit mask.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct RelSet(u64);

impl RelSet {
    /// The empty set.
    pub const EMPTY: RelSet = RelSet(0);

    /// Set containing a single relation.
    pub fn single(rel: RelId) -> Self {
        debug_assert!(rel.index() < MAX_RELS, "relation index out of range");
        RelSet(1u64 << rel.index())
    }

    /// Set containing relations `0..n`.
    pub fn first_n(n: usize) -> Self {
        assert!(n <= MAX_RELS, "at most {MAX_RELS} relations per query");
        if n == MAX_RELS {
            RelSet(u64::MAX)
        } else {
            RelSet((1u64 << n) - 1)
        }
    }

    /// Build from an iterator of relations.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = RelId>>(iter: I) -> Self {
        let mut s = RelSet::EMPTY;
        for r in iter {
            s = s.with(r);
        }
        s
    }

    /// Raw bit mask (stable across runs; used in fingerprints).
    pub const fn mask(self) -> u64 {
        self.0
    }

    /// Construct directly from a raw mask.
    pub const fn from_mask(mask: u64) -> Self {
        RelSet(mask)
    }

    /// Number of relations in the set.
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when the set contains no relation.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Membership test.
    pub fn contains(self, rel: RelId) -> bool {
        debug_assert!(rel.index() < MAX_RELS);
        self.0 & (1u64 << rel.index()) != 0
    }

    /// This set plus `rel`.
    #[must_use]
    pub fn with(self, rel: RelId) -> Self {
        debug_assert!(rel.index() < MAX_RELS);
        RelSet(self.0 | (1u64 << rel.index()))
    }

    /// This set minus `rel`.
    #[must_use]
    pub fn without(self, rel: RelId) -> Self {
        debug_assert!(rel.index() < MAX_RELS);
        RelSet(self.0 & !(1u64 << rel.index()))
    }

    /// Set union.
    #[must_use]
    pub const fn union(self, other: RelSet) -> Self {
        RelSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub const fn intersect(self, other: RelSet) -> Self {
        RelSet(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    #[must_use]
    pub const fn difference(self, other: RelSet) -> Self {
        RelSet(self.0 & !other.0)
    }

    /// True when the two sets share no relation.
    pub const fn is_disjoint(self, other: RelSet) -> bool {
        self.0 & other.0 == 0
    }

    /// True when `self ⊆ other`.
    pub const fn is_subset_of(self, other: RelSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterate members in ascending [`RelId`] order.
    pub fn iter(self) -> RelSetIter {
        RelSetIter(self.0)
    }

    /// The member with the smallest index, if any.
    pub fn min_rel(self) -> Option<RelId> {
        if self.0 == 0 {
            None
        } else {
            Some(RelId::new(self.0.trailing_zeros()))
        }
    }

    /// Iterate all *non-empty, proper* subsets of this set.
    ///
    /// Classic subset-enumeration trick: for mask `m`, `s = (s - 1) & m`
    /// walks every submask exactly once in decreasing numeric order. Used by
    /// the DPsub join enumerator.
    pub fn proper_subsets(self) -> SubsetIter {
        SubsetIter {
            mask: self.0,
            // Start from the largest proper subset.
            next: self.0.wrapping_sub(1) & self.0,
            done: self.0 == 0,
        }
    }
}

impl fmt::Debug for RelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", r.0)?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for RelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<RelId> for RelSet {
    fn from_iter<I: IntoIterator<Item = RelId>>(iter: I) -> Self {
        RelSet::from_iter(iter)
    }
}

/// Iterator over the members of a [`RelSet`].
pub struct RelSetIter(u64);

impl Iterator for RelSetIter {
    type Item = RelId;

    fn next(&mut self) -> Option<RelId> {
        if self.0 == 0 {
            None
        } else {
            let tz = self.0.trailing_zeros();
            self.0 &= self.0 - 1;
            Some(RelId::new(tz))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RelSetIter {}

/// Iterator over the non-empty proper subsets of a [`RelSet`].
pub struct SubsetIter {
    mask: u64,
    next: u64,
    done: bool,
}

impl Iterator for SubsetIter {
    type Item = RelSet;

    fn next(&mut self) -> Option<RelSet> {
        if self.done || self.next == 0 {
            return None;
        }
        let out = RelSet(self.next);
        self.next = self.next.wrapping_sub(1) & self.mask;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(ids: &[u32]) -> RelSet {
        ids.iter().map(|&i| RelId::new(i)).collect()
    }

    #[test]
    fn basic_set_algebra() {
        let a = rs(&[0, 2, 5]);
        let b = rs(&[2, 3]);
        assert_eq!(a.len(), 3);
        assert!(a.contains(RelId::new(2)));
        assert!(!a.contains(RelId::new(1)));
        assert_eq!(a.union(b), rs(&[0, 2, 3, 5]));
        assert_eq!(a.intersect(b), rs(&[2]));
        assert_eq!(a.difference(b), rs(&[0, 5]));
        assert!(rs(&[0, 5]).is_subset_of(a));
        assert!(!a.is_subset_of(b));
        assert!(a.is_disjoint(rs(&[1, 3])));
        assert!(!a.is_disjoint(b));
    }

    #[test]
    fn with_without_roundtrip() {
        let a = RelSet::EMPTY.with(RelId::new(4)).with(RelId::new(1));
        assert_eq!(a, rs(&[1, 4]));
        assert_eq!(a.without(RelId::new(4)), rs(&[1]));
        assert_eq!(a.without(RelId::new(9)), a);
    }

    #[test]
    fn iteration_is_sorted() {
        let a = rs(&[7, 0, 3]);
        let v: Vec<u32> = a.iter().map(|r| r.0).collect();
        assert_eq!(v, vec![0, 3, 7]);
        assert_eq!(a.iter().len(), 3);
        assert_eq!(a.min_rel(), Some(RelId::new(0)));
        assert_eq!(RelSet::EMPTY.min_rel(), None);
    }

    #[test]
    fn first_n_covers_prefix() {
        assert_eq!(RelSet::first_n(0), RelSet::EMPTY);
        assert_eq!(RelSet::first_n(3), rs(&[0, 1, 2]));
        assert_eq!(RelSet::first_n(64).len(), 64);
    }

    #[test]
    fn proper_subset_enumeration_is_complete_and_proper() {
        let a = rs(&[1, 3, 4]);
        let subs: Vec<RelSet> = a.proper_subsets().collect();
        // 2^3 - 2 = 6 non-empty proper subsets.
        assert_eq!(subs.len(), 6);
        for s in &subs {
            assert!(s.is_subset_of(a));
            assert!(!s.is_empty());
            assert_ne!(*s, a);
        }
        // All distinct.
        let mut dedup = subs.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), subs.len());
    }

    #[test]
    fn proper_subsets_of_trivial_sets() {
        assert_eq!(RelSet::EMPTY.proper_subsets().count(), 0);
        assert_eq!(rs(&[5]).proper_subsets().count(), 0);
        assert_eq!(rs(&[5, 9]).proper_subsets().count(), 2);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", rs(&[0, 2])), "{0,2}");
        assert_eq!(format!("{:?}", RelSet::EMPTY), "{}");
    }
}
