//! Property tests for the RelSet bitset — the key type of Γ and of the
//! optimizer's DP table, where a subtle set-algebra bug would corrupt
//! plans silently.

use proptest::prelude::*;
use reopt_common::{RelId, RelSet};

fn relset() -> impl Strategy<Value = RelSet> {
    any::<u64>().prop_map(RelSet::from_mask)
}

proptest! {
    #[test]
    fn union_intersect_difference_laws(a in relset(), b in relset()) {
        // De Morgan-ish consistency through the mask representation.
        prop_assert_eq!(a.union(b).mask(), a.mask() | b.mask());
        prop_assert_eq!(a.intersect(b).mask(), a.mask() & b.mask());
        prop_assert_eq!(a.difference(b).mask(), a.mask() & !b.mask());
        // Difference and intersection partition `a`.
        prop_assert_eq!(a.difference(b).union(a.intersect(b)), a);
        // Disjointness symmetric and consistent with intersection.
        prop_assert_eq!(a.is_disjoint(b), a.intersect(b).is_empty());
        prop_assert_eq!(a.is_disjoint(b), b.is_disjoint(a));
    }

    #[test]
    fn subset_relation(a in relset(), b in relset()) {
        prop_assert_eq!(a.is_subset_of(b), a.union(b) == b);
        prop_assert!(a.intersect(b).is_subset_of(a));
        prop_assert!(a.is_subset_of(a.union(b)));
    }

    #[test]
    fn iteration_round_trips(a in relset()) {
        let rebuilt: RelSet = a.iter().collect();
        prop_assert_eq!(rebuilt, a);
        prop_assert_eq!(a.iter().count(), a.len());
        // Sorted ascending.
        let ids: Vec<u32> = a.iter().map(|r| r.0).collect();
        prop_assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn with_without_inverse(a in relset(), idx in 0u32..64) {
        let r = RelId::new(idx);
        prop_assert!(a.with(r).contains(r));
        prop_assert!(!a.without(r).contains(r));
        if !a.contains(r) {
            prop_assert_eq!(a.with(r).without(r), a);
        }
    }

    #[test]
    fn proper_subsets_are_proper_and_complete(mask in 0u64..256) {
        let a = RelSet::from_mask(mask);
        let subs: Vec<RelSet> = a.proper_subsets().collect();
        // Count: 2^n - 2 for n ≥ 1 members (excludes empty and full).
        let expected = if a.is_empty() { 0 } else { (1usize << a.len()) - 2 };
        prop_assert_eq!(subs.len(), expected);
        for s in &subs {
            prop_assert!(s.is_subset_of(a));
            prop_assert!(!s.is_empty());
            prop_assert_ne!(*s, a);
        }
        // Each subset paired with its complement-in-a is a partition.
        for s in &subs {
            let c = a.difference(*s);
            prop_assert_eq!(s.union(c), a);
            prop_assert!(s.is_disjoint(c));
        }
    }

    #[test]
    fn min_rel_is_minimum(a in relset()) {
        match a.min_rel() {
            None => prop_assert!(a.is_empty()),
            Some(m) => {
                prop_assert!(a.contains(m));
                for r in a.iter() {
                    prop_assert!(m.0 <= r.0);
                }
            }
        }
    }
}
