//! The Optimizer Torture Test (§4): database, queries, and the Appendix D
//! closed-form size analysis.
//!
//! Design recap:
//!
//! * K relations `R_k(A_k, B_k)` with `B_k = A_k` (Algorithm 2's extreme
//!   correlation), `Pr(A_k)` uniform;
//! * queries `σ(A_1=c_1 ∧ … ∧ A_K=c_K)(R_1 ⋈_{B} R_2 ⋈_B … ⋈_B R_K)`
//!   joined in a chain on the B columns;
//! * a query is non-empty iff `c_1 = … = c_K` (Equation 3), in which case
//!   it produces `Π_k rows_k / n(A_k)` tuples, while histogram-based
//!   optimizers estimate the *same* cardinality either way (Lemma 4).
//!
//! The paper extends the six largest TPC-H tables with the (A, B) columns
//! of a 1 GB database; at library scale we generate six standalone tables
//! whose relative sizes follow those TPC-H tables. `rows_per_value`
//! controls the blow-up factor M (the paper's ≈100; scaled down by default
//! so the worst plans stay painful-but-runnable — see DESIGN.md).

use rand::RngExt;
use reopt_common::rng::derive_rng;
use reopt_common::{ColId, RelId, Result};
use reopt_plan::query::ColRef;
use reopt_plan::{Predicate, Query, QueryBuilder};
use reopt_storage::{Column, ColumnDef, Database, LogicalType, Table, TableSchema};

/// Column index of `A` in every OTT table.
pub const COL_A: ColId = ColId::new(0);
/// Column index of `B` in every OTT table.
pub const COL_B: ColId = ColId::new(1);

/// OTT database configuration.
#[derive(Debug, Clone)]
pub struct OttConfig {
    /// Rows per distinct value — the paper's M ≈ 100. The non-empty
    /// j-table sub-join produces M^j rows, so the default is scaled down
    /// to keep bad plans runnable in CI while preserving the
    /// orders-of-magnitude gap.
    pub rows_per_value: usize,
    /// Relative table sizes (in distinct values) for the six tables,
    /// echoing lineitem : orders : partsupp : part : customer : supplier.
    pub distinct_values: [usize; 6],
    /// Generator seed (Algorithm 2 draws one independent stream per
    /// relation).
    pub seed: u64,
    /// Shuffle each column independently (keeps A=B pairing intact) so
    /// rows are not value-clustered on disk order.
    pub shuffle: bool,
}

impl Default for OttConfig {
    fn default() -> Self {
        OttConfig {
            rows_per_value: 20,
            distinct_values: [600, 150, 80, 40, 30, 10],
            seed: 0x077,
            shuffle: true,
        }
    }
}

/// The sampling ratio that preserves the paper's *effective* sample
/// statistic on a scaled-down OTT database.
///
/// The paper samples 5% of tables holding ~100 rows per distinct value,
/// i.e. ~5 sampled rows per value group — enough for the Haas estimator to
/// tell empty joins from non-empty ones. A scaled-down database with
/// `rows_per_value` = M needs ratio ≈ 5/M for the same discrimination
/// power (DESIGN.md lists this under substitutions).
pub fn recommended_sample_ratio(config: &OttConfig) -> f64 {
    (5.0 / config.rows_per_value as f64).clamp(0.05, 1.0)
}

/// Names of the six OTT tables.
pub const OTT_TABLE_NAMES: [&str; 6] = [
    "ott_lineitem",
    "ott_orders",
    "ott_partsupp",
    "ott_part",
    "ott_customer",
    "ott_supplier",
];

/// Generate the OTT database (Algorithm 2): for each table, draw A
/// uniformly, set B = A, and index both columns.
pub fn build_ott_database(config: &OttConfig) -> Result<Database> {
    let mut db = Database::new();
    for (t, name) in OTT_TABLE_NAMES.iter().enumerate() {
        let values = config.distinct_values[t];
        let rows = values * config.rows_per_value;
        // Algorithm 2 line 2: an independent seed per relation.
        let mut rng = derive_rng(config.seed, &format!("ott:{name}"));
        let mut a: Vec<i64> = (0..rows).map(|i| (i % values) as i64).collect();
        if config.shuffle {
            for i in (1..a.len()).rev() {
                let j = rng.random_range(0..=i);
                a.swap(i, j);
            }
        }
        let b = a.clone(); // Algorithm 2 line 4: B_k = A_k
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("a", LogicalType::Int),
                ColumnDef::new("b", LogicalType::Int),
            ])?;
            let mut tbl = Table::new(
                id,
                *name,
                schema,
                vec![
                    Column::from_i64(LogicalType::Int, a.clone()),
                    Column::from_i64(LogicalType::Int, b.clone()),
                ],
            )?;
            tbl.create_index(COL_A)?;
            tbl.create_index(COL_B)?;
            Ok(tbl)
        })?;
    }
    Ok(db)
}

/// Build one OTT query over the first `constants.len()` tables:
/// selections `A_k = constants[k]`, chain joins `B_k = B_{k+1}`.
pub fn ott_query(db: &Database, constants: &[i64]) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let mut rels: Vec<RelId> = Vec::with_capacity(constants.len());
    for (k, &c) in constants.iter().enumerate() {
        let table = db.table_by_name(OTT_TABLE_NAMES[k])?.id();
        let rel = qb.add_relation(table);
        qb.add_predicate(Predicate::eq(rel, COL_A, c));
        rels.push(rel);
    }
    for w in rels.windows(2) {
        qb.add_join(ColRef::new(w[0], COL_B), ColRef::new(w[1], COL_B));
    }
    Ok(qb.build())
}

/// The §5.3 query suites: `n` tables with `m` selections `A = 0` and the
/// rest `A = 1`, in every arrangement, plus the 0/1-swapped variants —
/// 10 queries for (n=5, m=4) and 30 for (n=6, m=4), as in the paper.
pub fn ott_query_suite(n: usize, m: usize) -> Vec<Vec<i64>> {
    assert!(m <= n && n <= 6);
    let mut out = Vec::new();
    // Choose which positions carry the minority constant.
    let minority = n - m;
    let mut positions: Vec<usize> = (0..minority).collect();
    loop {
        for &(maj, min) in &[(0i64, 1i64), (1, 0)] {
            let mut consts = vec![maj; n];
            for &p in &positions {
                consts[p] = min;
            }
            out.push(consts);
        }
        // Next combination of `minority` positions out of n.
        let mut i = minority;
        loop {
            if i == 0 {
                return dedup_preserving_order(out);
            }
            i -= 1;
            if positions[i] != i + n - minority {
                positions[i] += 1;
                for j in i + 1..minority {
                    positions[j] = positions[j - 1] + 1;
                }
                break;
            }
        }
    }
}

fn dedup_preserving_order(v: Vec<Vec<i64>>) -> Vec<Vec<i64>> {
    let mut seen = std::collections::HashSet::new();
    v.into_iter().filter(|c| seen.insert(c.clone())).collect()
}

/// Appendix D: true size of an OTT query when Equation 3 holds
/// (`Π_k rows_k / n(A_k)`), zero otherwise.
pub fn true_query_size(config: &OttConfig, constants: &[i64]) -> f64 {
    let all_equal = constants.windows(2).all(|w| w[0] == w[1]);
    if !all_equal {
        return 0.0;
    }
    constants
        .iter()
        .enumerate()
        .map(|(k, _)| {
            let values = config.distinct_values[k] as f64;
            let rows = values * config.rows_per_value as f64;
            rows / values // = rows_per_value
        })
        .product()
}

/// Appendix D: the optimizer's estimate `(1/L^{K-1}) Π_k rows_k/n(A_k)`
/// under exact per-column histograms and AVI, with `L` the (shared)
/// domain size of the join columns. The estimate is identical whether the
/// query is empty or not. For heterogeneous domains we use the paper's
/// formula with `L = max_k n(B_k)` as the System-R rule would.
pub fn estimated_query_size(config: &OttConfig, k: usize) -> f64 {
    let m = config.rows_per_value as f64;
    // Filtered relation k carries ~M rows; nd clamps to min(L_k, M).
    let mut est = m; // rows of the first filtered relation
    for t in 1..k {
        let l = config.distinct_values[t].min(config.distinct_values[t - 1]) as f64;
        let nd = l.min(m);
        est = est * m / nd.max(1.0);
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_common::TableId;
    use reopt_executor::execute_query;
    use reopt_plan::physical::PlanNodeInfo;
    use reopt_plan::{AccessPath, JoinAlgo, PhysicalPlan};

    fn tiny_config() -> OttConfig {
        OttConfig {
            rows_per_value: 5,
            distinct_values: [40, 30, 20, 10, 8, 6],
            seed: 9,
            shuffle: true,
        }
    }

    #[test]
    fn database_shape_follows_config() {
        let cfg = tiny_config();
        let db = build_ott_database(&cfg).unwrap();
        assert_eq!(db.len(), 6);
        let li = db.table_by_name("ott_lineitem").unwrap();
        assert_eq!(li.row_count(), 40 * 5);
        assert!(li.has_index(COL_A));
        assert!(li.has_index(COL_B));
    }

    #[test]
    fn b_equals_a_everywhere() {
        let cfg = tiny_config();
        let db = build_ott_database(&cfg).unwrap();
        for name in OTT_TABLE_NAMES {
            let t = db.table_by_name(name).unwrap();
            assert_eq!(
                t.column(COL_A).unwrap().data(),
                t.column(COL_B).unwrap().data(),
                "B != A in {name}"
            );
        }
    }

    #[test]
    fn each_value_appears_rows_per_value_times() {
        let cfg = tiny_config();
        let db = build_ott_database(&cfg).unwrap();
        let t = db.table_by_name("ott_part").unwrap();
        let mut counts = std::collections::HashMap::new();
        for &v in t.column(COL_A).unwrap().data() {
            *counts.entry(v).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 10);
        assert!(counts.values().all(|&c| c == 5));
    }

    #[test]
    fn suite_counts_match_paper() {
        // (n=5, m=4) → 10 queries; (n=6, m=4) → 30 queries.
        assert_eq!(ott_query_suite(5, 4).len(), 10);
        assert_eq!(ott_query_suite(6, 4).len(), 30);
        // All constants vectors distinct.
        let suite = ott_query_suite(6, 4);
        let set: std::collections::HashSet<_> = suite.iter().collect();
        assert_eq!(set.len(), 30);
    }

    #[test]
    fn true_size_formula_matches_execution() {
        let cfg = tiny_config();
        let db = build_ott_database(&cfg).unwrap();
        // Non-empty 2-table query: all constants 0.
        let q = ott_query(&db, &[0, 0]).unwrap();
        let plan = PhysicalPlan::Join {
            algo: JoinAlgo::Hash,
            left: Box::new(PhysicalPlan::Scan {
                rel: RelId::new(0),
                table: TableId::new(0),
                access: AccessPath::SeqScan,
                info: PlanNodeInfo::default(),
            }),
            right: Box::new(PhysicalPlan::Scan {
                rel: RelId::new(1),
                table: TableId::new(1),
                access: AccessPath::SeqScan,
                info: PlanNodeInfo::default(),
            }),
            keys: vec![(
                ColRef::new(RelId::new(0), COL_B),
                ColRef::new(RelId::new(1), COL_B),
            )],
            info: PlanNodeInfo::default(),
        };
        let rows = execute_query(&db, &q, &plan).unwrap();
        assert_eq!(rows as f64, true_query_size(&cfg, &[0, 0]));
        assert_eq!(true_query_size(&cfg, &[0, 0]), 25.0); // M² = 5²

        // Empty query: mixed constants.
        let q = ott_query(&db, &[0, 1]).unwrap();
        let rows = execute_query(&db, &q, &plan).unwrap();
        assert_eq!(rows, 0);
        assert_eq!(true_query_size(&cfg, &[0, 1]), 0.0);
    }

    #[test]
    fn estimate_is_independent_of_constants() {
        // Lemma 4's punchline is captured by `estimated_query_size` taking
        // only K, never the constants.
        let cfg = tiny_config();
        let e3 = estimated_query_size(&cfg, 3);
        assert!(e3 > 0.0);
        // M = 5, nd clamp 5: est = 5 · (5/5) · (5/5) = 5.
        assert!((e3 - 5.0).abs() < 1e-9);
    }

    /// Appendix C / Example 3: the joint distribution cannot be recovered
    /// from per-relation marginals. Generate (A1, A2) jointly with
    /// p(0,0)=0.1, p(1,1)=0.9; after projecting to marginals (what split
    /// tables preserve), the natural cross-product inference yields
    /// p'(0,0)=0.01, p'(1,1)=0.81 — the "observed" distribution the paper
    /// derives, and the one the OTT join actually produces.
    #[test]
    fn appendix_c_marginals_lose_the_joint_distribution() {
        let n = 10_000usize;
        // True joint: 10% (0,0), 90% (1,1) — deterministic construction.
        let a1: Vec<i64> = (0..n).map(|i| (i >= n / 10) as i64).collect();
        let a2 = a1.clone();
        // Cross product of the marginals (what joining the split tables on
        // a trivially-true key would see): count pairs.
        let count1 = |v: i64| a1.iter().filter(|&&x| x == v).count() as f64 / n as f64;
        let count2 = |v: i64| a2.iter().filter(|&&x| x == v).count() as f64 / n as f64;
        let p00_cross = count1(0) * count2(0);
        let p11_cross = count1(1) * count2(1);
        let p01_cross = count1(0) * count2(1);
        assert!((p00_cross - 0.01).abs() < 1e-9);
        assert!((p11_cross - 0.81).abs() < 1e-9);
        assert!((p01_cross - 0.09).abs() < 1e-9);
        // The true joint differs: p(0,0)=0.1, p(0,1)=0.
        let p00_true = a1
            .iter()
            .zip(&a2)
            .filter(|(x, y)| **x == 0 && **y == 0)
            .count() as f64
            / n as f64;
        let p01_true = a1
            .iter()
            .zip(&a2)
            .filter(|(x, y)| **x == 0 && **y == 1)
            .count() as f64
            / n as f64;
        assert!((p00_true - 0.1).abs() < 1e-9);
        assert_eq!(p01_true, 0.0);
        // Hence Algorithm 2 generates per-relation data with B = A instead
        // of splitting a jointly-generated table (the paper's point).
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = tiny_config();
        let a = build_ott_database(&cfg).unwrap();
        let b = build_ott_database(&cfg).unwrap();
        for name in OTT_TABLE_NAMES {
            assert_eq!(
                a.table_by_name(name).unwrap().column(COL_A).unwrap().data(),
                b.table_by_name(name).unwrap().column(COL_A).unwrap().data()
            );
        }
    }

    #[test]
    fn recommended_ratio_preserves_effective_sample() {
        let c = OttConfig {
            rows_per_value: 20,
            ..Default::default()
        };
        assert!((recommended_sample_ratio(&c) - 0.25).abs() < 1e-12);
        let c = OttConfig {
            rows_per_value: 100,
            ..Default::default()
        };
        assert!((recommended_sample_ratio(&c) - 0.05).abs() < 1e-12);
        let c = OttConfig {
            rows_per_value: 2,
            ..Default::default()
        };
        assert_eq!(recommended_sample_ratio(&c), 1.0);
    }

    #[test]
    fn query_structure_is_a_chain() {
        let cfg = tiny_config();
        let db = build_ott_database(&cfg).unwrap();
        let q = ott_query(&db, &[0, 0, 0, 1, 1]).unwrap();
        assert_eq!(q.num_relations(), 5);
        assert_eq!(q.joins.len(), 4);
        assert!(q.validate(&db).is_ok());
        let g = q.join_graph();
        // Chain: endpoints have degree 1.
        assert_eq!(
            g.neighbors(reopt_common::RelSet::single(RelId::new(0)))
                .len(),
            1
        );
        assert_eq!(
            g.neighbors(reopt_common::RelSet::single(RelId::new(4)))
                .len(),
            1
        );
    }
}
