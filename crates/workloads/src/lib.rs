//! Workload generators and query templates for the paper's evaluation:
//!
//! * [`tpch`] — TPC-H-like schema/data (uniform and skewed z=1) with the
//!   21 query templates of §5.2, including the correlated "hard" set,
//! * [`ott`] — the Optimizer Torture Test of §4,
//! * [`tpcds`] — the TPC-DS-like workload of Appendix A.2 (incl. Q50'),
//! * [`zipf`] — the shared Zipfian sampler (TPCDSkew's `z` knob).

pub mod ott;
pub mod tpcds;
pub mod tpch;
pub mod zipf;

pub use zipf::Zipf;
