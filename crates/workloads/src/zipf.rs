//! Zipf-distributed value sampler.
//!
//! The paper's skewed TPC-H database comes from the Microsoft TPCDSkew
//! generator, which draws each column from a Zipfian distribution with
//! exponent `z` (`z = 0` uniform, `z = 1` for the skewed experiments).
//! This module provides the same knob via an inverse-CDF sampler over a
//! precomputed cumulative table (domains in this workspace are at most a
//! few hundred thousand values, so O(n) precomputation is cheap and
//! sampling is an O(log n) binary search).

use rand::RngExt;
use reopt_common::rng::Rng;

/// A sampler over `0..n` with `P(k) ∝ 1/(k+1)^z`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for domain size `n` and exponent `z ≥ 0`.
    pub fn new(n: usize, z: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(z >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(z);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard the tail against floating-point shortfall.
        if let Some(tail) = cdf.last_mut() {
            *tail = 1.0;
        }
        Zipf { cdf }
    }

    /// Domain size.
    pub fn domain(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one value in `0..n`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        match self.cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability of value `k`.
    pub fn probability(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_common::rng::derive_rng;

    #[test]
    fn uniform_when_z_zero() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.probability(k) - 0.1).abs() < 1e-9);
        }
        assert_eq!(z.domain(), 10);
    }

    #[test]
    fn z_one_matches_harmonic_weights() {
        let z = Zipf::new(4, 1.0);
        let h = 1.0 + 0.5 + 1.0 / 3.0 + 0.25;
        assert!((z.probability(0) - 1.0 / h).abs() < 1e-9);
        assert!((z.probability(1) - 0.5 / h).abs() < 1e-9);
        assert!((z.probability(3) - 0.25 / h).abs() < 1e-9);
    }

    #[test]
    fn sampling_frequency_tracks_probability() {
        let z = Zipf::new(100, 1.0);
        let mut rng = derive_rng(11, "zipf-test");
        let trials = 200_000;
        let mut counts = vec![0u64; 100];
        for _ in 0..trials {
            counts[z.sample(&mut rng)] += 1;
        }
        // Head value ~19%, value 9 ~1.9%.
        let f0 = counts[0] as f64 / trials as f64;
        assert!((f0 - z.probability(0)).abs() < 0.01, "f0 = {f0}");
        let f9 = counts[9] as f64 / trials as f64;
        assert!((f9 - z.probability(9)).abs() < 0.005, "f9 = {f9}");
        // Monotone head-heavy ordering.
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[80]);
    }

    #[test]
    fn all_samples_in_domain() {
        let z = Zipf::new(7, 2.0);
        let mut rng = derive_rng(3, "zipf-domain");
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn single_value_domain() {
        let z = Zipf::new(1, 1.0);
        let mut rng = derive_rng(4, "zipf-single");
        assert_eq!(z.sample(&mut rng), 0);
        assert!((z.probability(0) - 1.0).abs() < 1e-12);
        assert_eq!(z.probability(5), 0.0);
    }
}
