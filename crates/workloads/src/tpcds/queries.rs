//! TPC-DS-like query templates (the paper's Appendix A.2 subset).
//!
//! Sixteen templates named after the TPC-DS queries whose behaviour the
//! paper discusses, plus `q50p` — the paper's hand-tweaked Q50 variant
//! whose shifted dimension predicates interact with the sale→return date
//! correlation and *do* benefit from re-optimization (the paper reports a
//! 57% runtime reduction; everything else re-optimizes to the same plan).

use rand::RngExt;

use crate::tpcds::gen::{NUM_BRANDS, NUM_CATEGORIES};
use crate::tpcds::{cols, tables};
use reopt_common::rng::Rng;
use reopt_common::{Error, Result};
use reopt_plan::query::{AggExpr, AggSpec, ColRef};
use reopt_plan::{Predicate, Query, QueryBuilder};
use reopt_storage::Database;

/// All template names — 29 stock templates (the paper's Appendix A.2
/// count) plus the tweaked `q50p`.
pub const TEMPLATE_NAMES: [&str; 30] = [
    "q3", "q7", "q19", "q25", "q26", "q28", "q29", "q37", "q42", "q43", "q45", "q48", "q50",
    "q50p", "q52", "q53", "q55", "q60", "q61", "q62", "q63", "q65", "q69", "q73", "q84", "q88",
    "q91", "q93", "q96", "q99",
];

/// Template names in order.
pub fn all_template_names() -> &'static [&'static str] {
    &TEMPLATE_NAMES
}

/// The templates that stress correlated estimates (only `q50p`, by
/// construction — the paper found the stock TPC-DS queries well-estimated).
pub fn is_hard_template(name: &str) -> bool {
    name == "q50p"
}

/// Build one randomized instance of template `name`.
pub fn instantiate(db: &Database, name: &str, rng: &mut Rng) -> Result<Query> {
    let _ = db;
    match name {
        "q3" => q3(rng),
        "q7" => q7(rng),
        "q19" => q19(rng),
        "q25" => q25(rng),
        "q26" => q26(rng),
        "q28" => q28(rng),
        "q29" => q29(rng),
        "q37" => q37(rng),
        "q42" => q42(rng),
        "q43" => q43(rng),
        "q45" => q45(rng),
        "q48" => q48(rng),
        "q50" => q50(rng, false),
        "q50p" => q50(rng, true),
        "q52" => q52(rng),
        "q53" => q53(rng),
        "q55" => q55(rng),
        "q60" => q60(rng),
        "q61" => q61(rng),
        "q62" => q62(rng),
        "q63" => q63(rng),
        "q65" => q65(rng),
        "q69" => q69(rng),
        "q73" => q73(rng),
        "q84" => q84(rng),
        "q88" => q88(rng),
        "q91" => q91(rng),
        "q93" => q93(rng),
        "q96" => q96(rng),
        "q99" => q99(rng),
        other => Err(Error::not_found(format!("TPC-DS template `{other}`"))),
    }
}

fn brand(rng: &mut Rng) -> String {
    format!("DSBRAND#{:03}", rng.random_range(0..NUM_BRANDS))
}

fn category(rng: &mut Rng) -> String {
    format!("CAT#{:02}", rng.random_range(0..NUM_CATEGORIES))
}

fn year(rng: &mut Rng) -> i64 {
    rng.random_range(0..7i64)
}

fn moy(rng: &mut Rng) -> i64 {
    rng.random_range(0..12i64)
}

/// ss ⋈ date ⋈ item with brand/month filters (TPC-DS Q3 shape).
fn q3(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ss = qb.add_relation(tables::STORE_SALES);
    let d = qb.add_relation(tables::DATE_DIM);
    let i = qb.add_relation(tables::ITEM);
    qb.add_join(
        ColRef::new(ss, cols::store_sales::SOLD_DATE_SK),
        ColRef::new(d, cols::date_dim::DATE_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::ITEM_SK),
        ColRef::new(i, cols::item::ITEM_SK),
    );
    qb.add_predicate(Predicate::eq(d, cols::date_dim::MOY, moy(rng)));
    qb.add_predicate(Predicate::eq(i, cols::item::BRAND, brand(rng).as_str()));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(d, cols::date_dim::YEAR)],
        aggs: vec![AggExpr::sum(ColRef::new(ss, cols::store_sales::PRICE))],
    });
    Ok(qb.build())
}

/// ss ⋈ date ⋈ item ⋈ store (Q7 shape).
fn q7(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ss = qb.add_relation(tables::STORE_SALES);
    let d = qb.add_relation(tables::DATE_DIM);
    let i = qb.add_relation(tables::ITEM);
    let s = qb.add_relation(tables::STORE);
    qb.add_join(
        ColRef::new(ss, cols::store_sales::SOLD_DATE_SK),
        ColRef::new(d, cols::date_dim::DATE_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::ITEM_SK),
        ColRef::new(i, cols::item::ITEM_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::STORE_SK),
        ColRef::new(s, cols::store::STORE_SK),
    );
    qb.add_predicate(Predicate::eq(d, cols::date_dim::YEAR, year(rng)));
    qb.add_predicate(Predicate::eq(
        i,
        cols::item::CATEGORY,
        category(rng).as_str(),
    ));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(i, cols::item::BRAND)],
        aggs: vec![AggExpr::avg(ColRef::new(ss, cols::store_sales::QUANTITY))],
    });
    Ok(qb.build())
}

/// ss ⋈ date ⋈ item ⋈ customer ⋈ store (Q19 shape).
fn q19(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ss = qb.add_relation(tables::STORE_SALES);
    let d = qb.add_relation(tables::DATE_DIM);
    let i = qb.add_relation(tables::ITEM);
    let c = qb.add_relation(tables::CUSTOMER);
    let s = qb.add_relation(tables::STORE);
    qb.add_join(
        ColRef::new(ss, cols::store_sales::SOLD_DATE_SK),
        ColRef::new(d, cols::date_dim::DATE_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::ITEM_SK),
        ColRef::new(i, cols::item::ITEM_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::CUST_SK),
        ColRef::new(c, cols::customer::CUST_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::STORE_SK),
        ColRef::new(s, cols::store::STORE_SK),
    );
    qb.add_predicate(Predicate::eq(d, cols::date_dim::YEAR, year(rng)));
    qb.add_predicate(Predicate::eq(d, cols::date_dim::MOY, moy(rng)));
    qb.add_predicate(Predicate::eq(
        i,
        cols::item::CATEGORY,
        category(rng).as_str(),
    ));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(i, cols::item::BRAND)],
        aggs: vec![AggExpr::sum(ColRef::new(ss, cols::store_sales::PRICE))],
    });
    Ok(qb.build())
}

/// ss ⋈ sr ⋈ d1 ⋈ d2 ⋈ store (Q25 shape: sale and its return).
fn q25(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ss = qb.add_relation(tables::STORE_SALES);
    let sr = qb.add_relation(tables::STORE_RETURNS);
    let d1 = qb.add_relation(tables::DATE_DIM);
    let d2 = qb.add_relation(tables::DATE_DIM);
    let s = qb.add_relation(tables::STORE);
    qb.add_join(
        ColRef::new(ss, cols::store_sales::ITEM_SK),
        ColRef::new(sr, cols::store_returns::ITEM_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::TICKET),
        ColRef::new(sr, cols::store_returns::TICKET),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::SOLD_DATE_SK),
        ColRef::new(d1, cols::date_dim::DATE_SK),
    );
    qb.add_join(
        ColRef::new(sr, cols::store_returns::RETURNED_DATE_SK),
        ColRef::new(d2, cols::date_dim::DATE_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::STORE_SK),
        ColRef::new(s, cols::store::STORE_SK),
    );
    let y = year(rng);
    qb.add_predicate(Predicate::eq(d1, cols::date_dim::YEAR, y));
    qb.add_predicate(Predicate::eq(d2, cols::date_dim::YEAR, y));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(s, cols::store::STATE)],
        aggs: vec![AggExpr::sum(ColRef::new(
            sr,
            cols::store_returns::RETURN_AMT,
        ))],
    });
    Ok(qb.build())
}

/// Single-table bucketed aggregate (Q28 shape — the paper notes it only
/// touches one table, so re-optimization is a no-op by construction).
fn q28(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ss = qb.add_relation(tables::STORE_SALES);
    let qlo = rng.random_range(1..=80i64);
    qb.add_predicate(Predicate::between(
        ss,
        cols::store_sales::QUANTITY,
        qlo,
        qlo + 19,
    ));
    let plo = rng.random_range(100..40_000i64);
    qb.add_predicate(Predicate::between(
        ss,
        cols::store_sales::PRICE,
        plo,
        plo + 9_999,
    ));
    qb.aggregate(AggSpec {
        group_by: vec![],
        aggs: vec![
            AggExpr::avg(ColRef::new(ss, cols::store_sales::PRICE)),
            AggExpr::count_star(),
        ],
    });
    Ok(qb.build())
}

/// ss ⋈ sr ⋈ d1 ⋈ d2 ⋈ item (Q29 shape).
fn q29(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ss = qb.add_relation(tables::STORE_SALES);
    let sr = qb.add_relation(tables::STORE_RETURNS);
    let d1 = qb.add_relation(tables::DATE_DIM);
    let d2 = qb.add_relation(tables::DATE_DIM);
    let i = qb.add_relation(tables::ITEM);
    qb.add_join(
        ColRef::new(ss, cols::store_sales::ITEM_SK),
        ColRef::new(sr, cols::store_returns::ITEM_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::TICKET),
        ColRef::new(sr, cols::store_returns::TICKET),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::SOLD_DATE_SK),
        ColRef::new(d1, cols::date_dim::DATE_SK),
    );
    qb.add_join(
        ColRef::new(sr, cols::store_returns::RETURNED_DATE_SK),
        ColRef::new(d2, cols::date_dim::DATE_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::ITEM_SK),
        ColRef::new(i, cols::item::ITEM_SK),
    );
    qb.add_predicate(Predicate::eq(d1, cols::date_dim::MOY, moy(rng)));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(i, cols::item::BRAND)],
        aggs: vec![AggExpr::count_star()],
    });
    Ok(qb.build())
}

/// ss ⋈ date ⋈ item (Q42 shape).
fn q42(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ss = qb.add_relation(tables::STORE_SALES);
    let d = qb.add_relation(tables::DATE_DIM);
    let i = qb.add_relation(tables::ITEM);
    qb.add_join(
        ColRef::new(ss, cols::store_sales::SOLD_DATE_SK),
        ColRef::new(d, cols::date_dim::DATE_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::ITEM_SK),
        ColRef::new(i, cols::item::ITEM_SK),
    );
    qb.add_predicate(Predicate::eq(d, cols::date_dim::YEAR, year(rng)));
    qb.add_predicate(Predicate::eq(d, cols::date_dim::MOY, moy(rng)));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(i, cols::item::CATEGORY)],
        aggs: vec![AggExpr::sum(ColRef::new(ss, cols::store_sales::PRICE))],
    });
    Ok(qb.build())
}

/// ss ⋈ date ⋈ store (Q43 shape).
fn q43(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ss = qb.add_relation(tables::STORE_SALES);
    let d = qb.add_relation(tables::DATE_DIM);
    let s = qb.add_relation(tables::STORE);
    qb.add_join(
        ColRef::new(ss, cols::store_sales::SOLD_DATE_SK),
        ColRef::new(d, cols::date_dim::DATE_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::STORE_SK),
        ColRef::new(s, cols::store::STORE_SK),
    );
    qb.add_predicate(Predicate::eq(d, cols::date_dim::YEAR, year(rng)));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(s, cols::store::STATE)],
        aggs: vec![AggExpr::sum(ColRef::new(ss, cols::store_sales::PRICE))],
    });
    Ok(qb.build())
}

/// ws ⋈ item ⋈ date (Q45 shape on the web channel).
fn q45(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ws = qb.add_relation(tables::WEB_SALES);
    let i = qb.add_relation(tables::ITEM);
    let d = qb.add_relation(tables::DATE_DIM);
    qb.add_join(
        ColRef::new(ws, cols::web_sales::ITEM_SK),
        ColRef::new(i, cols::item::ITEM_SK),
    );
    qb.add_join(
        ColRef::new(ws, cols::web_sales::SOLD_DATE_SK),
        ColRef::new(d, cols::date_dim::DATE_SK),
    );
    qb.add_predicate(Predicate::eq(
        d,
        cols::date_dim::QOY,
        rng.random_range(0..4i64),
    ));
    qb.add_predicate(Predicate::eq(d, cols::date_dim::YEAR, year(rng)));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(i, cols::item::CATEGORY)],
        aggs: vec![AggExpr::sum(ColRef::new(ws, cols::web_sales::QUANTITY))],
    });
    Ok(qb.build())
}

/// ss ⋈ store ⋈ date with a quantity band (Q48 shape).
fn q48(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ss = qb.add_relation(tables::STORE_SALES);
    let s = qb.add_relation(tables::STORE);
    let d = qb.add_relation(tables::DATE_DIM);
    qb.add_join(
        ColRef::new(ss, cols::store_sales::STORE_SK),
        ColRef::new(s, cols::store::STORE_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::SOLD_DATE_SK),
        ColRef::new(d, cols::date_dim::DATE_SK),
    );
    let qlo = rng.random_range(1..=60i64);
    qb.add_predicate(Predicate::between(
        ss,
        cols::store_sales::QUANTITY,
        qlo,
        qlo + 39,
    ));
    qb.add_predicate(Predicate::eq(d, cols::date_dim::YEAR, year(rng)));
    qb.aggregate(AggSpec {
        group_by: vec![],
        aggs: vec![AggExpr::sum(ColRef::new(ss, cols::store_sales::QUANTITY))],
    });
    Ok(qb.build())
}

/// Q50 (and the paper's tweaked Q50'): sales joined to their returns,
/// stores, and both date dimensions.
///
/// * `q50` filters only the *return* date (year + month), as in TPC-DS —
///   the optimizer's estimates are accurate and the plan does not change;
/// * `q50p` (`tweaked = true`) also pins the *sale* date to the same
///   month. Returns follow sales by 1–60 days, so the conjunction across
///   the two dimension filters is ~20–40× more selective under AVI than
///   in reality — exactly the correlated-predicate situation the paper
///   manufactured by "modifying the predicates over the dimension tables".
fn q50(rng: &mut Rng, tweaked: bool) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ss = qb.add_relation(tables::STORE_SALES);
    let sr = qb.add_relation(tables::STORE_RETURNS);
    let s = qb.add_relation(tables::STORE);
    let d1 = qb.add_relation(tables::DATE_DIM); // sold
    let d2 = qb.add_relation(tables::DATE_DIM); // returned
    qb.add_join(
        ColRef::new(ss, cols::store_sales::ITEM_SK),
        ColRef::new(sr, cols::store_returns::ITEM_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::TICKET),
        ColRef::new(sr, cols::store_returns::TICKET),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::STORE_SK),
        ColRef::new(s, cols::store::STORE_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::SOLD_DATE_SK),
        ColRef::new(d1, cols::date_dim::DATE_SK),
    );
    qb.add_join(
        ColRef::new(sr, cols::store_returns::RETURNED_DATE_SK),
        ColRef::new(d2, cols::date_dim::DATE_SK),
    );
    let y = year(rng);
    let m = moy(rng);
    qb.add_predicate(Predicate::eq(d2, cols::date_dim::YEAR, y));
    qb.add_predicate(Predicate::eq(d2, cols::date_dim::MOY, m));
    if tweaked {
        qb.add_predicate(Predicate::eq(d1, cols::date_dim::YEAR, y));
        qb.add_predicate(Predicate::eq(d1, cols::date_dim::MOY, m));
    }
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(s, cols::store::STATE)],
        aggs: vec![AggExpr::count_star()],
    });
    Ok(qb.build())
}

/// ss ⋈ date ⋈ item, brand report (Q52 shape).
fn q52(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ss = qb.add_relation(tables::STORE_SALES);
    let d = qb.add_relation(tables::DATE_DIM);
    let i = qb.add_relation(tables::ITEM);
    qb.add_join(
        ColRef::new(ss, cols::store_sales::SOLD_DATE_SK),
        ColRef::new(d, cols::date_dim::DATE_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::ITEM_SK),
        ColRef::new(i, cols::item::ITEM_SK),
    );
    qb.add_predicate(Predicate::eq(d, cols::date_dim::MOY, moy(rng)));
    qb.add_predicate(Predicate::eq(d, cols::date_dim::YEAR, year(rng)));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(i, cols::item::BRAND)],
        aggs: vec![AggExpr::sum(ColRef::new(ss, cols::store_sales::PRICE))],
    });
    Ok(qb.build())
}

/// ss ⋈ date ⋈ item — the paper's "fact with two small dimension tables"
/// (Q55 shape).
fn q55(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ss = qb.add_relation(tables::STORE_SALES);
    let d = qb.add_relation(tables::DATE_DIM);
    let i = qb.add_relation(tables::ITEM);
    qb.add_join(
        ColRef::new(ss, cols::store_sales::SOLD_DATE_SK),
        ColRef::new(d, cols::date_dim::DATE_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::ITEM_SK),
        ColRef::new(i, cols::item::ITEM_SK),
    );
    qb.add_predicate(Predicate::eq(d, cols::date_dim::MOY, moy(rng)));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(i, cols::item::BRAND)],
        aggs: vec![AggExpr::sum(ColRef::new(ss, cols::store_sales::PRICE))],
    });
    Ok(qb.build())
}

/// ws ⋈ warehouse ⋈ ship_mode ⋈ web_site ⋈ date — "a fact table with one
/// small and three tiny dimensions" (Q62 shape).
fn q62(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ws = qb.add_relation(tables::WEB_SALES);
    let w = qb.add_relation(tables::WAREHOUSE);
    let sm = qb.add_relation(tables::SHIP_MODE);
    let site = qb.add_relation(tables::WEB_SITE);
    let d = qb.add_relation(tables::DATE_DIM);
    qb.add_join(
        ColRef::new(ws, cols::web_sales::WAREHOUSE_SK),
        ColRef::new(w, cols::warehouse::WAREHOUSE_SK),
    );
    qb.add_join(
        ColRef::new(ws, cols::web_sales::SHIP_MODE_SK),
        ColRef::new(sm, cols::ship_mode::SHIP_MODE_SK),
    );
    qb.add_join(
        ColRef::new(ws, cols::web_sales::SITE_SK),
        ColRef::new(site, cols::web_site::SITE_SK),
    );
    qb.add_join(
        ColRef::new(ws, cols::web_sales::SOLD_DATE_SK),
        ColRef::new(d, cols::date_dim::DATE_SK),
    );
    qb.add_predicate(Predicate::eq(d, cols::date_dim::YEAR, year(rng)));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(sm, cols::ship_mode::TYPE)],
        aggs: vec![AggExpr::count_star()],
    });
    Ok(qb.build())
}

/// ss ⋈ store ⋈ date counting narrow sales (Q96 shape).
fn q96(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ss = qb.add_relation(tables::STORE_SALES);
    let s = qb.add_relation(tables::STORE);
    let d = qb.add_relation(tables::DATE_DIM);
    qb.add_join(
        ColRef::new(ss, cols::store_sales::STORE_SK),
        ColRef::new(s, cols::store::STORE_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::SOLD_DATE_SK),
        ColRef::new(d, cols::date_dim::DATE_SK),
    );
    qb.add_predicate(Predicate::eq(d, cols::date_dim::MOY, moy(rng)));
    let qlo = rng.random_range(1..=90i64);
    qb.add_predicate(Predicate::between(
        ss,
        cols::store_sales::QUANTITY,
        qlo,
        qlo + 9,
    ));
    qb.aggregate(AggSpec {
        group_by: vec![],
        aggs: vec![AggExpr::count_star()],
    });
    Ok(qb.build())
}

/// ws ⋈ date ⋈ ship_mode ⋈ warehouse (Q99 shape).
fn q99(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ws = qb.add_relation(tables::WEB_SALES);
    let d = qb.add_relation(tables::DATE_DIM);
    let sm = qb.add_relation(tables::SHIP_MODE);
    let w = qb.add_relation(tables::WAREHOUSE);
    qb.add_join(
        ColRef::new(ws, cols::web_sales::SOLD_DATE_SK),
        ColRef::new(d, cols::date_dim::DATE_SK),
    );
    qb.add_join(
        ColRef::new(ws, cols::web_sales::SHIP_MODE_SK),
        ColRef::new(sm, cols::ship_mode::SHIP_MODE_SK),
    );
    qb.add_join(
        ColRef::new(ws, cols::web_sales::WAREHOUSE_SK),
        ColRef::new(w, cols::warehouse::WAREHOUSE_SK),
    );
    qb.add_predicate(Predicate::eq(d, cols::date_dim::YEAR, year(rng)));
    qb.add_predicate(Predicate::eq(
        d,
        cols::date_dim::QOY,
        rng.random_range(0..4i64),
    ));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(sm, cols::ship_mode::TYPE)],
        aggs: vec![AggExpr::count_star()],
    });
    Ok(qb.build())
}

/// ws ⋈ date ⋈ item on the web channel (Q26 shape).
fn q26(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ws = qb.add_relation(tables::WEB_SALES);
    let d = qb.add_relation(tables::DATE_DIM);
    let i = qb.add_relation(tables::ITEM);
    qb.add_join(
        ColRef::new(ws, cols::web_sales::SOLD_DATE_SK),
        ColRef::new(d, cols::date_dim::DATE_SK),
    );
    qb.add_join(
        ColRef::new(ws, cols::web_sales::ITEM_SK),
        ColRef::new(i, cols::item::ITEM_SK),
    );
    qb.add_predicate(Predicate::eq(d, cols::date_dim::YEAR, year(rng)));
    qb.add_predicate(Predicate::eq(
        i,
        cols::item::CATEGORY,
        category(rng).as_str(),
    ));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(i, cols::item::BRAND)],
        aggs: vec![AggExpr::avg(ColRef::new(ws, cols::web_sales::QUANTITY))],
    });
    Ok(qb.build())
}

/// item price-band inventory check (Q37 shape, web channel).
fn q37(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let i = qb.add_relation(tables::ITEM);
    let ws = qb.add_relation(tables::WEB_SALES);
    let d = qb.add_relation(tables::DATE_DIM);
    qb.add_join(
        ColRef::new(i, cols::item::ITEM_SK),
        ColRef::new(ws, cols::web_sales::ITEM_SK),
    );
    qb.add_join(
        ColRef::new(ws, cols::web_sales::SOLD_DATE_SK),
        ColRef::new(d, cols::date_dim::DATE_SK),
    );
    let plo = rng.random_range(100..30_000i64);
    qb.add_predicate(Predicate::between(i, cols::item::PRICE, plo, plo + 10_000));
    qb.add_predicate(Predicate::eq(
        d,
        cols::date_dim::QOY,
        rng.random_range(0..4i64),
    ));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(i, cols::item::BRAND)],
        aggs: vec![AggExpr::count_star()],
    });
    Ok(qb.build())
}

/// ss ⋈ date ⋈ item, manager roll-up (Q53 shape).
fn q53(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ss = qb.add_relation(tables::STORE_SALES);
    let d = qb.add_relation(tables::DATE_DIM);
    let i = qb.add_relation(tables::ITEM);
    qb.add_join(
        ColRef::new(ss, cols::store_sales::SOLD_DATE_SK),
        ColRef::new(d, cols::date_dim::DATE_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::ITEM_SK),
        ColRef::new(i, cols::item::ITEM_SK),
    );
    qb.add_predicate(Predicate::eq(
        d,
        cols::date_dim::QOY,
        rng.random_range(0..4i64),
    ));
    qb.add_predicate(Predicate::eq(i, cols::item::BRAND, brand(rng).as_str()));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(d, cols::date_dim::YEAR)],
        aggs: vec![AggExpr::sum(ColRef::new(ss, cols::store_sales::PRICE))],
    });
    Ok(qb.build())
}

/// category revenue in a month (Q60 shape, store channel).
fn q60(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ss = qb.add_relation(tables::STORE_SALES);
    let d = qb.add_relation(tables::DATE_DIM);
    let i = qb.add_relation(tables::ITEM);
    qb.add_join(
        ColRef::new(ss, cols::store_sales::SOLD_DATE_SK),
        ColRef::new(d, cols::date_dim::DATE_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::ITEM_SK),
        ColRef::new(i, cols::item::ITEM_SK),
    );
    qb.add_predicate(Predicate::eq(d, cols::date_dim::MOY, moy(rng)));
    qb.add_predicate(Predicate::eq(
        i,
        cols::item::CATEGORY,
        category(rng).as_str(),
    ));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(i, cols::item::ITEM_SK)],
        aggs: vec![AggExpr::sum(ColRef::new(ss, cols::store_sales::PRICE))],
    });
    Ok(qb.build())
}

/// ss ⋈ store ⋈ date ⋈ item (Q61 shape, promotional revenue ratio core).
fn q61(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ss = qb.add_relation(tables::STORE_SALES);
    let s = qb.add_relation(tables::STORE);
    let d = qb.add_relation(tables::DATE_DIM);
    let i = qb.add_relation(tables::ITEM);
    qb.add_join(
        ColRef::new(ss, cols::store_sales::STORE_SK),
        ColRef::new(s, cols::store::STORE_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::SOLD_DATE_SK),
        ColRef::new(d, cols::date_dim::DATE_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::ITEM_SK),
        ColRef::new(i, cols::item::ITEM_SK),
    );
    qb.add_predicate(Predicate::eq(d, cols::date_dim::YEAR, year(rng)));
    qb.add_predicate(Predicate::eq(d, cols::date_dim::MOY, moy(rng)));
    qb.add_predicate(Predicate::eq(
        i,
        cols::item::CATEGORY,
        category(rng).as_str(),
    ));
    qb.aggregate(AggSpec {
        group_by: vec![],
        aggs: vec![AggExpr::sum(ColRef::new(ss, cols::store_sales::PRICE))],
    });
    Ok(qb.build())
}

/// ss ⋈ date ⋈ item, brand by month (Q63 shape).
fn q63(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ss = qb.add_relation(tables::STORE_SALES);
    let d = qb.add_relation(tables::DATE_DIM);
    let i = qb.add_relation(tables::ITEM);
    qb.add_join(
        ColRef::new(ss, cols::store_sales::SOLD_DATE_SK),
        ColRef::new(d, cols::date_dim::DATE_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::ITEM_SK),
        ColRef::new(i, cols::item::ITEM_SK),
    );
    qb.add_predicate(Predicate::eq(i, cols::item::BRAND, brand(rng).as_str()));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(d, cols::date_dim::MOY)],
        aggs: vec![AggExpr::sum(ColRef::new(ss, cols::store_sales::PRICE))],
    });
    Ok(qb.build())
}

/// ss ⋈ store ⋈ item per-item revenue extremes (Q65 shape — the paper
/// discusses its fact-dominant join).
fn q65(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ss = qb.add_relation(tables::STORE_SALES);
    let s = qb.add_relation(tables::STORE);
    let i = qb.add_relation(tables::ITEM);
    qb.add_join(
        ColRef::new(ss, cols::store_sales::STORE_SK),
        ColRef::new(s, cols::store::STORE_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::ITEM_SK),
        ColRef::new(i, cols::item::ITEM_SK),
    );
    qb.add_predicate(Predicate::eq(
        i,
        cols::item::CATEGORY,
        category(rng).as_str(),
    ));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(i, cols::item::BRAND)],
        aggs: vec![
            AggExpr::min(ColRef::new(ss, cols::store_sales::PRICE)),
            AggExpr::max(ColRef::new(ss, cols::store_sales::PRICE)),
        ],
    });
    Ok(qb.build())
}

/// customer cohort purchases (Q69 shape).
fn q69(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let c = qb.add_relation(tables::CUSTOMER);
    let ss = qb.add_relation(tables::STORE_SALES);
    let d = qb.add_relation(tables::DATE_DIM);
    qb.add_join(
        ColRef::new(c, cols::customer::CUST_SK),
        ColRef::new(ss, cols::store_sales::CUST_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::SOLD_DATE_SK),
        ColRef::new(d, cols::date_dim::DATE_SK),
    );
    let by = rng.random_range(1930..1990i64);
    qb.add_predicate(Predicate::between(
        c,
        cols::customer::BIRTH_YEAR,
        by,
        by + 10,
    ));
    qb.add_predicate(Predicate::eq(
        d,
        cols::date_dim::QOY,
        rng.random_range(0..4i64),
    ));
    qb.aggregate(AggSpec {
        group_by: vec![],
        aggs: vec![AggExpr::count_star()],
    });
    Ok(qb.build())
}

/// frequent-shopper count (Q73 shape).
fn q73(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ss = qb.add_relation(tables::STORE_SALES);
    let d = qb.add_relation(tables::DATE_DIM);
    let s = qb.add_relation(tables::STORE);
    let c = qb.add_relation(tables::CUSTOMER);
    qb.add_join(
        ColRef::new(ss, cols::store_sales::SOLD_DATE_SK),
        ColRef::new(d, cols::date_dim::DATE_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::STORE_SK),
        ColRef::new(s, cols::store::STORE_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::CUST_SK),
        ColRef::new(c, cols::customer::CUST_SK),
    );
    qb.add_predicate(Predicate::eq(d, cols::date_dim::YEAR, year(rng)));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(c, cols::customer::CUST_SK)],
        aggs: vec![AggExpr::count_star()],
    });
    Ok(qb.build())
}

/// returns joined back to customers (Q84 shape via the sales bridge).
fn q84(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ss = qb.add_relation(tables::STORE_SALES);
    let sr = qb.add_relation(tables::STORE_RETURNS);
    let c = qb.add_relation(tables::CUSTOMER);
    qb.add_join(
        ColRef::new(ss, cols::store_sales::ITEM_SK),
        ColRef::new(sr, cols::store_returns::ITEM_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::TICKET),
        ColRef::new(sr, cols::store_returns::TICKET),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::CUST_SK),
        ColRef::new(c, cols::customer::CUST_SK),
    );
    let by = rng.random_range(1930..1995i64);
    qb.add_predicate(Predicate::between(
        c,
        cols::customer::BIRTH_YEAR,
        by,
        by + 5,
    ));
    qb.aggregate(AggSpec {
        group_by: vec![],
        aggs: vec![AggExpr::count_star()],
    });
    Ok(qb.build())
}

/// single-table time-band counts (Q88 shape).
fn q88(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ss = qb.add_relation(tables::STORE_SALES);
    let qlo = rng.random_range(1..=50i64);
    qb.add_predicate(Predicate::between(
        ss,
        cols::store_sales::QUANTITY,
        qlo,
        qlo + 9,
    ));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(ss, cols::store_sales::STORE_SK)],
        aggs: vec![AggExpr::count_star()],
    });
    Ok(qb.build())
}

/// returns by month (Q91 shape: store_returns ⋈ date ⋈ item).
fn q91(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let sr = qb.add_relation(tables::STORE_RETURNS);
    let d = qb.add_relation(tables::DATE_DIM);
    let i = qb.add_relation(tables::ITEM);
    qb.add_join(
        ColRef::new(sr, cols::store_returns::RETURNED_DATE_SK),
        ColRef::new(d, cols::date_dim::DATE_SK),
    );
    qb.add_join(
        ColRef::new(sr, cols::store_returns::ITEM_SK),
        ColRef::new(i, cols::item::ITEM_SK),
    );
    qb.add_predicate(Predicate::eq(d, cols::date_dim::YEAR, year(rng)));
    qb.add_predicate(Predicate::eq(d, cols::date_dim::MOY, moy(rng)));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(i, cols::item::CATEGORY)],
        aggs: vec![AggExpr::sum(ColRef::new(
            sr,
            cols::store_returns::RETURN_AMT,
        ))],
    });
    Ok(qb.build())
}

/// actual sales after returns (Q93 shape: ss ⋈ sr ⋈ item).
fn q93(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ss = qb.add_relation(tables::STORE_SALES);
    let sr = qb.add_relation(tables::STORE_RETURNS);
    let i = qb.add_relation(tables::ITEM);
    qb.add_join(
        ColRef::new(ss, cols::store_sales::ITEM_SK),
        ColRef::new(sr, cols::store_returns::ITEM_SK),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::TICKET),
        ColRef::new(sr, cols::store_returns::TICKET),
    );
    qb.add_join(
        ColRef::new(ss, cols::store_sales::ITEM_SK),
        ColRef::new(i, cols::item::ITEM_SK),
    );
    qb.add_predicate(Predicate::eq(i, cols::item::BRAND, brand(rng).as_str()));
    qb.aggregate(AggSpec {
        group_by: vec![],
        aggs: vec![AggExpr::sum(ColRef::new(ss, cols::store_sales::PRICE))],
    });
    Ok(qb.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcds::gen::{build_tpcds_database, TpcdsConfig};
    use reopt_common::rng::derive_rng_indexed;

    fn db() -> Database {
        build_tpcds_database(&TpcdsConfig {
            scale: 0.05,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn all_templates_instantiate_and_validate() {
        let db = db();
        for name in all_template_names() {
            for inst in 0..2u64 {
                let mut rng = derive_rng_indexed(2, name, inst);
                let q = instantiate(&db, name, &mut rng).unwrap_or_else(|e| panic!("{name}: {e}"));
                q.validate(&db)
                    .unwrap_or_else(|e| panic!("{name} instance {inst}: {e}"));
            }
        }
    }

    #[test]
    fn q50_variants_differ_only_in_d1_predicates() {
        let db = db();
        let mut r1 = derive_rng_indexed(2, "q50", 0);
        let mut r2 = derive_rng_indexed(2, "q50", 0);
        let plain = instantiate(&db, "q50", &mut r1).unwrap();
        let tweaked = instantiate(&db, "q50p", &mut r2).unwrap();
        assert_eq!(plain.joins, tweaked.joins);
        let count_preds =
            |q: &Query| -> usize { (0..q.num_relations()).map(|i| q.local[i].len()).sum() };
        assert_eq!(count_preds(&tweaked), count_preds(&plain) + 2);
    }

    #[test]
    fn only_q50p_is_hard() {
        for n in all_template_names() {
            assert_eq!(is_hard_template(n), *n == "q50p", "{n}");
        }
    }

    #[test]
    fn q28_is_single_table() {
        let db = db();
        let mut rng = derive_rng_indexed(2, "q28", 0);
        let q = instantiate(&db, "q28", &mut rng).unwrap();
        assert_eq!(q.num_relations(), 1);
    }

    #[test]
    fn unknown_template_errors() {
        let db = db();
        let mut rng = derive_rng_indexed(2, "x", 0);
        assert!(instantiate(&db, "q1", &mut rng).is_err());
    }
}
