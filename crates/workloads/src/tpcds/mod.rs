//! TPC-DS-like benchmark workload (Appendix A.2 of the paper).
//!
//! A star/snowflake subset: two fact tables (`store_sales`, `web_sales`),
//! a returns fact (`store_returns`) generated *from* store sales so the
//! (item, ticket) linkage and the sold-to-returned date correlation are
//! real, plus the dimensions the paper's discussed queries touch
//! (`date_dim`, `item`, `store`, `customer`, `warehouse`, `ship_mode`,
//! `web_site`).
//!
//! Query templates model the subset of the paper's 29 TPC-DS queries whose
//! behaviour Appendix A.2 analyses — including `q50` (accurate estimates,
//! no plan change) and the paper's hand-tweaked `q50p` variant whose
//! correlated date windows re-optimization *does* improve by ~2×.

pub mod gen;
pub mod queries;

pub use gen::{build_tpcds_database, TpcdsConfig};
pub use queries::{all_template_names, instantiate, is_hard_template};

use reopt_common::TableId;

/// Fixed table ids, in generation order.
pub mod tables {
    use super::TableId;
    /// `date_dim`
    pub const DATE_DIM: TableId = TableId::new(0);
    /// `item`
    pub const ITEM: TableId = TableId::new(1);
    /// `store`
    pub const STORE: TableId = TableId::new(2);
    /// `customer`
    pub const CUSTOMER: TableId = TableId::new(3);
    /// `warehouse`
    pub const WAREHOUSE: TableId = TableId::new(4);
    /// `ship_mode`
    pub const SHIP_MODE: TableId = TableId::new(5);
    /// `web_site`
    pub const WEB_SITE: TableId = TableId::new(6);
    /// `store_sales`
    pub const STORE_SALES: TableId = TableId::new(7);
    /// `store_returns`
    pub const STORE_RETURNS: TableId = TableId::new(8);
    /// `web_sales`
    pub const WEB_SALES: TableId = TableId::new(9);
}

/// Column positions per table.
pub mod cols {
    use reopt_common::ColId;

    /// `date_dim` columns.
    pub mod date_dim {
        use super::ColId;
        /// Surrogate key = day number.
        pub const DATE_SK: ColId = ColId::new(0);
        /// Year 0..=6.
        pub const YEAR: ColId = ColId::new(1);
        /// Month of year 0..=11.
        pub const MOY: ColId = ColId::new(2);
        /// Quarter of year 0..=3.
        pub const QOY: ColId = ColId::new(3);
    }

    /// `item` columns.
    pub mod item {
        use super::ColId;
        /// Surrogate key.
        pub const ITEM_SK: ColId = ColId::new(0);
        /// Brand (dict, 50 values).
        pub const BRAND: ColId = ColId::new(1);
        /// Category (dict, 10 values).
        pub const CATEGORY: ColId = ColId::new(2);
        /// Current price (cents).
        pub const PRICE: ColId = ColId::new(3);
    }

    /// `store` columns.
    pub mod store {
        use super::ColId;
        /// Surrogate key.
        pub const STORE_SK: ColId = ColId::new(0);
        /// State (dict, 10 values).
        pub const STATE: ColId = ColId::new(1);
    }

    /// `customer` columns.
    pub mod customer {
        use super::ColId;
        /// Surrogate key.
        pub const CUST_SK: ColId = ColId::new(0);
        /// Birth year.
        pub const BIRTH_YEAR: ColId = ColId::new(1);
    }

    /// `warehouse` columns.
    pub mod warehouse {
        use super::ColId;
        /// Surrogate key.
        pub const WAREHOUSE_SK: ColId = ColId::new(0);
    }

    /// `ship_mode` columns.
    pub mod ship_mode {
        use super::ColId;
        /// Surrogate key.
        pub const SHIP_MODE_SK: ColId = ColId::new(0);
        /// Type (dict, 5 values).
        pub const TYPE: ColId = ColId::new(1);
    }

    /// `web_site` columns.
    pub mod web_site {
        use super::ColId;
        /// Surrogate key.
        pub const SITE_SK: ColId = ColId::new(0);
    }

    /// `store_sales` columns.
    pub mod store_sales {
        use super::ColId;
        /// FK → date_dim (sold date).
        pub const SOLD_DATE_SK: ColId = ColId::new(0);
        /// FK → item.
        pub const ITEM_SK: ColId = ColId::new(1);
        /// FK → store.
        pub const STORE_SK: ColId = ColId::new(2);
        /// FK → customer.
        pub const CUST_SK: ColId = ColId::new(3);
        /// Ticket number (shared with the matching return).
        pub const TICKET: ColId = ColId::new(4);
        /// Quantity.
        pub const QUANTITY: ColId = ColId::new(5);
        /// Sales price (cents).
        pub const PRICE: ColId = ColId::new(6);
    }

    /// `store_returns` columns.
    pub mod store_returns {
        use super::ColId;
        /// FK → date_dim (returned date; correlated with the sale date).
        pub const RETURNED_DATE_SK: ColId = ColId::new(0);
        /// FK → item (matches the sale's item).
        pub const ITEM_SK: ColId = ColId::new(1);
        /// Ticket number (matches the sale's ticket).
        pub const TICKET: ColId = ColId::new(2);
        /// Return amount (cents).
        pub const RETURN_AMT: ColId = ColId::new(3);
    }

    /// `web_sales` columns.
    pub mod web_sales {
        use super::ColId;
        /// FK → date_dim.
        pub const SOLD_DATE_SK: ColId = ColId::new(0);
        /// FK → item.
        pub const ITEM_SK: ColId = ColId::new(1);
        /// FK → warehouse.
        pub const WAREHOUSE_SK: ColId = ColId::new(2);
        /// FK → ship_mode.
        pub const SHIP_MODE_SK: ColId = ColId::new(3);
        /// FK → web_site.
        pub const SITE_SK: ColId = ColId::new(4);
        /// Quantity.
        pub const QUANTITY: ColId = ColId::new(5);
    }
}

/// Days in the date dimension (7 years).
pub const DATE_DOMAIN_DAYS: i64 = 7 * 365;
