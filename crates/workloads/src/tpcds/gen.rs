//! TPC-DS-like data generation.

use rand::RngExt;

use crate::tpcds::{cols, DATE_DOMAIN_DAYS};
use crate::zipf::Zipf;
use reopt_common::rng::derive_rng;
use reopt_common::Result;
use reopt_storage::{Column, ColumnDef, Database, LogicalType, Table, TableSchema};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TpcdsConfig {
    /// Fraction of the reference size (1.0 → store_sales ≈ 120 k rows).
    pub scale: f64,
    /// Zipf exponent for item/customer popularity.
    pub zipf_z: f64,
    /// Fraction of store sales that get returned.
    pub return_rate: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for TpcdsConfig {
    fn default() -> Self {
        TpcdsConfig {
            scale: 1.0,
            zipf_z: 0.0,
            return_rate: 0.10,
            seed: 0xd5,
        }
    }
}

/// Number of item brands.
pub const NUM_BRANDS: usize = 50;
/// Number of item categories.
pub const NUM_CATEGORIES: usize = 10;
/// Number of store states.
pub const NUM_STATES: usize = 10;
/// Number of ship-mode types.
pub const NUM_SM_TYPES: usize = 5;

/// Build the TPC-DS-like database.
pub fn build_tpcds_database(config: &TpcdsConfig) -> Result<Database> {
    let s = config.scale.max(0.01);
    let n_items = ((2000.0 * s) as usize).max(50);
    let n_stores = 12usize;
    let n_customers = ((5000.0 * s) as usize).max(50);
    let n_warehouses = 5usize;
    let n_ship_modes = 20usize;
    let n_web_sites = 10usize;
    let n_store_sales = ((120_000.0 * s) as usize).max(500);
    let n_web_sales = ((30_000.0 * s) as usize).max(200);

    let mut db = Database::new();
    let int = |v: Vec<i64>| Column::from_i64(LogicalType::Int, v);
    let date = |v: Vec<i64>| Column::from_i64(LogicalType::Date, v);
    let money = |v: Vec<i64>| Column::from_i64(LogicalType::Money, v);

    // --- date_dim --------------------------------------------------------
    db.add_table_with(|id| {
        let schema = TableSchema::new(vec![
            ColumnDef::new("d_date_sk", LogicalType::Int),
            ColumnDef::new("d_year", LogicalType::Int),
            ColumnDef::new("d_moy", LogicalType::Int),
            ColumnDef::new("d_qoy", LogicalType::Int),
        ])?;
        let days: Vec<i64> = (0..DATE_DOMAIN_DAYS).collect();
        let mut t = Table::new(
            id,
            "date_dim",
            schema,
            vec![
                int(days.clone()),
                int(days.iter().map(|d| d / 365).collect()),
                int(days.iter().map(|d| (d % 365) / 31).collect()),
                int(days.iter().map(|d| ((d % 365) / 31) / 3).collect()),
            ],
        )?;
        t.create_index(cols::date_dim::DATE_SK)?;
        t.create_index(cols::date_dim::YEAR)?;
        Ok(t)
    })?;

    // --- item ------------------------------------------------------------
    {
        let mut rng = derive_rng(config.seed, "item");
        let brands: Vec<String> = (0..NUM_BRANDS).map(|i| format!("DSBRAND#{i:03}")).collect();
        let cats: Vec<String> = (0..NUM_CATEGORIES).map(|i| format!("CAT#{i:02}")).collect();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("i_item_sk", LogicalType::Int),
                ColumnDef::new("i_brand", LogicalType::Dict),
                ColumnDef::new("i_category", LogicalType::Dict),
                ColumnDef::new("i_price", LogicalType::Money),
            ])?;
            let bcol: Vec<&str> = (0..n_items)
                .map(|_| brands[rng.random_range(0..NUM_BRANDS)].as_str())
                .collect();
            let ccol: Vec<&str> = (0..n_items)
                .map(|_| cats[rng.random_range(0..NUM_CATEGORIES)].as_str())
                .collect();
            let mut t = Table::new(
                id,
                "item",
                schema,
                vec![
                    int((0..n_items as i64).collect()),
                    Column::from_strings(&bcol),
                    Column::from_strings(&ccol),
                    money(
                        (0..n_items)
                            .map(|_| rng.random_range(100..50_000i64))
                            .collect(),
                    ),
                ],
            )?;
            t.create_index(cols::item::ITEM_SK)?;
            t.create_index(cols::item::BRAND)?;
            t.create_index(cols::item::CATEGORY)?;
            Ok(t)
        })?;
    }

    // --- store -----------------------------------------------------------
    {
        let mut rng = derive_rng(config.seed, "store");
        let states: Vec<String> = (0..NUM_STATES).map(|i| format!("ST{i:02}")).collect();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("s_store_sk", LogicalType::Int),
                ColumnDef::new("s_state", LogicalType::Dict),
            ])?;
            let scol: Vec<&str> = (0..n_stores)
                .map(|_| states[rng.random_range(0..NUM_STATES)].as_str())
                .collect();
            let mut t = Table::new(
                id,
                "store",
                schema,
                vec![
                    int((0..n_stores as i64).collect()),
                    Column::from_strings(&scol),
                ],
            )?;
            t.create_index(cols::store::STORE_SK)?;
            Ok(t)
        })?;
    }

    // --- customer --------------------------------------------------------
    {
        let mut rng = derive_rng(config.seed, "ds-customer");
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("c_customer_sk", LogicalType::Int),
                ColumnDef::new("c_birth_year", LogicalType::Int),
            ])?;
            let mut t = Table::new(
                id,
                "ds_customer",
                schema,
                vec![
                    int((0..n_customers as i64).collect()),
                    int((0..n_customers)
                        .map(|_| rng.random_range(1930..2005i64))
                        .collect()),
                ],
            )?;
            t.create_index(cols::customer::CUST_SK)?;
            Ok(t)
        })?;
    }

    // --- warehouse / ship_mode / web_site ---------------------------------
    db.add_table_with(|id| {
        let schema = TableSchema::new(vec![ColumnDef::new("w_warehouse_sk", LogicalType::Int)])?;
        let mut t = Table::new(
            id,
            "warehouse",
            schema,
            vec![int((0..n_warehouses as i64).collect())],
        )?;
        t.create_index(cols::warehouse::WAREHOUSE_SK)?;
        Ok(t)
    })?;
    {
        let mut rng = derive_rng(config.seed, "ship_mode");
        let types: Vec<String> = (0..NUM_SM_TYPES).map(|i| format!("SMTYPE#{i}")).collect();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("sm_ship_mode_sk", LogicalType::Int),
                ColumnDef::new("sm_type", LogicalType::Dict),
            ])?;
            let tcol: Vec<&str> = (0..n_ship_modes)
                .map(|_| types[rng.random_range(0..NUM_SM_TYPES)].as_str())
                .collect();
            let mut t = Table::new(
                id,
                "ship_mode",
                schema,
                vec![
                    int((0..n_ship_modes as i64).collect()),
                    Column::from_strings(&tcol),
                ],
            )?;
            t.create_index(cols::ship_mode::SHIP_MODE_SK)?;
            Ok(t)
        })?;
    }
    db.add_table_with(|id| {
        let schema = TableSchema::new(vec![ColumnDef::new("web_site_sk", LogicalType::Int)])?;
        let mut t = Table::new(
            id,
            "web_site",
            schema,
            vec![int((0..n_web_sites as i64).collect())],
        )?;
        t.create_index(cols::web_site::SITE_SK)?;
        Ok(t)
    })?;

    // --- store_sales + store_returns --------------------------------------
    {
        let mut rng = derive_rng(config.seed, "store_sales");
        let item_dist = Zipf::new(n_items, config.zipf_z);
        let cust_dist = Zipf::new(n_customers, config.zipf_z);
        let mut sold = Vec::with_capacity(n_store_sales);
        let mut item = Vec::with_capacity(n_store_sales);
        let mut store = Vec::with_capacity(n_store_sales);
        let mut cust = Vec::with_capacity(n_store_sales);
        let mut ticket = Vec::with_capacity(n_store_sales);
        let mut qty = Vec::with_capacity(n_store_sales);
        let mut price = Vec::with_capacity(n_store_sales);
        // Returns are derived from sales: matching (item, ticket) and a
        // returned date 1..=60 days after the sale — the correlation the
        // q50p experiment leans on.
        let mut r_date = Vec::new();
        let mut r_item = Vec::new();
        let mut r_ticket = Vec::new();
        let mut r_amt = Vec::new();
        for k in 0..n_store_sales {
            let d = rng.random_range(0..DATE_DOMAIN_DAYS - 61);
            sold.push(d);
            let it = item_dist.sample(&mut rng) as i64;
            item.push(it);
            store.push(rng.random_range(0..n_stores as i64));
            cust.push(cust_dist.sample(&mut rng) as i64);
            ticket.push(k as i64);
            qty.push(rng.random_range(1..=100i64));
            price.push(rng.random_range(100..50_000i64));
            if rng.random_bool(config.return_rate.clamp(0.0, 1.0)) {
                r_date.push(d + rng.random_range(1..=60i64));
                r_item.push(it);
                r_ticket.push(k as i64);
                r_amt.push(rng.random_range(100..50_000i64));
            }
        }
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("ss_sold_date_sk", LogicalType::Date),
                ColumnDef::new("ss_item_sk", LogicalType::Int),
                ColumnDef::new("ss_store_sk", LogicalType::Int),
                ColumnDef::new("ss_customer_sk", LogicalType::Int),
                ColumnDef::new("ss_ticket_number", LogicalType::Int),
                ColumnDef::new("ss_quantity", LogicalType::Int),
                ColumnDef::new("ss_sales_price", LogicalType::Money),
            ])?;
            let mut t = Table::new(
                id,
                "store_sales",
                schema,
                vec![
                    date(sold.clone()),
                    int(item.clone()),
                    int(store.clone()),
                    int(cust.clone()),
                    int(ticket.clone()),
                    int(qty.clone()),
                    money(price.clone()),
                ],
            )?;
            t.create_index(cols::store_sales::SOLD_DATE_SK)?;
            t.create_index(cols::store_sales::ITEM_SK)?;
            t.create_index(cols::store_sales::STORE_SK)?;
            t.create_index(cols::store_sales::CUST_SK)?;
            t.create_index(cols::store_sales::TICKET)?;
            Ok(t)
        })?;
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("sr_returned_date_sk", LogicalType::Date),
                ColumnDef::new("sr_item_sk", LogicalType::Int),
                ColumnDef::new("sr_ticket_number", LogicalType::Int),
                ColumnDef::new("sr_return_amt", LogicalType::Money),
            ])?;
            let mut t = Table::new(
                id,
                "store_returns",
                schema,
                vec![
                    date(r_date.clone()),
                    int(r_item.clone()),
                    int(r_ticket.clone()),
                    money(r_amt.clone()),
                ],
            )?;
            t.create_index(cols::store_returns::ITEM_SK)?;
            t.create_index(cols::store_returns::TICKET)?;
            Ok(t)
        })?;
    }

    // --- web_sales ---------------------------------------------------------
    {
        let mut rng = derive_rng(config.seed, "web_sales");
        let item_dist = Zipf::new(n_items, config.zipf_z);
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("ws_sold_date_sk", LogicalType::Date),
                ColumnDef::new("ws_item_sk", LogicalType::Int),
                ColumnDef::new("ws_warehouse_sk", LogicalType::Int),
                ColumnDef::new("ws_ship_mode_sk", LogicalType::Int),
                ColumnDef::new("ws_web_site_sk", LogicalType::Int),
                ColumnDef::new("ws_quantity", LogicalType::Int),
            ])?;
            let mut t = Table::new(
                id,
                "web_sales",
                schema,
                vec![
                    date(
                        (0..n_web_sales)
                            .map(|_| rng.random_range(0..DATE_DOMAIN_DAYS))
                            .collect(),
                    ),
                    int((0..n_web_sales)
                        .map(|_| item_dist.sample(&mut rng) as i64)
                        .collect()),
                    int((0..n_web_sales)
                        .map(|_| rng.random_range(0..n_warehouses as i64))
                        .collect()),
                    int((0..n_web_sales)
                        .map(|_| rng.random_range(0..n_ship_modes as i64))
                        .collect()),
                    int((0..n_web_sales)
                        .map(|_| rng.random_range(0..n_web_sites as i64))
                        .collect()),
                    int((0..n_web_sales)
                        .map(|_| rng.random_range(1..=100i64))
                        .collect()),
                ],
            )?;
            t.create_index(cols::web_sales::ITEM_SK)?;
            t.create_index(cols::web_sales::SOLD_DATE_SK)?;
            Ok(t)
        })?;
    }

    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcds::tables;

    fn tiny() -> TpcdsConfig {
        TpcdsConfig {
            scale: 0.05,
            ..Default::default()
        }
    }

    #[test]
    fn ids_and_names_line_up() {
        let db = build_tpcds_database(&tiny()).unwrap();
        assert_eq!(db.table_id("date_dim").unwrap(), tables::DATE_DIM);
        assert_eq!(db.table_id("item").unwrap(), tables::ITEM);
        assert_eq!(db.table_id("store").unwrap(), tables::STORE);
        assert_eq!(db.table_id("ds_customer").unwrap(), tables::CUSTOMER);
        assert_eq!(db.table_id("warehouse").unwrap(), tables::WAREHOUSE);
        assert_eq!(db.table_id("ship_mode").unwrap(), tables::SHIP_MODE);
        assert_eq!(db.table_id("web_site").unwrap(), tables::WEB_SITE);
        assert_eq!(db.table_id("store_sales").unwrap(), tables::STORE_SALES);
        assert_eq!(db.table_id("store_returns").unwrap(), tables::STORE_RETURNS);
        assert_eq!(db.table_id("web_sales").unwrap(), tables::WEB_SALES);
    }

    #[test]
    fn returns_match_sales() {
        let db = build_tpcds_database(&tiny()).unwrap();
        let ss = db.table(tables::STORE_SALES).unwrap();
        let sr = db.table(tables::STORE_RETURNS).unwrap();
        // ~10% return rate.
        let ratio = sr.row_count() as f64 / ss.row_count() as f64;
        assert!((0.05..0.15).contains(&ratio), "return ratio {ratio}");
        // Every return's ticket refers to a sale with the same item, and
        // the returned date is 1..=60 days after the sale.
        let ss_item = ss.column(cols::store_sales::ITEM_SK).unwrap().data();
        let ss_date = ss.column(cols::store_sales::SOLD_DATE_SK).unwrap().data();
        let sr_item = sr.column(cols::store_returns::ITEM_SK).unwrap().data();
        let sr_ticket = sr.column(cols::store_returns::TICKET).unwrap().data();
        let sr_date = sr
            .column(cols::store_returns::RETURNED_DATE_SK)
            .unwrap()
            .data();
        for i in 0..sr.row_count() {
            let sale_row = sr_ticket[i] as usize; // tickets are row ids
            assert_eq!(sr_item[i], ss_item[sale_row]);
            let gap = sr_date[i] - ss_date[sale_row];
            assert!((1..=60).contains(&gap), "gap {gap}");
        }
    }

    #[test]
    fn date_dim_covers_domain() {
        let db = build_tpcds_database(&tiny()).unwrap();
        let dd = db.table(tables::DATE_DIM).unwrap();
        assert_eq!(dd.row_count() as i64, DATE_DOMAIN_DAYS);
        let years = dd.column(cols::date_dim::YEAR).unwrap().data();
        assert_eq!(years[0], 0);
        assert_eq!(years[(DATE_DOMAIN_DAYS - 1) as usize], 6);
    }

    #[test]
    fn deterministic() {
        let a = build_tpcds_database(&tiny()).unwrap();
        let b = build_tpcds_database(&tiny()).unwrap();
        assert_eq!(
            a.table(tables::STORE_SALES)
                .unwrap()
                .column(cols::store_sales::ITEM_SK)
                .unwrap()
                .data(),
            b.table(tables::STORE_SALES)
                .unwrap()
                .column(cols::store_sales::ITEM_SK)
                .unwrap()
                .data()
        );
    }
}
