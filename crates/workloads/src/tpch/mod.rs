//! TPC-H-like benchmark workload.
//!
//! A scaled-down analogue of the TPC-H schema, data distributions and the
//! 21 query templates the paper evaluates (Q15 is excluded there too). Two
//! properties matter for reproducing the paper, and both are explicit
//! here:
//!
//! 1. **Skew** — the generator takes the TPCDSkew `z` parameter; `z = 0`
//!    reproduces the uniform database of Figure 4, `z = 1` the skewed one
//!    of Figure 7.
//! 2. **Correlations** — the paper attributes its big wins (Q8, Q9, Q21)
//!    to predicates whose correlation defeats histogram+AVI estimation.
//!    The generator builds the same mechanism in: `l_receiptdate` tracks
//!    `l_shipdate`, `p_container`/`p_type` track `p_brand`, `l_shipmode`
//!    tracks `o_orderpriority`. The "hard" templates place conjunctions
//!    across these pairs; the easy ones avoid them (DESIGN.md §2).

pub mod gen;
pub mod queries;

pub use gen::{build_tpch_database, TpchConfig};
pub use queries::{all_template_names, instantiate, is_hard_template};

use reopt_common::TableId;

/// Fixed table ids, in generation order.
pub mod tables {
    use super::TableId;
    /// `region`
    pub const REGION: TableId = TableId::new(0);
    /// `nation`
    pub const NATION: TableId = TableId::new(1);
    /// `supplier`
    pub const SUPPLIER: TableId = TableId::new(2);
    /// `customer`
    pub const CUSTOMER: TableId = TableId::new(3);
    /// `part`
    pub const PART: TableId = TableId::new(4);
    /// `partsupp`
    pub const PARTSUPP: TableId = TableId::new(5);
    /// `orders`
    pub const ORDERS: TableId = TableId::new(6);
    /// `lineitem`
    pub const LINEITEM: TableId = TableId::new(7);
}

/// Column positions per table (schema order in [`gen`]).
pub mod cols {
    use reopt_common::ColId;

    /// `region` columns.
    pub mod region {
        use super::ColId;
        /// Primary key.
        pub const REGIONKEY: ColId = ColId::new(0);
        /// Region name (dict).
        pub const NAME: ColId = ColId::new(1);
    }

    /// `nation` columns.
    pub mod nation {
        use super::ColId;
        /// Primary key.
        pub const NATIONKEY: ColId = ColId::new(0);
        /// FK → region.
        pub const REGIONKEY: ColId = ColId::new(1);
        /// Nation name (dict).
        pub const NAME: ColId = ColId::new(2);
    }

    /// `supplier` columns.
    pub mod supplier {
        use super::ColId;
        /// Primary key.
        pub const SUPPKEY: ColId = ColId::new(0);
        /// FK → nation.
        pub const NATIONKEY: ColId = ColId::new(1);
        /// Account balance (cents).
        pub const ACCTBAL: ColId = ColId::new(2);
    }

    /// `customer` columns.
    pub mod customer {
        use super::ColId;
        /// Primary key.
        pub const CUSTKEY: ColId = ColId::new(0);
        /// FK → nation.
        pub const NATIONKEY: ColId = ColId::new(1);
        /// Market segment (dict, 5 values).
        pub const MKTSEGMENT: ColId = ColId::new(2);
        /// Account balance (cents).
        pub const ACCTBAL: ColId = ColId::new(3);
    }

    /// `part` columns.
    pub mod part {
        use super::ColId;
        /// Primary key.
        pub const PARTKEY: ColId = ColId::new(0);
        /// Brand (dict, 25 values).
        pub const BRAND: ColId = ColId::new(1);
        /// Type (dict, 150 values; correlated with brand).
        pub const TYPE: ColId = ColId::new(2);
        /// Container (dict, 40 values; correlated with brand).
        pub const CONTAINER: ColId = ColId::new(3);
        /// Size 1..=50.
        pub const SIZE: ColId = ColId::new(4);
        /// Retail price (cents).
        pub const RETAILPRICE: ColId = ColId::new(5);
    }

    /// `partsupp` columns.
    pub mod partsupp {
        use super::ColId;
        /// FK → part.
        pub const PARTKEY: ColId = ColId::new(0);
        /// FK → supplier.
        pub const SUPPKEY: ColId = ColId::new(1);
        /// Available quantity.
        pub const AVAILQTY: ColId = ColId::new(2);
        /// Supply cost (cents).
        pub const SUPPLYCOST: ColId = ColId::new(3);
    }

    /// `orders` columns.
    pub mod orders {
        use super::ColId;
        /// Primary key.
        pub const ORDERKEY: ColId = ColId::new(0);
        /// FK → customer.
        pub const CUSTKEY: ColId = ColId::new(1);
        /// Order date (days since epoch start).
        pub const ORDERDATE: ColId = ColId::new(2);
        /// Priority (dict, 5 values).
        pub const ORDERPRIORITY: ColId = ColId::new(3);
        /// Status (dict, 3 values).
        pub const ORDERSTATUS: ColId = ColId::new(4);
        /// Total price (cents).
        pub const TOTALPRICE: ColId = ColId::new(5);
    }

    /// `lineitem` columns.
    pub mod lineitem {
        use super::ColId;
        /// FK → orders.
        pub const ORDERKEY: ColId = ColId::new(0);
        /// FK → part.
        pub const PARTKEY: ColId = ColId::new(1);
        /// FK → supplier.
        pub const SUPPKEY: ColId = ColId::new(2);
        /// Quantity 1..=50.
        pub const QUANTITY: ColId = ColId::new(3);
        /// Extended price (cents).
        pub const EXTENDEDPRICE: ColId = ColId::new(4);
        /// Discount in basis points (0..=1000).
        pub const DISCOUNT: ColId = ColId::new(5);
        /// Ship date (correlates with the order's date).
        pub const SHIPDATE: ColId = ColId::new(6);
        /// Commit date.
        pub const COMMITDATE: ColId = ColId::new(7);
        /// Receipt date (strongly correlated with ship date).
        pub const RECEIPTDATE: ColId = ColId::new(8);
        /// Return flag (dict, 3 values).
        pub const RETURNFLAG: ColId = ColId::new(9);
        /// Line status (dict, 2 values).
        pub const LINESTATUS: ColId = ColId::new(10);
        /// Ship mode (dict, 7 values; correlated with order priority).
        pub const SHIPMODE: ColId = ColId::new(11);
    }
}

/// Days in the generated date domain (7 years of ~365 days).
pub const DATE_DOMAIN_DAYS: i64 = 7 * 365;
