//! The 21 TPC-H-like query templates (Q15 excluded, as in the paper).
//!
//! Templates approximate the join structure and predicate placement of the
//! TPC-H queries within the engine's select–equijoin–aggregate algebra
//! (non-equi subqueries, `LIKE` and `EXISTS` are replaced by their
//! selectivity-equivalent equality/range counterparts; DESIGN.md §2 lists
//! the substitutions). Constants are drawn per instance from a seeded RNG,
//! mirroring the paper's "10 random instances per template".
//!
//! The **hard** templates — Q8, Q9, Q17, Q21 — place conjunctions across
//! the generator's correlated column pairs, so the native optimizer
//! underestimates them by one to two orders of magnitude while sampling
//! does not. These are the queries the paper reports big wins on; the
//! remaining templates are estimated well and should re-optimize to the
//! same plan.

use rand::RngExt;

use crate::tpch::gen::{NUM_BRANDS, NUM_CONTAINERS, NUM_TYPES};
use crate::tpch::{cols, tables, DATE_DOMAIN_DAYS};
use reopt_common::rng::Rng;
use reopt_common::{Error, Result};
use reopt_plan::query::{AggExpr, AggSpec, ColRef};
use reopt_plan::{Predicate, Query, QueryBuilder};
use reopt_storage::Database;

/// All template names, in paper order.
pub const TEMPLATE_NAMES: [&str; 21] = [
    "q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8", "q9", "q10", "q11", "q12", "q13", "q14", "q16",
    "q17", "q18", "q19", "q20", "q21", "q22",
];

/// Template names, in paper order.
pub fn all_template_names() -> &'static [&'static str] {
    &TEMPLATE_NAMES
}

/// The templates whose predicates cross correlated column pairs.
pub fn is_hard_template(name: &str) -> bool {
    matches!(name, "q8" | "q9" | "q17" | "q21")
}

/// Build one randomized instance of template `name`.
pub fn instantiate(db: &Database, name: &str, rng: &mut Rng) -> Result<Query> {
    let result = match name {
        "q1" => q1(rng),
        "q2" => q2(rng),
        "q3" => q3(rng),
        "q4" => q4(rng),
        "q5" => q5(rng),
        "q6" => q6(rng),
        "q7" => q7(rng),
        "q8" => q8(rng),
        "q9" => q9(rng),
        "q10" => q10(rng),
        "q11" => q11(rng),
        "q12" => q12(rng),
        "q13" => q13(rng),
        "q14" => q14(rng),
        "q16" => q16(rng),
        "q17" => q17(rng),
        "q18" => q18(rng),
        "q19" => q19(rng),
        "q20" => q20(rng),
        "q21" => q21(rng),
        "q22" => q22(rng),
        other => Err(Error::not_found(format!("TPC-H template `{other}`"))),
    };
    let _ = db; // templates reference fixed table ids; db kept for symmetry
    result
}

// ---------------------------------------------------------------------
// Constant pickers.

fn brand_name(i: usize) -> String {
    format!("BRAND#{i:03}")
}

fn type_name(i: usize) -> String {
    format!("TYPE#{i:03}")
}

fn container_name(i: usize) -> String {
    format!("CONTAINER#{i:03}")
}

fn nation_name(i: usize) -> String {
    format!("NATION#{i:03}")
}

fn random_brand(rng: &mut Rng) -> usize {
    rng.random_range(0..NUM_BRANDS)
}

/// A container value correlated with `brand` (the generator's rule).
fn correlated_container(brand: usize) -> String {
    container_name(brand % NUM_CONTAINERS)
}

/// A type value correlated with `brand`.
fn correlated_type(brand: usize) -> String {
    type_name(brand * (NUM_TYPES / NUM_BRANDS))
}

fn random_region(rng: &mut Rng) -> &'static str {
    ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"][rng.random_range(0..5usize)]
}

fn random_segment(rng: &mut Rng) -> &'static str {
    [
        "AUTOMOBILE",
        "BUILDING",
        "FURNITURE",
        "HOUSEHOLD",
        "MACHINERY",
    ][rng.random_range(0..5usize)]
}

fn random_priority(rng: &mut Rng) -> &'static str {
    ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"][rng.random_range(0..5usize)]
}

fn random_shipmode(rng: &mut Rng) -> &'static str {
    ["AIR", "AIR REG", "FOB", "MAIL", "RAIL", "SHIP", "TRUCK"][rng.random_range(0..7usize)]
}

/// First day of a random year within the domain.
fn random_year_start(rng: &mut Rng) -> i64 {
    rng.random_range(0..6i64) * 365
}

// ---------------------------------------------------------------------
// Templates. Each returns a built (not yet validated) Query.

/// Q1: pricing summary over lineitem (no join).
fn q1(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let l = qb.add_relation(tables::LINEITEM);
    let cutoff = DATE_DOMAIN_DAYS - rng.random_range(60..=120i64);
    qb.add_predicate(Predicate::le(l, cols::lineitem::SHIPDATE, cutoff));
    qb.aggregate(AggSpec {
        group_by: vec![
            ColRef::new(l, cols::lineitem::RETURNFLAG),
            ColRef::new(l, cols::lineitem::LINESTATUS),
        ],
        aggs: vec![
            AggExpr::count_star(),
            AggExpr::sum(ColRef::new(l, cols::lineitem::QUANTITY)),
            AggExpr::sum(ColRef::new(l, cols::lineitem::EXTENDEDPRICE)),
            AggExpr::avg(ColRef::new(l, cols::lineitem::DISCOUNT)),
        ],
    });
    Ok(qb.build())
}

/// Q2: minimum-cost supplier (part ⋈ partsupp ⋈ supplier ⋈ nation ⋈ region).
fn q2(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let p = qb.add_relation(tables::PART);
    let ps = qb.add_relation(tables::PARTSUPP);
    let s = qb.add_relation(tables::SUPPLIER);
    let n = qb.add_relation(tables::NATION);
    let r = qb.add_relation(tables::REGION);
    qb.add_join(
        ColRef::new(p, cols::part::PARTKEY),
        ColRef::new(ps, cols::partsupp::PARTKEY),
    );
    qb.add_join(
        ColRef::new(ps, cols::partsupp::SUPPKEY),
        ColRef::new(s, cols::supplier::SUPPKEY),
    );
    qb.add_join(
        ColRef::new(s, cols::supplier::NATIONKEY),
        ColRef::new(n, cols::nation::NATIONKEY),
    );
    qb.add_join(
        ColRef::new(n, cols::nation::REGIONKEY),
        ColRef::new(r, cols::region::REGIONKEY),
    );
    qb.add_predicate(Predicate::eq(
        p,
        cols::part::SIZE,
        rng.random_range(1..=50i64),
    ));
    qb.add_predicate(Predicate::eq(r, cols::region::NAME, random_region(rng)));
    qb.aggregate(AggSpec {
        group_by: vec![],
        aggs: vec![
            AggExpr::min(ColRef::new(ps, cols::partsupp::SUPPLYCOST)),
            AggExpr::count_star(),
        ],
    });
    Ok(qb.build())
}

/// Q3: shipping priority (customer ⋈ orders ⋈ lineitem).
fn q3(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let c = qb.add_relation(tables::CUSTOMER);
    let o = qb.add_relation(tables::ORDERS);
    let l = qb.add_relation(tables::LINEITEM);
    qb.add_join(
        ColRef::new(c, cols::customer::CUSTKEY),
        ColRef::new(o, cols::orders::CUSTKEY),
    );
    qb.add_join(
        ColRef::new(o, cols::orders::ORDERKEY),
        ColRef::new(l, cols::lineitem::ORDERKEY),
    );
    let d = rng.random_range(365..DATE_DOMAIN_DAYS - 400);
    qb.add_predicate(Predicate::eq(
        c,
        cols::customer::MKTSEGMENT,
        random_segment(rng),
    ));
    qb.add_predicate(Predicate::lt(o, cols::orders::ORDERDATE, d));
    qb.add_predicate(Predicate::gt(l, cols::lineitem::SHIPDATE, d));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(o, cols::orders::ORDERKEY)],
        aggs: vec![AggExpr::sum(ColRef::new(l, cols::lineitem::EXTENDEDPRICE))],
    });
    Ok(qb.build())
}

/// Q4: order priority checking (orders ⋈ lineitem). The paper's
/// `l_commitdate < l_receiptdate` inter-column predicate is outside the
/// algebra; a ship-mode equality takes its selectivity role.
fn q4(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let o = qb.add_relation(tables::ORDERS);
    let l = qb.add_relation(tables::LINEITEM);
    qb.add_join(
        ColRef::new(o, cols::orders::ORDERKEY),
        ColRef::new(l, cols::lineitem::ORDERKEY),
    );
    let d = random_year_start(rng) + rng.random_range(0..270i64);
    qb.add_predicate(Predicate::between(o, cols::orders::ORDERDATE, d, d + 89));
    qb.add_predicate(Predicate::eq(
        l,
        cols::lineitem::SHIPMODE,
        random_shipmode(rng),
    ));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(o, cols::orders::ORDERPRIORITY)],
        aggs: vec![AggExpr::count_star()],
    });
    Ok(qb.build())
}

/// Q5: local supplier volume (6 relations, cycle through nation keys).
fn q5(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let c = qb.add_relation(tables::CUSTOMER);
    let o = qb.add_relation(tables::ORDERS);
    let l = qb.add_relation(tables::LINEITEM);
    let s = qb.add_relation(tables::SUPPLIER);
    let n = qb.add_relation(tables::NATION);
    let r = qb.add_relation(tables::REGION);
    qb.add_join(
        ColRef::new(c, cols::customer::CUSTKEY),
        ColRef::new(o, cols::orders::CUSTKEY),
    );
    qb.add_join(
        ColRef::new(o, cols::orders::ORDERKEY),
        ColRef::new(l, cols::lineitem::ORDERKEY),
    );
    qb.add_join(
        ColRef::new(l, cols::lineitem::SUPPKEY),
        ColRef::new(s, cols::supplier::SUPPKEY),
    );
    // Local suppliers: customer and supplier share a nation.
    qb.add_join(
        ColRef::new(c, cols::customer::NATIONKEY),
        ColRef::new(s, cols::supplier::NATIONKEY),
    );
    qb.add_join(
        ColRef::new(s, cols::supplier::NATIONKEY),
        ColRef::new(n, cols::nation::NATIONKEY),
    );
    qb.add_join(
        ColRef::new(n, cols::nation::REGIONKEY),
        ColRef::new(r, cols::region::REGIONKEY),
    );
    let y = random_year_start(rng);
    qb.add_predicate(Predicate::eq(r, cols::region::NAME, random_region(rng)));
    qb.add_predicate(Predicate::between(o, cols::orders::ORDERDATE, y, y + 364));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(n, cols::nation::NAME)],
        aggs: vec![AggExpr::sum(ColRef::new(l, cols::lineitem::EXTENDEDPRICE))],
    });
    Ok(qb.build())
}

/// Q6: revenue forecast (lineitem only).
fn q6(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let l = qb.add_relation(tables::LINEITEM);
    let y = random_year_start(rng);
    let disc = rng.random_range(200..=800i64);
    qb.add_predicate(Predicate::between(l, cols::lineitem::SHIPDATE, y, y + 364));
    qb.add_predicate(Predicate::between(
        l,
        cols::lineitem::DISCOUNT,
        disc - 100,
        disc + 100,
    ));
    qb.add_predicate(Predicate::lt(l, cols::lineitem::QUANTITY, 24i64));
    qb.aggregate(AggSpec {
        group_by: vec![],
        aggs: vec![AggExpr::sum(ColRef::new(l, cols::lineitem::EXTENDEDPRICE))],
    });
    Ok(qb.build())
}

/// Q7: volume shipping between two nations (nation self-join).
fn q7(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let s = qb.add_relation(tables::SUPPLIER);
    let l = qb.add_relation(tables::LINEITEM);
    let o = qb.add_relation(tables::ORDERS);
    let c = qb.add_relation(tables::CUSTOMER);
    let n1 = qb.add_relation(tables::NATION);
    let n2 = qb.add_relation(tables::NATION);
    qb.add_join(
        ColRef::new(s, cols::supplier::SUPPKEY),
        ColRef::new(l, cols::lineitem::SUPPKEY),
    );
    qb.add_join(
        ColRef::new(l, cols::lineitem::ORDERKEY),
        ColRef::new(o, cols::orders::ORDERKEY),
    );
    qb.add_join(
        ColRef::new(o, cols::orders::CUSTKEY),
        ColRef::new(c, cols::customer::CUSTKEY),
    );
    qb.add_join(
        ColRef::new(s, cols::supplier::NATIONKEY),
        ColRef::new(n1, cols::nation::NATIONKEY),
    );
    qb.add_join(
        ColRef::new(c, cols::customer::NATIONKEY),
        ColRef::new(n2, cols::nation::NATIONKEY),
    );
    let a = rng.random_range(0..25usize);
    let b = (a + 1 + rng.random_range(0..24usize)) % 25;
    qb.add_predicate(Predicate::eq(
        n1,
        cols::nation::NAME,
        nation_name(a).as_str(),
    ));
    qb.add_predicate(Predicate::eq(
        n2,
        cols::nation::NAME,
        nation_name(b).as_str(),
    ));
    let y = random_year_start(rng);
    qb.add_predicate(Predicate::between(
        l,
        cols::lineitem::SHIPDATE,
        y,
        y + 2 * 365 - 1,
    ));
    qb.aggregate(AggSpec {
        group_by: vec![],
        aggs: vec![AggExpr::sum(ColRef::new(l, cols::lineitem::EXTENDEDPRICE))],
    });
    Ok(qb.build())
}

/// Q8 (hard): national market share — 8 relations, with a correlated
/// `p_type ∧ p_container` conjunction that AVI underestimates badly.
fn q8(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let p = qb.add_relation(tables::PART);
    let l = qb.add_relation(tables::LINEITEM);
    let s = qb.add_relation(tables::SUPPLIER);
    let o = qb.add_relation(tables::ORDERS);
    let c = qb.add_relation(tables::CUSTOMER);
    let n1 = qb.add_relation(tables::NATION); // customer nation
    let r = qb.add_relation(tables::REGION);
    let n2 = qb.add_relation(tables::NATION); // supplier nation
    qb.add_join(
        ColRef::new(p, cols::part::PARTKEY),
        ColRef::new(l, cols::lineitem::PARTKEY),
    );
    qb.add_join(
        ColRef::new(l, cols::lineitem::SUPPKEY),
        ColRef::new(s, cols::supplier::SUPPKEY),
    );
    qb.add_join(
        ColRef::new(l, cols::lineitem::ORDERKEY),
        ColRef::new(o, cols::orders::ORDERKEY),
    );
    qb.add_join(
        ColRef::new(o, cols::orders::CUSTKEY),
        ColRef::new(c, cols::customer::CUSTKEY),
    );
    qb.add_join(
        ColRef::new(c, cols::customer::NATIONKEY),
        ColRef::new(n1, cols::nation::NATIONKEY),
    );
    qb.add_join(
        ColRef::new(n1, cols::nation::REGIONKEY),
        ColRef::new(r, cols::region::REGIONKEY),
    );
    qb.add_join(
        ColRef::new(s, cols::supplier::NATIONKEY),
        ColRef::new(n2, cols::nation::NATIONKEY),
    );
    let brand = random_brand(rng);
    qb.add_predicate(Predicate::eq(
        p,
        cols::part::TYPE,
        correlated_type(brand).as_str(),
    ));
    qb.add_predicate(Predicate::eq(
        p,
        cols::part::CONTAINER,
        correlated_container(brand).as_str(),
    ));
    qb.add_predicate(Predicate::eq(r, cols::region::NAME, random_region(rng)));
    let y = random_year_start(rng);
    qb.add_predicate(Predicate::between(
        o,
        cols::orders::ORDERDATE,
        y,
        y + 2 * 365 - 1,
    ));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(n2, cols::nation::NAME)],
        aggs: vec![AggExpr::sum(ColRef::new(l, cols::lineitem::EXTENDEDPRICE))],
    });
    Ok(qb.build())
}

/// Q9 (hard): product-type profit — the paper's `p_name LIKE` becomes a
/// correlated `p_brand ∧ p_type` pair.
fn q9(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let p = qb.add_relation(tables::PART);
    let ps = qb.add_relation(tables::PARTSUPP);
    let l = qb.add_relation(tables::LINEITEM);
    let s = qb.add_relation(tables::SUPPLIER);
    let o = qb.add_relation(tables::ORDERS);
    let n = qb.add_relation(tables::NATION);
    qb.add_join(
        ColRef::new(p, cols::part::PARTKEY),
        ColRef::new(l, cols::lineitem::PARTKEY),
    );
    qb.add_join(
        ColRef::new(ps, cols::partsupp::PARTKEY),
        ColRef::new(p, cols::part::PARTKEY),
    );
    qb.add_join(
        ColRef::new(ps, cols::partsupp::SUPPKEY),
        ColRef::new(s, cols::supplier::SUPPKEY),
    );
    qb.add_join(
        ColRef::new(l, cols::lineitem::SUPPKEY),
        ColRef::new(s, cols::supplier::SUPPKEY),
    );
    qb.add_join(
        ColRef::new(l, cols::lineitem::ORDERKEY),
        ColRef::new(o, cols::orders::ORDERKEY),
    );
    qb.add_join(
        ColRef::new(s, cols::supplier::NATIONKEY),
        ColRef::new(n, cols::nation::NATIONKEY),
    );
    let brand = random_brand(rng);
    qb.add_predicate(Predicate::eq(
        p,
        cols::part::BRAND,
        brand_name(brand).as_str(),
    ));
    qb.add_predicate(Predicate::eq(
        p,
        cols::part::TYPE,
        correlated_type(brand).as_str(),
    ));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(n, cols::nation::NAME)],
        aggs: vec![AggExpr::sum(ColRef::new(l, cols::lineitem::EXTENDEDPRICE))],
    });
    Ok(qb.build())
}

/// Q10: returned items (customer ⋈ orders ⋈ lineitem ⋈ nation).
fn q10(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let c = qb.add_relation(tables::CUSTOMER);
    let o = qb.add_relation(tables::ORDERS);
    let l = qb.add_relation(tables::LINEITEM);
    let n = qb.add_relation(tables::NATION);
    qb.add_join(
        ColRef::new(c, cols::customer::CUSTKEY),
        ColRef::new(o, cols::orders::CUSTKEY),
    );
    qb.add_join(
        ColRef::new(o, cols::orders::ORDERKEY),
        ColRef::new(l, cols::lineitem::ORDERKEY),
    );
    qb.add_join(
        ColRef::new(c, cols::customer::NATIONKEY),
        ColRef::new(n, cols::nation::NATIONKEY),
    );
    let d = random_year_start(rng) + rng.random_range(0..270i64);
    qb.add_predicate(Predicate::between(o, cols::orders::ORDERDATE, d, d + 89));
    qb.add_predicate(Predicate::eq(l, cols::lineitem::RETURNFLAG, "R"));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(c, cols::customer::CUSTKEY)],
        aggs: vec![AggExpr::sum(ColRef::new(l, cols::lineitem::EXTENDEDPRICE))],
    });
    Ok(qb.build())
}

/// Q11: important stock (partsupp ⋈ supplier ⋈ nation).
fn q11(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ps = qb.add_relation(tables::PARTSUPP);
    let s = qb.add_relation(tables::SUPPLIER);
    let n = qb.add_relation(tables::NATION);
    qb.add_join(
        ColRef::new(ps, cols::partsupp::SUPPKEY),
        ColRef::new(s, cols::supplier::SUPPKEY),
    );
    qb.add_join(
        ColRef::new(s, cols::supplier::NATIONKEY),
        ColRef::new(n, cols::nation::NATIONKEY),
    );
    qb.add_predicate(Predicate::eq(
        n,
        cols::nation::NAME,
        nation_name(rng.random_range(0..25usize)).as_str(),
    ));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(ps, cols::partsupp::PARTKEY)],
        aggs: vec![AggExpr::sum(ColRef::new(ps, cols::partsupp::SUPPLYCOST))],
    });
    Ok(qb.build())
}

/// Q12: shipping modes and order priority (orders ⋈ lineitem).
fn q12(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let o = qb.add_relation(tables::ORDERS);
    let l = qb.add_relation(tables::LINEITEM);
    qb.add_join(
        ColRef::new(o, cols::orders::ORDERKEY),
        ColRef::new(l, cols::lineitem::ORDERKEY),
    );
    let y = random_year_start(rng);
    qb.add_predicate(Predicate::eq(
        l,
        cols::lineitem::SHIPMODE,
        random_shipmode(rng),
    ));
    qb.add_predicate(Predicate::between(
        l,
        cols::lineitem::RECEIPTDATE,
        y,
        y + 364,
    ));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(o, cols::orders::ORDERPRIORITY)],
        aggs: vec![AggExpr::count_star()],
    });
    Ok(qb.build())
}

/// Q13: customer order counts (customer ⋈ orders).
fn q13(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let c = qb.add_relation(tables::CUSTOMER);
    let o = qb.add_relation(tables::ORDERS);
    qb.add_join(
        ColRef::new(c, cols::customer::CUSTKEY),
        ColRef::new(o, cols::orders::CUSTKEY),
    );
    qb.add_predicate(Predicate::eq(
        o,
        cols::orders::ORDERPRIORITY,
        random_priority(rng),
    ));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(c, cols::customer::CUSTKEY)],
        aggs: vec![AggExpr::count_star()],
    });
    Ok(qb.build())
}

/// Q14: promotion effect (lineitem ⋈ part), one month of shipments.
fn q14(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let l = qb.add_relation(tables::LINEITEM);
    let p = qb.add_relation(tables::PART);
    qb.add_join(
        ColRef::new(l, cols::lineitem::PARTKEY),
        ColRef::new(p, cols::part::PARTKEY),
    );
    let d = random_year_start(rng) + 30 * rng.random_range(0..12i64);
    qb.add_predicate(Predicate::between(l, cols::lineitem::SHIPDATE, d, d + 29));
    qb.aggregate(AggSpec {
        group_by: vec![],
        aggs: vec![AggExpr::sum(ColRef::new(l, cols::lineitem::EXTENDEDPRICE))],
    });
    Ok(qb.build())
}

/// Q16: part/supplier relationship (partsupp ⋈ part).
fn q16(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let ps = qb.add_relation(tables::PARTSUPP);
    let p = qb.add_relation(tables::PART);
    qb.add_join(
        ColRef::new(ps, cols::partsupp::PARTKEY),
        ColRef::new(p, cols::part::PARTKEY),
    );
    qb.add_predicate(Predicate::ne(
        p,
        cols::part::BRAND,
        brand_name(random_brand(rng)).as_str(),
    ));
    let a = rng.random_range(1..=40i64);
    qb.add_predicate(Predicate::between(p, cols::part::SIZE, a, a + 9));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(p, cols::part::BRAND)],
        aggs: vec![AggExpr::count_star()],
    });
    Ok(qb.build())
}

/// Q17 (hard): small-quantity-order revenue (lineitem ⋈ part) with the
/// correlated `p_brand ∧ p_container` pair.
fn q17(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let l = qb.add_relation(tables::LINEITEM);
    let p = qb.add_relation(tables::PART);
    qb.add_join(
        ColRef::new(l, cols::lineitem::PARTKEY),
        ColRef::new(p, cols::part::PARTKEY),
    );
    let brand = random_brand(rng);
    qb.add_predicate(Predicate::eq(
        p,
        cols::part::BRAND,
        brand_name(brand).as_str(),
    ));
    qb.add_predicate(Predicate::eq(
        p,
        cols::part::CONTAINER,
        correlated_container(brand).as_str(),
    ));
    qb.add_predicate(Predicate::lt(l, cols::lineitem::QUANTITY, 10i64));
    qb.aggregate(AggSpec {
        group_by: vec![],
        aggs: vec![AggExpr::sum(ColRef::new(l, cols::lineitem::EXTENDEDPRICE))],
    });
    Ok(qb.build())
}

/// Q18: large-volume customers (customer ⋈ orders ⋈ lineitem).
fn q18(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let c = qb.add_relation(tables::CUSTOMER);
    let o = qb.add_relation(tables::ORDERS);
    let l = qb.add_relation(tables::LINEITEM);
    qb.add_join(
        ColRef::new(c, cols::customer::CUSTKEY),
        ColRef::new(o, cols::orders::CUSTKEY),
    );
    qb.add_join(
        ColRef::new(o, cols::orders::ORDERKEY),
        ColRef::new(l, cols::lineitem::ORDERKEY),
    );
    qb.add_predicate(Predicate::gt(
        o,
        cols::orders::TOTALPRICE,
        rng.random_range(40_000_000..48_000_000i64),
    ));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(c, cols::customer::CUSTKEY)],
        aggs: vec![AggExpr::sum(ColRef::new(l, cols::lineitem::QUANTITY))],
    });
    Ok(qb.build())
}

/// Q19: discounted revenue (lineitem ⋈ part) — correlated pair present
/// but only one join exists, so only local transformations are possible
/// (the paper makes the same observation).
fn q19(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let l = qb.add_relation(tables::LINEITEM);
    let p = qb.add_relation(tables::PART);
    qb.add_join(
        ColRef::new(l, cols::lineitem::PARTKEY),
        ColRef::new(p, cols::part::PARTKEY),
    );
    let brand = random_brand(rng);
    qb.add_predicate(Predicate::eq(
        p,
        cols::part::BRAND,
        brand_name(brand).as_str(),
    ));
    qb.add_predicate(Predicate::eq(
        p,
        cols::part::CONTAINER,
        correlated_container(brand).as_str(),
    ));
    let qlo = rng.random_range(1..=10i64);
    qb.add_predicate(Predicate::between(
        l,
        cols::lineitem::QUANTITY,
        qlo,
        qlo + 10,
    ));
    qb.aggregate(AggSpec {
        group_by: vec![],
        aggs: vec![AggExpr::sum(ColRef::new(l, cols::lineitem::EXTENDEDPRICE))],
    });
    Ok(qb.build())
}

/// Q20: potential part promotion (part ⋈ partsupp ⋈ supplier ⋈ nation).
fn q20(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let p = qb.add_relation(tables::PART);
    let ps = qb.add_relation(tables::PARTSUPP);
    let s = qb.add_relation(tables::SUPPLIER);
    let n = qb.add_relation(tables::NATION);
    qb.add_join(
        ColRef::new(p, cols::part::PARTKEY),
        ColRef::new(ps, cols::partsupp::PARTKEY),
    );
    qb.add_join(
        ColRef::new(ps, cols::partsupp::SUPPKEY),
        ColRef::new(s, cols::supplier::SUPPKEY),
    );
    qb.add_join(
        ColRef::new(s, cols::supplier::NATIONKEY),
        ColRef::new(n, cols::nation::NATIONKEY),
    );
    qb.add_predicate(Predicate::eq(
        p,
        cols::part::BRAND,
        brand_name(random_brand(rng)).as_str(),
    ));
    qb.add_predicate(Predicate::eq(
        n,
        cols::nation::NAME,
        nation_name(rng.random_range(0..25usize)).as_str(),
    ));
    qb.aggregate(AggSpec {
        group_by: vec![],
        aggs: vec![AggExpr::count_star()],
    });
    Ok(qb.build())
}

/// Q21 (hard): suppliers who kept orders waiting. The paper's
/// `l_receiptdate > l_commitdate` correlation appears here as overlapping
/// ship/receipt windows whose conjunction AVI misprices by ~25×.
fn q21(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let s = qb.add_relation(tables::SUPPLIER);
    let l = qb.add_relation(tables::LINEITEM);
    let o = qb.add_relation(tables::ORDERS);
    let n = qb.add_relation(tables::NATION);
    qb.add_join(
        ColRef::new(s, cols::supplier::SUPPKEY),
        ColRef::new(l, cols::lineitem::SUPPKEY),
    );
    qb.add_join(
        ColRef::new(l, cols::lineitem::ORDERKEY),
        ColRef::new(o, cols::orders::ORDERKEY),
    );
    qb.add_join(
        ColRef::new(s, cols::supplier::NATIONKEY),
        ColRef::new(n, cols::nation::NATIONKEY),
    );
    let d = random_year_start(rng) + rng.random_range(0..200i64);
    // Correlated windows: receipt = ship + U(1,30), so these two ranges
    // are jointly satisfied ~25× more often than AVI's product predicts.
    qb.add_predicate(Predicate::between(l, cols::lineitem::SHIPDATE, d, d + 59));
    qb.add_predicate(Predicate::between(
        l,
        cols::lineitem::RECEIPTDATE,
        d,
        d + 74,
    ));
    qb.add_predicate(Predicate::eq(o, cols::orders::ORDERSTATUS, "F"));
    qb.add_predicate(Predicate::eq(
        n,
        cols::nation::NAME,
        nation_name(rng.random_range(0..25usize)).as_str(),
    ));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(s, cols::supplier::SUPPKEY)],
        aggs: vec![AggExpr::count_star()],
    });
    Ok(qb.build())
}

/// Q22: global sales opportunity (customer ⋈ orders).
fn q22(rng: &mut Rng) -> Result<Query> {
    let mut qb = QueryBuilder::new();
    let c = qb.add_relation(tables::CUSTOMER);
    let o = qb.add_relation(tables::ORDERS);
    qb.add_join(
        ColRef::new(c, cols::customer::CUSTKEY),
        ColRef::new(o, cols::orders::CUSTKEY),
    );
    qb.add_predicate(Predicate::gt(
        c,
        cols::customer::ACCTBAL,
        rng.random_range(500_000..900_000i64),
    ));
    qb.aggregate(AggSpec {
        group_by: vec![ColRef::new(c, cols::customer::NATIONKEY)],
        aggs: vec![
            AggExpr::count_star(),
            AggExpr::avg(ColRef::new(c, cols::customer::ACCTBAL)),
        ],
    });
    Ok(qb.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::gen::{build_tpch_database, TpchConfig};
    use reopt_common::rng::derive_rng_indexed;
    use reopt_common::RelId;

    fn db() -> Database {
        build_tpch_database(&TpchConfig {
            scale: 0.002,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn all_templates_instantiate_and_validate() {
        let db = db();
        for name in all_template_names() {
            for inst in 0..3u64 {
                let mut rng = derive_rng_indexed(1, name, inst);
                let q = instantiate(&db, name, &mut rng).unwrap_or_else(|e| panic!("{name}: {e}"));
                q.validate(&db)
                    .unwrap_or_else(|e| panic!("{name} instance {inst}: {e}"));
            }
        }
    }

    #[test]
    fn template_count_matches_paper() {
        // 21 = 22 TPC-H queries minus Q15.
        assert_eq!(all_template_names().len(), 21);
        assert!(!all_template_names().contains(&"q15"));
    }

    #[test]
    fn hard_set_is_the_papers() {
        let hard: Vec<&str> = all_template_names()
            .iter()
            .copied()
            .filter(|n| is_hard_template(n))
            .collect();
        assert_eq!(hard, vec!["q8", "q9", "q17", "q21"]);
    }

    #[test]
    fn unknown_template_errors() {
        let db = db();
        let mut rng = derive_rng_indexed(1, "zzz", 0);
        assert!(instantiate(&db, "q15", &mut rng).is_err());
        assert!(instantiate(&db, "nope", &mut rng).is_err());
    }

    #[test]
    fn instances_differ_across_rng_streams() {
        let db = db();
        let mut r0 = derive_rng_indexed(1, "q3", 0);
        let mut r1 = derive_rng_indexed(1, "q3", 1);
        let a = instantiate(&db, "q3", &mut r0).unwrap();
        let b = instantiate(&db, "q3", &mut r1).unwrap();
        assert_ne!(a, b, "instances should draw different constants");
    }

    #[test]
    fn structure_spot_checks() {
        let db = db();
        let mut rng = derive_rng_indexed(1, "q5", 0);
        let q5 = instantiate(&db, "q5", &mut rng).unwrap();
        assert_eq!(q5.num_relations(), 6);
        assert_eq!(q5.joins.len(), 6); // includes the c-s nation edge

        let mut rng = derive_rng_indexed(1, "q8", 0);
        let q8 = instantiate(&db, "q8", &mut rng).unwrap();
        assert_eq!(q8.num_relations(), 8);

        let mut rng = derive_rng_indexed(1, "q1", 0);
        let q1 = instantiate(&db, "q1", &mut rng).unwrap();
        assert_eq!(q1.num_relations(), 1);
        assert!(q1.aggregate.is_some());
    }

    #[test]
    fn hard_templates_touch_correlated_pairs() {
        let db = db();
        let mut rng = derive_rng_indexed(1, "q17", 0);
        let q = instantiate(&db, "q17", &mut rng).unwrap();
        // Both part predicates present (brand + container).
        let part_rel = RelId::new(1);
        assert_eq!(q.local_predicates(part_rel).len(), 2);
    }
}
