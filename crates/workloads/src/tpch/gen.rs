//! TPC-H-like data generation.

use rand::RngExt;

use crate::tpch::{cols, DATE_DOMAIN_DAYS};
use crate::zipf::Zipf;
use reopt_common::rng::{derive_rng, Rng};
use reopt_common::Result;
use reopt_storage::{Column, ColumnDef, Database, LogicalType, Table, TableSchema};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Fraction of TPC-H scale factor 1 (0.02 → lineitem ≈ 120 k rows).
    pub scale: f64,
    /// Zipf exponent for foreign-key popularity and value skew
    /// (0 = uniform database, 1 = the paper's skewed database).
    pub zipf_z: f64,
    /// Probability that a part's container/type follow its brand — the
    /// correlation strength behind the "hard" queries. 0 disables the
    /// correlation entirely (an ablation knob).
    pub correlation: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale: 0.02,
            zipf_z: 0.0,
            correlation: 0.9,
            seed: 0x79c4,
        }
    }
}

impl TpchConfig {
    /// Row counts derived from the scale factor (TPC-H SF-1 baselines).
    pub fn sizes(&self) -> TpchSizes {
        let s = self.scale.max(0.0005);
        let f = |base: f64, min: usize| ((base * s) as usize).max(min);
        TpchSizes {
            suppliers: f(10_000.0, 20),
            customers: f(150_000.0, 100),
            parts: f(200_000.0, 100),
            partsupps_per_part: 4,
            orders: f(1_500_000.0, 500),
            max_lines_per_order: 7,
        }
    }
}

/// Derived table sizes.
#[derive(Debug, Clone, Copy)]
pub struct TpchSizes {
    /// Supplier rows.
    pub suppliers: usize,
    /// Customer rows.
    pub customers: usize,
    /// Part rows.
    pub parts: usize,
    /// Partsupp rows per part.
    pub partsupps_per_part: usize,
    /// Orders rows.
    pub orders: usize,
    /// Max lineitems per order (1..=max, avg ≈ max/2).
    pub max_lines_per_order: usize,
}

const REGION_NAMES: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["AIR", "AIR REG", "FOB", "MAIL", "RAIL", "SHIP", "TRUCK"];
const ORDERSTATUS: [&str; 3] = ["F", "O", "P"];
const RETURNFLAGS: [&str; 3] = ["A", "N", "R"];
const LINESTATUS: [&str; 2] = ["F", "O"];

/// Number of distinct part brands.
pub const NUM_BRANDS: usize = 25;
/// Number of distinct part types.
pub const NUM_TYPES: usize = 150;
/// Number of distinct part containers.
pub const NUM_CONTAINERS: usize = 40;

fn dict_strings(prefix: &str, n: usize) -> Vec<String> {
    (0..n).map(|i| format!("{prefix}#{i:03}")).collect()
}

/// Build the full TPC-H-like database with indexes on keys and the
/// equality-predicate columns the templates use.
pub fn build_tpch_database(config: &TpchConfig) -> Result<Database> {
    let sizes = config.sizes();
    let mut db = Database::new();
    let int = |v: Vec<i64>| Column::from_i64(LogicalType::Int, v);
    let date = |v: Vec<i64>| Column::from_i64(LogicalType::Date, v);
    let money = |v: Vec<i64>| Column::from_i64(LogicalType::Money, v);

    // --- region ---------------------------------------------------------
    db.add_table_with(|id| {
        let schema = TableSchema::new(vec![
            ColumnDef::new("r_regionkey", LogicalType::Int),
            ColumnDef::new("r_name", LogicalType::Dict),
        ])?;
        let mut t = Table::new(
            id,
            "region",
            schema,
            vec![int((0..5).collect()), Column::from_strings(&REGION_NAMES)],
        )?;
        t.create_index(cols::region::REGIONKEY)?;
        t.create_index(cols::region::NAME)?;
        Ok(t)
    })?;

    // --- nation ---------------------------------------------------------
    db.add_table_with(|id| {
        let schema = TableSchema::new(vec![
            ColumnDef::new("n_nationkey", LogicalType::Int),
            ColumnDef::new("n_regionkey", LogicalType::Int),
            ColumnDef::new("n_name", LogicalType::Dict),
        ])?;
        let names: Vec<String> = dict_strings("NATION", 25);
        let mut t = Table::new(
            id,
            "nation",
            schema,
            vec![
                int((0..25).collect()),
                int((0..25).map(|i| i % 5).collect()),
                Column::from_strings(&names),
            ],
        )?;
        t.create_index(cols::nation::NATIONKEY)?;
        t.create_index(cols::nation::REGIONKEY)?;
        t.create_index(cols::nation::NAME)?;
        Ok(t)
    })?;

    // --- supplier -------------------------------------------------------
    {
        let mut rng = derive_rng(config.seed, "supplier");
        let n = sizes.suppliers;
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("s_suppkey", LogicalType::Int),
                ColumnDef::new("s_nationkey", LogicalType::Int),
                ColumnDef::new("s_acctbal", LogicalType::Money),
            ])?;
            let mut t = Table::new(
                id,
                "supplier",
                schema,
                vec![
                    int((0..n as i64).collect()),
                    int((0..n).map(|_| rng.random_range(0..25i64)).collect()),
                    money(
                        (0..n)
                            .map(|_| rng.random_range(-99_999..999_999i64))
                            .collect(),
                    ),
                ],
            )?;
            t.create_index(cols::supplier::SUPPKEY)?;
            t.create_index(cols::supplier::NATIONKEY)?;
            Ok(t)
        })?;
    }

    // --- customer -------------------------------------------------------
    {
        let mut rng = derive_rng(config.seed, "customer");
        let n = sizes.customers;
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("c_custkey", LogicalType::Int),
                ColumnDef::new("c_nationkey", LogicalType::Int),
                ColumnDef::new("c_mktsegment", LogicalType::Dict),
                ColumnDef::new("c_acctbal", LogicalType::Money),
            ])?;
            let segs: Vec<&str> = (0..n)
                .map(|_| SEGMENTS[rng.random_range(0..SEGMENTS.len())])
                .collect();
            let mut t = Table::new(
                id,
                "customer",
                schema,
                vec![
                    int((0..n as i64).collect()),
                    int((0..n).map(|_| rng.random_range(0..25i64)).collect()),
                    Column::from_strings(&segs),
                    money(
                        (0..n)
                            .map(|_| rng.random_range(-99_999..999_999i64))
                            .collect(),
                    ),
                ],
            )?;
            t.create_index(cols::customer::CUSTKEY)?;
            t.create_index(cols::customer::NATIONKEY)?;
            t.create_index(cols::customer::MKTSEGMENT)?;
            Ok(t)
        })?;
    }

    // --- part -----------------------------------------------------------
    {
        let mut rng = derive_rng(config.seed, "part");
        let n = sizes.parts;
        let brand_names = dict_strings("BRAND", NUM_BRANDS);
        let type_names = dict_strings("TYPE", NUM_TYPES);
        let container_names = dict_strings("CONTAINER", NUM_CONTAINERS);
        // Brand skew follows z.
        let brand_dist = Zipf::new(NUM_BRANDS, config.zipf_z);

        let mut brands = Vec::with_capacity(n);
        let mut types = Vec::with_capacity(n);
        let mut containers = Vec::with_capacity(n);
        for _ in 0..n {
            let b = brand_dist.sample(&mut rng);
            brands.push(brand_names[b].as_str());
            // Correlated attributes: with probability `correlation`, the
            // type/container are functions of the brand; otherwise
            // uniform. This is the §4 "correlation makes queries hard"
            // mechanism in miniature.
            let correlated = rng.random_bool(config.correlation.clamp(0.0, 1.0));
            let ty = if correlated {
                b * (NUM_TYPES / NUM_BRANDS) + rng.random_range(0..2usize)
            } else {
                rng.random_range(0..NUM_TYPES)
            };
            types.push(type_names[ty].as_str());
            let ct = if correlated {
                b % NUM_CONTAINERS
            } else {
                rng.random_range(0..NUM_CONTAINERS)
            };
            containers.push(container_names[ct].as_str());
        }
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("p_partkey", LogicalType::Int),
                ColumnDef::new("p_brand", LogicalType::Dict),
                ColumnDef::new("p_type", LogicalType::Dict),
                ColumnDef::new("p_container", LogicalType::Dict),
                ColumnDef::new("p_size", LogicalType::Int),
                ColumnDef::new("p_retailprice", LogicalType::Money),
            ])?;
            let mut t = Table::new(
                id,
                "part",
                schema,
                vec![
                    int((0..n as i64).collect()),
                    Column::from_strings(&brands),
                    Column::from_strings(&types),
                    Column::from_strings(&containers),
                    int((0..n).map(|_| rng.random_range(1..=50i64)).collect()),
                    money(
                        (0..n)
                            .map(|_| rng.random_range(90_000..200_000i64))
                            .collect(),
                    ),
                ],
            )?;
            t.create_index(cols::part::PARTKEY)?;
            t.create_index(cols::part::BRAND)?;
            t.create_index(cols::part::TYPE)?;
            t.create_index(cols::part::CONTAINER)?;
            Ok(t)
        })?;
    }

    // --- partsupp -------------------------------------------------------
    {
        let mut rng = derive_rng(config.seed, "partsupp");
        let n = sizes.parts * sizes.partsupps_per_part;
        let mut pk = Vec::with_capacity(n);
        let mut sk = Vec::with_capacity(n);
        for p in 0..sizes.parts {
            for s in 0..sizes.partsupps_per_part {
                pk.push(p as i64);
                // Spread suppliers deterministically as dbgen does.
                sk.push(((p + s * (sizes.suppliers / 4 + 1)) % sizes.suppliers) as i64);
            }
        }
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("ps_partkey", LogicalType::Int),
                ColumnDef::new("ps_suppkey", LogicalType::Int),
                ColumnDef::new("ps_availqty", LogicalType::Int),
                ColumnDef::new("ps_supplycost", LogicalType::Money),
            ])?;
            let mut t = Table::new(
                id,
                "partsupp",
                schema,
                vec![
                    int(pk.clone()),
                    int(sk.clone()),
                    int((0..n).map(|_| rng.random_range(1..10_000i64)).collect()),
                    money((0..n).map(|_| rng.random_range(100..100_000i64)).collect()),
                ],
            )?;
            t.create_index(cols::partsupp::PARTKEY)?;
            t.create_index(cols::partsupp::SUPPKEY)?;
            Ok(t)
        })?;
    }

    // --- orders + lineitem (generated together for correlations) --------
    {
        let mut rng = derive_rng(config.seed, "orders");
        let n_orders = sizes.orders;
        let cust_dist = Zipf::new(sizes.customers, config.zipf_z);
        let part_dist = Zipf::new(sizes.parts, config.zipf_z);
        let supp_dist = Zipf::new(sizes.suppliers, config.zipf_z);

        let mut o_orderkey = Vec::with_capacity(n_orders);
        let mut o_custkey = Vec::with_capacity(n_orders);
        let mut o_orderdate = Vec::with_capacity(n_orders);
        let mut o_priority: Vec<&str> = Vec::with_capacity(n_orders);
        let mut o_prio_idx = Vec::with_capacity(n_orders);
        let mut o_status: Vec<&str> = Vec::with_capacity(n_orders);
        let mut o_totalprice = Vec::with_capacity(n_orders);

        for k in 0..n_orders {
            o_orderkey.push(k as i64);
            o_custkey.push(cust_dist.sample(&mut rng) as i64);
            // Order dates cover all but the last 151 days, as in dbgen.
            o_orderdate.push(rng.random_range(0..DATE_DOMAIN_DAYS - 151));
            let prio = rng.random_range(0..PRIORITIES.len());
            o_prio_idx.push(prio);
            o_priority.push(PRIORITIES[prio]);
            o_status.push(ORDERSTATUS[rng.random_range(0..3usize)]);
            o_totalprice.push(rng.random_range(100_000..50_000_000i64));
        }

        // lineitem rides on the orders stream so dates/modes correlate.
        let mut l_orderkey = Vec::new();
        let mut l_partkey = Vec::new();
        let mut l_suppkey = Vec::new();
        let mut l_quantity = Vec::new();
        let mut l_extprice = Vec::new();
        let mut l_discount = Vec::new();
        let mut l_ship = Vec::new();
        let mut l_commit = Vec::new();
        let mut l_receipt = Vec::new();
        let mut l_rflag: Vec<&str> = Vec::new();
        let mut l_status: Vec<&str> = Vec::new();
        let mut l_mode: Vec<&str> = Vec::new();
        let mut lrng = derive_rng(config.seed, "lineitem");

        for k in 0..n_orders {
            let lines = 1 + lrng.random_range(0..sizes.max_lines_per_order);
            for _ in 0..lines {
                l_orderkey.push(k as i64);
                l_partkey.push(part_dist.sample(&mut lrng) as i64);
                l_suppkey.push(supp_dist.sample(&mut lrng) as i64);
                l_quantity.push(lrng.random_range(1..=50i64));
                l_extprice.push(lrng.random_range(100_000..10_000_000i64));
                // Discount is in basis points.
                l_discount.push(lrng.random_range(0..=1000i64));
                // Correlation 1: ship date = order date + U(1, 121).
                let ship = o_orderdate[k] + lrng.random_range(1..=121i64);
                // Correlation 2: receipt date = ship date + U(1, 30).
                let receipt = ship + lrng.random_range(1..=30i64);
                let commit = o_orderdate[k] + lrng.random_range(30..=90i64);
                l_ship.push(ship);
                l_commit.push(commit);
                l_receipt.push(receipt);
                l_rflag.push(RETURNFLAGS[lrng.random_range(0..3usize)]);
                l_status.push(LINESTATUS[lrng.random_range(0..2usize)]);
                // Correlation 3: urgent orders overwhelmingly ship by AIR.
                let mode =
                    if o_prio_idx[k] <= 1 && lrng.random_bool(config.correlation.clamp(0.0, 1.0)) {
                        SHIPMODES[lrng.random_range(0..2usize)] // AIR / AIR REG
                    } else {
                        SHIPMODES[lrng.random_range(0..SHIPMODES.len())]
                    };
                l_mode.push(mode);
            }
        }

        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("o_orderkey", LogicalType::Int),
                ColumnDef::new("o_custkey", LogicalType::Int),
                ColumnDef::new("o_orderdate", LogicalType::Date),
                ColumnDef::new("o_orderpriority", LogicalType::Dict),
                ColumnDef::new("o_orderstatus", LogicalType::Dict),
                ColumnDef::new("o_totalprice", LogicalType::Money),
            ])?;
            let mut t = Table::new(
                id,
                "orders",
                schema,
                vec![
                    int(o_orderkey.clone()),
                    int(o_custkey.clone()),
                    date(o_orderdate.clone()),
                    Column::from_strings(&o_priority),
                    Column::from_strings(&o_status),
                    money(o_totalprice.clone()),
                ],
            )?;
            t.create_index(cols::orders::ORDERKEY)?;
            t.create_index(cols::orders::CUSTKEY)?;
            t.create_index(cols::orders::ORDERPRIORITY)?;
            Ok(t)
        })?;

        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("l_orderkey", LogicalType::Int),
                ColumnDef::new("l_partkey", LogicalType::Int),
                ColumnDef::new("l_suppkey", LogicalType::Int),
                ColumnDef::new("l_quantity", LogicalType::Int),
                ColumnDef::new("l_extendedprice", LogicalType::Money),
                ColumnDef::new("l_discount", LogicalType::Int),
                ColumnDef::new("l_shipdate", LogicalType::Date),
                ColumnDef::new("l_commitdate", LogicalType::Date),
                ColumnDef::new("l_receiptdate", LogicalType::Date),
                ColumnDef::new("l_returnflag", LogicalType::Dict),
                ColumnDef::new("l_linestatus", LogicalType::Dict),
                ColumnDef::new("l_shipmode", LogicalType::Dict),
            ])?;
            let mut t = Table::new(
                id,
                "lineitem",
                schema,
                vec![
                    int(l_orderkey.clone()),
                    int(l_partkey.clone()),
                    int(l_suppkey.clone()),
                    int(l_quantity.clone()),
                    money(l_extprice.clone()),
                    int(l_discount.clone()),
                    date(l_ship.clone()),
                    date(l_commit.clone()),
                    date(l_receipt.clone()),
                    Column::from_strings(&l_rflag),
                    Column::from_strings(&l_status),
                    Column::from_strings(&l_mode),
                ],
            )?;
            t.create_index(cols::lineitem::ORDERKEY)?;
            t.create_index(cols::lineitem::PARTKEY)?;
            t.create_index(cols::lineitem::SUPPKEY)?;
            t.create_index(cols::lineitem::SHIPMODE)?;
            Ok(t)
        })?;
    }

    Ok(db)
}

/// Convenience used by templates: a seeded RNG for instance `i` of a
/// template.
pub fn instance_rng(config_seed: u64, template: &str, instance: u64) -> Rng {
    reopt_common::rng::derive_rng_indexed(config_seed, template, instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::tables;

    fn tiny() -> TpchConfig {
        TpchConfig {
            scale: 0.002,
            ..Default::default()
        }
    }

    #[test]
    fn schema_and_ids_line_up() {
        let db = build_tpch_database(&tiny()).unwrap();
        assert_eq!(db.table_id("region").unwrap(), tables::REGION);
        assert_eq!(db.table_id("nation").unwrap(), tables::NATION);
        assert_eq!(db.table_id("supplier").unwrap(), tables::SUPPLIER);
        assert_eq!(db.table_id("customer").unwrap(), tables::CUSTOMER);
        assert_eq!(db.table_id("part").unwrap(), tables::PART);
        assert_eq!(db.table_id("partsupp").unwrap(), tables::PARTSUPP);
        assert_eq!(db.table_id("orders").unwrap(), tables::ORDERS);
        assert_eq!(db.table_id("lineitem").unwrap(), tables::LINEITEM);
        // Column name ↔ constant alignment (spot checks).
        let li = db.table(tables::LINEITEM).unwrap();
        assert_eq!(
            li.schema().col_by_name("l_receiptdate").unwrap(),
            cols::lineitem::RECEIPTDATE
        );
        let p = db.table(tables::PART).unwrap();
        assert_eq!(
            p.schema().col_by_name("p_container").unwrap(),
            cols::part::CONTAINER
        );
    }

    #[test]
    fn sizes_scale_sanely() {
        let db = build_tpch_database(&tiny()).unwrap();
        let orders = db.table(tables::ORDERS).unwrap().row_count();
        let lineitem = db.table(tables::LINEITEM).unwrap().row_count();
        assert!(orders >= 500);
        // 1..=7 lines per order, so lineitem between 1× and 7× orders.
        assert!(lineitem >= orders && lineitem <= orders * 7);
        assert_eq!(db.table(tables::REGION).unwrap().row_count(), 5);
        assert_eq!(db.table(tables::NATION).unwrap().row_count(), 25);
    }

    #[test]
    fn fk_integrity() {
        let db = build_tpch_database(&tiny()).unwrap();
        let n_cust = db.table(tables::CUSTOMER).unwrap().row_count() as i64;
        for &v in db
            .table(tables::ORDERS)
            .unwrap()
            .column(cols::orders::CUSTKEY)
            .unwrap()
            .data()
        {
            assert!(v >= 0 && v < n_cust);
        }
        let n_orders = db.table(tables::ORDERS).unwrap().row_count() as i64;
        for &v in db
            .table(tables::LINEITEM)
            .unwrap()
            .column(cols::lineitem::ORDERKEY)
            .unwrap()
            .data()
        {
            assert!(v >= 0 && v < n_orders);
        }
    }

    #[test]
    fn receiptdate_tracks_shipdate() {
        let db = build_tpch_database(&tiny()).unwrap();
        let li = db.table(tables::LINEITEM).unwrap();
        let ship = li.column(cols::lineitem::SHIPDATE).unwrap().data();
        let receipt = li.column(cols::lineitem::RECEIPTDATE).unwrap().data();
        for (s, r) in ship.iter().zip(receipt) {
            assert!(r > s && r - s <= 30, "receipt {r} vs ship {s}");
        }
    }

    #[test]
    fn container_brand_correlation_present() {
        let db = build_tpch_database(&TpchConfig {
            scale: 0.01,
            ..Default::default()
        })
        .unwrap();
        let p = db.table(tables::PART).unwrap();
        let brands = p.column(cols::part::BRAND).unwrap().data();
        let containers = p.column(cols::part::CONTAINER).unwrap().data();
        // The modal container per brand should dominate far beyond the
        // 1/40 a uniform distribution would give.
        let mut by_brand: std::collections::HashMap<i64, Vec<i64>> = Default::default();
        for (b, c) in brands.iter().zip(containers) {
            by_brand.entry(*b).or_default().push(*c);
        }
        let (b, cs) = by_brand.iter().next().unwrap();
        let mut freq: std::collections::HashMap<i64, usize> = Default::default();
        for c in cs {
            *freq.entry(*c).or_default() += 1;
        }
        let modal = freq.values().max().unwrap();
        let frac = *modal as f64 / cs.len() as f64;
        assert!(frac > 0.5, "brand {b}: modal container fraction {frac}");
    }

    #[test]
    fn zipf_skew_concentrates_order_customers() {
        let uniform = build_tpch_database(&TpchConfig {
            scale: 0.005,
            zipf_z: 0.0,
            ..Default::default()
        })
        .unwrap();
        let skewed = build_tpch_database(&TpchConfig {
            scale: 0.005,
            zipf_z: 1.0,
            ..Default::default()
        })
        .unwrap();
        let top_share = |db: &Database| {
            let c = db
                .table(tables::ORDERS)
                .unwrap()
                .column(cols::orders::CUSTKEY)
                .unwrap();
            let mut freq: std::collections::HashMap<i64, usize> = Default::default();
            for &v in c.data() {
                *freq.entry(v).or_default() += 1;
            }
            let max = *freq.values().max().unwrap();
            max as f64 / c.len() as f64
        };
        assert!(top_share(&skewed) > 5.0 * top_share(&uniform));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = build_tpch_database(&tiny()).unwrap();
        let b = build_tpch_database(&tiny()).unwrap();
        assert_eq!(
            a.table(tables::LINEITEM)
                .unwrap()
                .column(cols::lineitem::SHIPDATE)
                .unwrap()
                .data(),
            b.table(tables::LINEITEM)
                .unwrap()
                .column(cols::lineitem::SHIPDATE)
                .unwrap()
                .data()
        );
    }
}
