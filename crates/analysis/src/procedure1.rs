//! Monte-Carlo simulation of Procedure 1 (§3.3.1) — the ball-queue model
//! whose expected termination time is S_N.
//!
//! A queue holds N balls, initially unmarked. Each step takes the head
//! ball; if marked, stop; otherwise mark it and reinsert it at a uniformly
//! random position. The simulation validates Lemma 1 empirically and backs
//! the Figure 3 harness with observed means next to the closed form.

use rand::RngExt;
use reopt_common::rng::derive_rng;

/// Run Procedure 1 once; returns the number of steps until termination
/// (the step that observes a marked head counts, as in Lemma 1's proof).
pub fn simulate_once(n: usize, rng: &mut reopt_common::rng::Rng) -> u64 {
    assert!(n > 0);
    // Queue of ball ids; marked[i] tracks marking.
    let mut queue: Vec<u32> = (0..n as u32).collect();
    let mut marked = vec![false; n];
    let mut steps = 0u64;
    loop {
        steps += 1;
        let head = queue[0];
        if marked[head as usize] {
            return steps - 1; // the paper counts marking steps only
        }
        marked[head as usize] = true;
        queue.remove(0);
        let pos = rng.random_range(0..n); // uniform over N positions
        let pos = pos.min(queue.len());
        queue.insert(pos, head);
    }
}

/// Mean steps over `trials` independent runs.
pub fn simulate_mean(n: usize, trials: usize, seed: u64) -> f64 {
    let mut rng = derive_rng(seed, "procedure1");
    let total: u64 = (0..trials).map(|_| simulate_once(n, &mut rng)).sum();
    total as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sn::s_n;

    #[test]
    fn simulation_matches_closed_form_small_n() {
        for n in [2usize, 5, 10, 25] {
            let mean = simulate_mean(n, 20_000, 42);
            let expected = s_n(n as u64);
            let rel = (mean - expected).abs() / expected;
            assert!(
                rel < 0.05,
                "N={n}: simulated {mean} vs closed form {expected}"
            );
        }
    }

    #[test]
    fn simulation_matches_closed_form_n_100() {
        let mean = simulate_mean(100, 5_000, 7);
        let expected = s_n(100);
        let rel = (mean - expected).abs() / expected;
        assert!(rel < 0.08, "simulated {mean} vs closed form {expected}");
    }

    #[test]
    fn single_ball_terminates_in_one_step() {
        // N=1: mark in step 1, observe marked in step 2 → counted as 1.
        let mean = simulate_mean(1, 100, 3);
        assert!((mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(simulate_mean(20, 100, 5), simulate_mean(20, 100, 5));
        assert_ne!(simulate_mean(20, 1000, 5), simulate_mean(20, 1000, 6));
    }
}
