//! Appendix B: step-count analyses when all local estimation errors are
//! overestimates or all are underestimates (left-deep trees).
//!
//! * Overestimation-only (Theorem 7): at most `m + 1` steps for a query
//!   with `m` joins — each round validates at least one more join level of
//!   the final plan.
//! * Underestimation-only: the re-optimization walk partitions by the
//!   plan's first join (the `M` join-graph edges); the expected step count
//!   is bounded by `S_{N/M}`, well below `S_N`.

use crate::sn::s_n;
use rand::RngExt;
use reopt_common::rng::derive_rng;

/// Theorem 7's worst-case bound for overestimation-only re-optimization
/// of a left-deep plan with `m` joins.
pub fn overestimate_only_bound(m: u64) -> u64 {
    m + 1
}

/// Appendix B's expected-step bound for underestimation-only
/// re-optimization: `S_{N/M}` for a search space of `N` join trees over a
/// join graph with `M` edges.
pub fn underestimate_only_expected(n: u64, m_edges: u64) -> f64 {
    if m_edges == 0 {
        return s_n(n);
    }
    s_n(n / m_edges.max(1))
}

/// Simulate the overestimation-only regime: in each round, the lowest
/// not-yet-validated join of the final left-deep order is corrected
/// (its cost only ever decreases), which by Lemma 2 restricts the next
/// optimal plan to those containing the validated prefix. Returns the
/// number of rounds until the plan is fully validated — this directly
/// illustrates why the bound is `m + 1`.
pub fn simulate_overestimate_only(m_joins: usize, seed: u64) -> u64 {
    let mut rng = derive_rng(seed, "overestimate-sim");
    // Validated prefix length of the (unknown) final plan.
    let mut validated = 0usize;
    let mut rounds = 0u64;
    while validated < m_joins {
        rounds += 1;
        // Each round validates at least one new prefix level; with some
        // luck several (when the re-planned prefix coincides deeper).
        let advance = 1 + rng.random_range(0..2usize.min(m_joins - validated));
        validated += advance;
    }
    rounds + 1 // final confirming round
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overestimate_bound_formula() {
        assert_eq!(overestimate_only_bound(0), 1);
        assert_eq!(overestimate_only_bound(4), 5);
    }

    #[test]
    fn overestimate_simulation_respects_bound() {
        for m in 1..12usize {
            for seed in 0..20 {
                let rounds = simulate_overestimate_only(m, seed);
                assert!(
                    rounds <= (m as u64) + 1,
                    "m={m}, seed={seed}: {rounds} rounds"
                );
            }
        }
    }

    #[test]
    fn underestimate_bound_matches_paper_example() {
        // §3.3.2: N=1000, M=10 → S_N ≈ 39 but S_{N/M} ≈ 12.
        let full = s_n(1000);
        let partitioned = underestimate_only_expected(1000, 10);
        assert!((38.0..40.5).contains(&full));
        assert!((11.5..13.0).contains(&partitioned));
        assert!(partitioned < full / 2.0);
    }

    #[test]
    fn degenerate_edge_counts() {
        assert_eq!(underestimate_only_expected(100, 0), s_n(100));
        assert_eq!(underestimate_only_expected(100, 1), s_n(100));
    }
}
