//! The closed-form expected step count S_N (Lemma 1, Equation 1) and its
//! O(√N) bound (Theorem 3).
//!
//! ```text
//! S_N = Σ_{k=1}^{N} k · (1 - 1/N)(1 - 2/N)···(1 - (k-1)/N) · k/N
//! ```
//!
//! Figure 3 plots S_N against √N and 2√N for N up to 1000; the
//! `fig03_sn_curve` harness regenerates that series from this module.

/// Compute S_N by Equation 1. `n = 0` returns 0.
pub fn s_n(n: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    let mut sum = 0.0;
    // Running product Π_{j=1}^{k-1} (1 - j/N); k = 1 term has empty product.
    let mut prod = 1.0;
    for k in 1..=n {
        let kf = k as f64;
        sum += kf * prod * (kf / nf);
        prod *= 1.0 - kf / nf; // extend the product for the next k
        if prod <= 0.0 {
            break; // k = N reached: all further terms vanish
        }
    }
    sum
}

/// The series (N, S_N) for N in `1..=max_n` with the reference envelopes
/// √N and 2√N — the exact content of Figure 3.
pub fn sn_series(max_n: u64) -> Vec<SnPoint> {
    (1..=max_n)
        .map(|n| SnPoint {
            n,
            s_n: s_n(n),
            sqrt_n: (n as f64).sqrt(),
            two_sqrt_n: 2.0 * (n as f64).sqrt(),
        })
        .collect()
}

/// One point of the Figure 3 series.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct SnPoint {
    /// Search-space size.
    pub n: u64,
    /// Expected steps (Equation 1).
    pub s_n: f64,
    /// √N reference.
    pub sqrt_n: f64,
    /// 2√N reference.
    pub two_sqrt_n: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cases_by_hand() {
        // N = 1: the single ball is marked in step 1, terminates at step 2?
        // Equation 1 for N=1: k=1 term: 1 · (empty product) · 1/1 = 1.
        assert!((s_n(1) - 1.0).abs() < 1e-12);
        // N = 2: k=1: 1·1·(1/2) = 0.5; k=2: 2·(1-1/2)·(2/2) = 1.0 → 1.5.
        assert!((s_n(2) - 1.5).abs() < 1e-12);
        // N = 3: k=1: 1/3; k=2: 2·(2/3)·(2/3) = 8/9; k=3: 3·(2/3)(1/3)·1 = 2/3.
        let expected = 1.0 / 3.0 + 8.0 / 9.0 + 2.0 / 3.0;
        assert!((s_n(3) - expected).abs() < 1e-12);
        assert_eq!(s_n(0), 0.0);
    }

    #[test]
    fn growth_is_monotone() {
        let mut prev = 0.0;
        for n in 1..200 {
            let v = s_n(n);
            assert!(v > prev, "S_N not monotone at {n}");
            prev = v;
        }
    }

    #[test]
    fn theorem3_bound_envelope() {
        // Figure 3's visual claim: √N ≤ S_N ≤ 2√N over the plotted range
        // (the lower inequality holds for N ≥ 2).
        for n in 2..=1000u64 {
            let v = s_n(n);
            let sq = (n as f64).sqrt();
            assert!(v >= sq, "S_{n} = {v} < √N = {sq}");
            assert!(v <= 2.0 * sq, "S_{n} = {v} > 2√N = {}", 2.0 * sq);
        }
    }

    #[test]
    fn matches_paper_example_value() {
        // §3.3.2 remark: "if N = 1000 … we have S_N = 39".
        let v = s_n(1000);
        assert!((38.0..40.5).contains(&v), "S_1000 = {v}");
        // And S_100 ≈ 12 (the paper: S_{N/M} = 12 for N=1000, M=10 →
        // S_100).
        let v = s_n(100);
        assert!((11.5..13.0).contains(&v), "S_100 = {v}");
    }

    #[test]
    fn series_covers_requested_range() {
        let series = sn_series(50);
        assert_eq!(series.len(), 50);
        assert_eq!(series[0].n, 1);
        assert_eq!(series[49].n, 50);
        for p in &series {
            assert!((p.two_sqrt_n - 2.0 * p.sqrt_n).abs() < 1e-12);
        }
    }

    #[test]
    fn large_n_remains_finite_and_sane() {
        let v = s_n(1_000_000);
        assert!(v.is_finite());
        // ≈ sqrt(π/2 · N) ≈ 1.2533·√N for large N.
        let ratio = v / (1_000_000f64).sqrt();
        assert!((1.2..1.3).contains(&ratio), "ratio {ratio}");
    }
}
