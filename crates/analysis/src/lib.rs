//! Theory toolkit for §3 and Appendix B of the paper.
//!
//! * [`sn`] — the closed-form expected iteration count S_N (Equation 1)
//!   and the Figure 3 series with its √N / 2√N envelopes,
//! * [`procedure1`] — Monte-Carlo simulation of the ball-queue model,
//! * [`markov`] — the overestimation-only / underestimation-only analyses
//!   of Appendix B.

pub mod markov;
pub mod procedure1;
pub mod sn;

pub use markov::{overestimate_only_bound, underestimate_only_expected};
pub use procedure1::{simulate_mean, simulate_once};
pub use sn::{s_n, sn_series, SnPoint};
