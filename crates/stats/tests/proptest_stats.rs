//! Property tests for the statistics subsystem: ANALYZE must produce
//! estimates that are valid probabilities, internally consistent, and
//! exact wherever the MCV list covers the whole domain.

use proptest::prelude::*;
use reopt_stats::{analyze_column, eq_join_selectivity, AnalyzeOpts};
use reopt_storage::value::NULL_SENTINEL;
use reopt_storage::{Column, LogicalType};

fn data_strategy() -> impl Strategy<Value = Vec<i64>> {
    // Mixtures of domains and sizes, with NULLs and a heavy hitter mixed in.
    (1usize..2000, 1i64..500).prop_flat_map(|(rows, domain)| {
        proptest::collection::vec(
            prop_oneof![
                8 => (0..domain).boxed(),
                1 => Just(0i64).boxed(),           // heavy hitter
                1 => Just(NULL_SENTINEL).boxed(),  // NULLs
            ],
            rows..rows + 1,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every selectivity is a probability; eq-selectivities over the MCV
    /// domain sum to ≤ 1.
    #[test]
    fn selectivities_are_probabilities(data in data_strategy(), probe in -10i64..510) {
        let col = Column::from_i64(LogicalType::Int, data);
        let s = analyze_column(&col, &AnalyzeOpts::default());
        for sel in [
            s.eq_selectivity(probe),
            s.ne_selectivity(probe),
            s.lt_selectivity(probe),
            s.le_selectivity(probe),
            s.gt_selectivity(probe),
            s.ge_selectivity(probe),
            s.between_selectivity(probe, probe + 10),
        ] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&sel), "sel {sel}");
        }
        // lt + ge ≈ non-null mass (within clamping slack).
        let lt = s.lt_selectivity(probe);
        let ge = s.ge_selectivity(probe);
        prop_assert!(lt + ge <= 1.0 + 1e-6, "lt {lt} + ge {ge}");
    }

    /// Range selectivity is monotone in the bound.
    #[test]
    fn range_selectivity_is_monotone(data in data_strategy()) {
        let col = Column::from_i64(LogicalType::Int, data);
        let s = analyze_column(&col, &AnalyzeOpts::default());
        let mut prev = 0.0f64;
        for c in (-20..520).step_by(20) {
            let sel = s.lt_selectivity(c);
            prop_assert!(sel + 1e-9 >= prev, "lt({c}) = {sel} < {prev}");
            prev = sel;
        }
    }

    /// When every distinct value fits in the MCV list, eq-estimates are
    /// exact frequencies.
    #[test]
    fn small_domains_estimate_exactly(rows in 1usize..500, domain in 1i64..50) {
        let data: Vec<i64> = (0..rows as i64).map(|i| i % domain).collect();
        let col = Column::from_i64(LogicalType::Int, data.clone());
        let s = analyze_column(&col, &AnalyzeOpts::default());
        for v in 0..domain {
            let truth = data.iter().filter(|&&x| x == v).count() as f64 / rows as f64;
            if truth > 0.0 {
                let est = s.eq_selectivity(v);
                prop_assert!((est - truth).abs() < 1e-9, "v={v}: est {est} vs {truth}");
            }
        }
    }

    /// n_distinct and null_frac are exact under full-scan ANALYZE.
    #[test]
    fn analyze_counts_are_exact(data in data_strategy()) {
        let col = Column::from_i64(LogicalType::Int, data.clone());
        let s = analyze_column(&col, &AnalyzeOpts::default());
        let nulls = data.iter().filter(|&&v| v == NULL_SENTINEL).count();
        let distinct: std::collections::HashSet<i64> =
            data.iter().copied().filter(|&v| v != NULL_SENTINEL).collect();
        prop_assert_eq!(s.n_distinct as usize, distinct.len());
        prop_assert!((s.null_frac - nulls as f64 / data.len() as f64).abs() < 1e-12);
        prop_assert_eq!(s.min, distinct.iter().min().copied());
        prop_assert_eq!(s.max, distinct.iter().max().copied());
    }

    /// Join selectivity is symmetric and a probability.
    #[test]
    fn join_selectivity_symmetric(a in data_strategy(), b in data_strategy()) {
        let ca = Column::from_i64(LogicalType::Int, a);
        let cb = Column::from_i64(LogicalType::Int, b);
        let sa = analyze_column(&ca, &AnalyzeOpts::default());
        let sb = analyze_column(&cb, &AnalyzeOpts::default());
        let (ra, rb) = (ca.len() as f64, cb.len() as f64);
        let ab = eq_join_selectivity(&sa, &sb, ra, rb);
        let ba = eq_join_selectivity(&sb, &sa, rb, ra);
        prop_assert!((ab - ba).abs() < 1e-12, "{ab} vs {ba}");
        prop_assert!((0.0..=1.0).contains(&ab));
    }
}
