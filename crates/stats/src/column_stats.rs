//! Per-column, per-table and per-database statistics containers, plus
//! local-predicate selectivity estimation (PostgreSQL's `var_eq_const` /
//! `scalarineqsel` logic).

use serde::{Deserialize, Serialize};

use crate::counts::TableAnalyzeState;
use crate::histogram::EquiDepthHistogram;
use crate::mcv::McvList;
use reopt_common::{ColId, Error, Result, TableId};
use reopt_storage::DataVersion;

/// Lower bound applied to every selectivity so downstream cost arithmetic
/// never sees exact zeros from the *statistical* estimator. (The sampling
/// estimator is allowed to report zero and is clamped at the cardinality
/// level instead.)
pub const MIN_SELECTIVITY: f64 = 1e-10;

/// Statistics for one column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Total rows in the table at ANALYZE time.
    pub row_count: u64,
    /// Fraction of NULL rows.
    pub null_frac: f64,
    /// Number of distinct non-NULL values.
    pub n_distinct: f64,
    /// Minimum non-NULL value.
    pub min: Option<i64>,
    /// Maximum non-NULL value.
    pub max: Option<i64>,
    /// Most common values and frequencies.
    pub mcv: McvList,
    /// Equi-depth histogram over the non-MCV values.
    pub histogram: Option<EquiDepthHistogram>,
}

impl ColumnStats {
    /// Stats for an empty column.
    pub fn empty() -> Self {
        ColumnStats {
            row_count: 0,
            null_frac: 0.0,
            n_distinct: 0.0,
            min: None,
            max: None,
            mcv: McvList::empty(),
            histogram: None,
        }
    }

    /// Fraction of rows that are non-NULL and not covered by the MCV list.
    pub fn other_frac(&self) -> f64 {
        (1.0 - self.null_frac - self.mcv.total_freq()).max(0.0)
    }

    /// Distinct values outside the MCV list.
    pub fn n_distinct_other(&self) -> f64 {
        (self.n_distinct - self.mcv.len() as f64).max(1.0)
    }

    /// Selectivity of `col = c` (PostgreSQL `var_eq_const`): exact frequency
    /// if `c` is an MCV, otherwise the non-MCV mass spread uniformly over
    /// the non-MCV distinct values.
    pub fn eq_selectivity(&self, c: i64) -> f64 {
        if self.row_count == 0 {
            return MIN_SELECTIVITY;
        }
        if let Some(f) = self.mcv.freq_of(c) {
            return f.max(MIN_SELECTIVITY);
        }
        // Out-of-range constants still get the generic estimate, as in
        // PostgreSQL (it has no proof the constant is absent).
        (self.other_frac() / self.n_distinct_other()).max(MIN_SELECTIVITY)
    }

    /// Selectivity of `col <> c`.
    pub fn ne_selectivity(&self, c: i64) -> f64 {
        ((1.0 - self.null_frac) - self.eq_selectivity(c)).max(MIN_SELECTIVITY)
    }

    /// Selectivity of `col < c` (strict).
    pub fn lt_selectivity(&self, c: i64) -> f64 {
        self.range_below(c)
    }

    /// Selectivity of `col <= c`.
    pub fn le_selectivity(&self, c: i64) -> f64 {
        self.range_below(c.saturating_add(1))
    }

    /// Selectivity of `col > c` (strict).
    pub fn gt_selectivity(&self, c: i64) -> f64 {
        ((1.0 - self.null_frac) - self.le_selectivity(c)).max(MIN_SELECTIVITY)
    }

    /// Selectivity of `col >= c`.
    pub fn ge_selectivity(&self, c: i64) -> f64 {
        ((1.0 - self.null_frac) - self.lt_selectivity(c)).max(MIN_SELECTIVITY)
    }

    /// Selectivity of `lo <= col <= hi`.
    pub fn between_selectivity(&self, lo: i64, hi: i64) -> f64 {
        if hi < lo {
            return MIN_SELECTIVITY;
        }
        (self.range_below(hi.saturating_add(1)) - self.range_below(lo)).max(MIN_SELECTIVITY)
    }

    /// Fraction of all rows with value strictly below `c`: MCV portion is
    /// summed exactly; the histogram portion is interpolated and weighted by
    /// the non-MCV mass.
    fn range_below(&self, c: i64) -> f64 {
        if self.row_count == 0 {
            return MIN_SELECTIVITY;
        }
        let mcv_part = self.mcv.freq_where(|v| v < c);
        let hist_part = match &self.histogram {
            Some(h) => h.fraction_below(c) * self.other_frac(),
            // No histogram: all non-MCV mass either below or above min/max.
            None => match (self.min, self.max) {
                (Some(mn), Some(mx)) => {
                    if c > mx {
                        self.other_frac()
                    } else if c <= mn {
                        0.0
                    } else {
                        0.5 * self.other_frac()
                    }
                }
                _ => 0.0,
            },
        };
        (mcv_part + hist_part).clamp(MIN_SELECTIVITY, 1.0)
    }
}

/// Statistics for all columns of one table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableStats {
    /// The table these stats describe.
    pub table: TableId,
    /// Row count at ANALYZE time.
    pub row_count: u64,
    /// Per-column stats, positionally aligned with the schema.
    pub columns: Vec<ColumnStats>,
    /// The table's [`DataVersion`] when these stats were computed —
    /// [`crate::analyze_incremental`] compares it against the live table
    /// to decide between reuse, tail-merge and full re-scan.
    pub as_of: DataVersion,
    /// Exact per-column value counts retained for incremental ANALYZE
    /// (`None` when unavailable, e.g. stats assembled by hand — a later
    /// incremental ANALYZE then falls back to a full re-scan).
    pub state: Option<TableAnalyzeState>,
}

impl TableStats {
    /// Stats accessor for one column.
    pub fn column(&self, col: ColId) -> Result<&ColumnStats> {
        self.columns
            .get(col.index())
            .ok_or_else(|| Error::not_found(format!("stats for column {col} of {}", self.table)))
    }
}

/// Statistics for a whole database, indexed by [`TableId`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DatabaseStats {
    tables: Vec<TableStats>,
}

impl DatabaseStats {
    /// Assemble from per-table stats (must be in `TableId` order).
    pub fn new(tables: Vec<TableStats>) -> Result<Self> {
        for (i, t) in tables.iter().enumerate() {
            if t.table.index() != i {
                return Err(Error::invalid(format!(
                    "table stats out of order: slot {i} holds {}",
                    t.table
                )));
            }
        }
        Ok(DatabaseStats { tables })
    }

    /// Stats for `table`.
    pub fn table(&self, table: TableId) -> Result<&TableStats> {
        self.tables
            .get(table.index())
            .ok_or_else(|| Error::not_found(format!("stats for table {table}")))
    }

    /// Stats for a column of a table.
    pub fn column(&self, table: TableId, col: ColId) -> Result<&ColumnStats> {
        self.table(table)?.column(col)
    }

    /// All table stats in id order.
    pub fn tables(&self) -> &[TableStats] {
        &self.tables
    }

    /// Serialize to JSON — persist ANALYZE results across processes (the
    /// paper's setting keeps statistics and samples offline; this is the
    /// statistics half).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| Error::internal(format!("stats to_json: {e}")))
    }

    /// Load from [`DatabaseStats::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self> {
        let stats: DatabaseStats = serde_json::from_str(json)
            .map_err(|e| Error::invalid(format!("stats from_json: {e}")))?;
        DatabaseStats::new(stats.tables)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1000 rows: value 7 appears 500 times (MCV), values 100..=599 once
    /// each (histogram).
    fn mixed_stats() -> ColumnStats {
        let tail: Vec<i64> = (100..600).collect();
        ColumnStats {
            row_count: 1000,
            null_frac: 0.0,
            n_distinct: 501.0,
            min: Some(7),
            max: Some(599),
            mcv: McvList::new(vec![(7, 0.5)]),
            histogram: EquiDepthHistogram::from_sorted(&tail, 50),
        }
    }

    #[test]
    fn eq_uses_mcv_exactly() {
        let s = mixed_stats();
        assert!((s.eq_selectivity(7) - 0.5).abs() < 1e-12);
        // Non-MCV: other mass 0.5 over 500 distinct -> 0.001.
        assert!((s.eq_selectivity(250) - 0.001).abs() < 1e-9);
    }

    #[test]
    fn ne_complements_eq() {
        let s = mixed_stats();
        assert!((s.ne_selectivity(7) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn range_combines_mcv_and_histogram() {
        let s = mixed_stats();
        // col < 100: only the MCV value 7 qualifies.
        assert!((s.lt_selectivity(100) - 0.5).abs() < 1e-9);
        // col < 350: MCV + half the histogram mass = 0.5 + 0.25.
        let got = s.lt_selectivity(350);
        assert!((got - 0.75).abs() < 0.02, "got {got}");
        // col >= 100: the histogram half.
        let got = s.ge_selectivity(100);
        assert!((got - 0.5).abs() < 0.02, "got {got}");
    }

    #[test]
    fn between_is_difference_of_ranges() {
        let s = mixed_stats();
        let got = s.between_selectivity(100, 599);
        assert!((got - 0.5).abs() < 0.02, "got {got}");
        assert_eq!(s.between_selectivity(10, 5), MIN_SELECTIVITY);
    }

    #[test]
    fn nulls_reduce_inequality_mass() {
        let mut s = mixed_stats();
        s.null_frac = 0.2;
        // 1 - null_frac bounds every inequality.
        assert!(s.gt_selectivity(0) <= 0.8 + 1e-9);
        assert!(s.ge_selectivity(i64::MIN + 1) <= 0.8 + 1e-9);
    }

    #[test]
    fn empty_column_never_divides_by_zero() {
        let s = ColumnStats::empty();
        assert!(s.eq_selectivity(1) > 0.0);
        assert!(s.lt_selectivity(1) > 0.0);
        assert!(s.between_selectivity(0, 10) > 0.0);
    }

    #[test]
    fn no_histogram_fallback_uses_min_max() {
        // All 4 values are MCVs; no histogram stored.
        let s = ColumnStats {
            row_count: 100,
            null_frac: 0.0,
            n_distinct: 4.0,
            min: Some(10),
            max: Some(40),
            mcv: McvList::new(vec![(10, 0.25), (20, 0.25), (30, 0.25), (40, 0.25)]),
            histogram: None,
        };
        assert!((s.lt_selectivity(25) - 0.5).abs() < 1e-9);
        assert!((s.eq_selectivity(20) - 0.25).abs() < 1e-12);
        assert!(s.lt_selectivity(10) < 1e-9 + MIN_SELECTIVITY);
        assert!((s.lt_selectivity(50) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn database_stats_indexing() {
        let t0 = TableStats {
            table: TableId::new(0),
            row_count: 10,
            columns: vec![ColumnStats::empty()],
            as_of: DataVersion::ZERO,
            state: None,
        };
        let t1 = TableStats {
            table: TableId::new(1),
            row_count: 20,
            columns: vec![],
            as_of: DataVersion::ZERO,
            state: None,
        };
        let db = DatabaseStats::new(vec![t0, t1]).unwrap();
        assert_eq!(db.table(TableId::new(1)).unwrap().row_count, 20);
        assert!(db.column(TableId::new(0), ColId::new(0)).is_ok());
        assert!(db.column(TableId::new(0), ColId::new(1)).is_err());
        assert!(db.table(TableId::new(2)).is_err());
    }

    #[test]
    fn json_round_trip_preserves_estimates() {
        let s = mixed_stats();
        let t = TableStats {
            table: TableId::new(0),
            row_count: 1000,
            columns: vec![s],
            as_of: DataVersion::ZERO,
            state: None,
        };
        let db = DatabaseStats::new(vec![t]).unwrap();
        let json = db.to_json().unwrap();
        let back = DatabaseStats::from_json(&json).unwrap();
        let a = db.column(TableId::new(0), ColId::new(0)).unwrap();
        let b = back.column(TableId::new(0), ColId::new(0)).unwrap();
        // MCV lookups must survive the round trip (index is rebuilt).
        assert_eq!(b.mcv.freq_of(7), Some(0.5));
        for probe in [7i64, 100, 250, 599, 1000] {
            assert!((a.eq_selectivity(probe) - b.eq_selectivity(probe)).abs() < 1e-12);
            assert!((a.lt_selectivity(probe) - b.lt_selectivity(probe)).abs() < 1e-12);
        }
        assert_eq!(a.n_distinct, b.n_distinct);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(DatabaseStats::from_json("not json").is_err());
    }

    #[test]
    fn out_of_order_table_stats_rejected() {
        let t1 = TableStats {
            table: TableId::new(1),
            row_count: 20,
            columns: vec![],
            as_of: DataVersion::ZERO,
            state: None,
        };
        assert!(DatabaseStats::new(vec![t1]).is_err());
    }
}
