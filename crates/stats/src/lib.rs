//! Statistics subsystem — the engine's analogue of PostgreSQL's `pg_stats`.
//!
//! The paper (§4.2.1) describes exactly which statistics its host optimizer
//! keeps per column and how they are used; this crate reproduces that
//! machinery:
//!
//! * number of distinct values `n_distinct`,
//! * most-common values (MCVs) with exact frequencies,
//! * an equi-depth histogram over the non-MCV values,
//! * null fraction and min/max.
//!
//! [`analyze`] builds these from stored tables (`ANALYZE`), either from
//! scratch or incrementally ([`analyze_incremental`]) by merging exact
//! per-column value counts ([`counts`]) over just the rows appended since
//! the last pass; [`drift`] reduces the gap between two ANALYZE results to
//! per-table drift scores so a serving layer can tell when cached plans
//! were validated against a distribution that no longer exists;
//! [`column_stats::ColumnStats`] answers selectivity questions
//! for local predicates; [`join`] implements the System-R / PostgreSQL
//! `eqjoinsel` logic for equi-join predicates, including the MCV-join
//! refinement the paper highlights.
//!
//! Everything here embodies the *attribute-value-independence* (AVI)
//! assumption when combined by the optimizer — which is precisely the
//! assumption the paper's correlated workloads defeat and its sampling
//! loop repairs.

pub mod analyze;
pub mod column_stats;
pub mod counts;
pub mod drift;
pub mod hist2d;
pub mod histogram;
pub mod join;
pub mod mcv;

pub use analyze::{
    analyze_column, analyze_database, analyze_incremental, analyze_table, AnalyzeOpts,
    IncrementalAnalyze,
};
pub use column_stats::{ColumnStats, DatabaseStats, TableStats};
pub use counts::{TableAnalyzeState, ValueCounts};
pub use drift::{column_drift, database_drift, table_drift, DriftReport};
pub use histogram::EquiDepthHistogram;
pub use join::eq_join_selectivity;
pub use mcv::McvList;
