//! Two-dimensional equi-width histograms — the paper's Example 2 (§5.3.1).
//!
//! The paper argues that even *multidimensional* histograms cannot separate
//! the empty from the non-empty OTT queries unless the buckets degenerate
//! to exact joint distributions: with `l × l` buckets over an `m`-value
//! domain (bucket side `m/l`), the diagonal data `B = A` fills the diagonal
//! buckets, and the uniformity-within-bucket assumption then assigns the
//! *same* selectivity `1/(8 l²)` to the in-bucket pairs `(c, c)` and
//! `(c, c±1)` even though only the former occur.
//!
//! This module implements such a histogram so the claim is testable — see
//! `hist2d_cannot_separate_ott` in the tests, which reproduces the
//! selectivity arithmetic of Example 2 exactly.

use serde::{Deserialize, Serialize};

/// A 2-D equi-width histogram over the box `[min_a, max_a] × [min_b, max_b]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hist2d {
    min_a: i64,
    max_a: i64,
    min_b: i64,
    max_b: i64,
    buckets_per_dim: usize,
    /// Row-major bucket counts (`a` index major).
    counts: Vec<u64>,
    total: u64,
}

impl Hist2d {
    /// Build from paired columns with `buckets_per_dim` buckets per axis.
    pub fn build(a: &[i64], b: &[i64], buckets_per_dim: usize) -> Option<Self> {
        if a.is_empty() || a.len() != b.len() || buckets_per_dim == 0 {
            return None;
        }
        let (min_a, max_a) = (*a.iter().min()?, *a.iter().max()?);
        let (min_b, max_b) = (*b.iter().min()?, *b.iter().max()?);
        let mut h = Hist2d {
            min_a,
            max_a,
            min_b,
            max_b,
            buckets_per_dim,
            counts: vec![0; buckets_per_dim * buckets_per_dim],
            total: a.len() as u64,
        };
        for (&x, &y) in a.iter().zip(b) {
            let i = h.bucket_index(x, min_a, max_a);
            let j = h.bucket_index(y, min_b, max_b);
            h.counts[i * buckets_per_dim + j] += 1;
        }
        Some(h)
    }

    fn bucket_index(&self, v: i64, min: i64, max: i64) -> usize {
        if max == min {
            return 0;
        }
        let width = (max - min + 1) as f64 / self.buckets_per_dim as f64;
        let idx = ((v - min) as f64 / width) as usize;
        idx.min(self.buckets_per_dim - 1)
    }

    /// Estimated probability of the *point* predicate `A = a ∧ B = b`,
    /// under the uniformity-within-bucket assumption.
    pub fn point_probability(&self, a: i64, b: i64) -> f64 {
        if a < self.min_a || a > self.max_a || b < self.min_b || b > self.max_b {
            return 0.0;
        }
        let i = self.bucket_index(a, self.min_a, self.max_a);
        let j = self.bucket_index(b, self.min_b, self.max_b);
        let bucket_mass = self.counts[i * self.buckets_per_dim + j] as f64 / self.total as f64;
        // Cells per bucket = (side_a × side_b); uniform within the bucket.
        let side_a = ((self.max_a - self.min_a + 1) as f64 / self.buckets_per_dim as f64).max(1.0);
        let side_b = ((self.max_b - self.min_b + 1) as f64 / self.buckets_per_dim as f64).max(1.0);
        bucket_mass / (side_a * side_b)
    }

    /// Number of buckets per dimension.
    pub fn buckets_per_dim(&self) -> usize {
        self.buckets_per_dim
    }

    /// Total number of rows summarized.
    pub fn total_rows(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Example 2: B = A over an m-value domain, l = m/2 buckets
    /// per dimension, perfect 2-D histograms on both (A1,B1) and (A2,B2).
    /// The estimated selectivity of the OTT query
    /// `σ(A1=c1 ∧ A2=c2 ∧ B1=B2)(R1 × R2)` is
    /// `Σ_b Pr(A1=c1, B1=b)·Pr(A2=c2, B2=b)`, which the histogram puts at
    /// `1/(8l²)` for *both* the non-empty query (c1=c2=0) and the empty one
    /// (c1=0, c2=1) — the two are indistinguishable.
    #[test]
    fn hist2d_cannot_separate_ott() {
        let m: i64 = 100;
        let l = (m / 2) as usize; // 50 buckets per dim, 2500 buckets total
        let a: Vec<i64> = (0..m).collect();
        let b = a.clone(); // perfectly correlated: B = A
        let h = Hist2d::build(&a, &b, l).unwrap();

        // Point probability within a diagonal bucket: mass 1/l over a 2×2
        // cell block = 1/(4l), identically for (0,0) and the absent (0,1).
        let p_diag = h.point_probability(0, 0); // truly 1/m
        let p_off = h.point_probability(0, 1); // truly 0
        assert!(p_diag > 0.0);
        assert!((p_diag - p_off).abs() < 1e-12);
        assert!((p_diag - 1.0 / (4.0 * l as f64)).abs() < 1e-12);

        // Query selectivity: Σ_b Pr(A1=c1,B1=b)·Pr(A2=c2,B2=b).
        let query_sel = |c1: i64, c2: i64| -> f64 {
            (0..m)
                .map(|bv| h.point_probability(c1, bv) * h.point_probability(c2, bv))
                .sum()
        };
        let s_nonempty = query_sel(0, 0); // truly 1/m² per cross-product pair
        let s_empty = query_sel(0, 1); // truly 0
        let expected = 1.0 / (8.0 * (l as f64) * (l as f64)); // paper's ŝ
        assert!(
            (s_nonempty - expected).abs() < 1e-12,
            "got {s_nonempty}, expected {expected}"
        );
        // Identical estimates — empty and non-empty cannot be separated.
        assert!((s_nonempty - s_empty).abs() < 1e-15);
    }

    #[test]
    fn off_bucket_pairs_are_zero() {
        let m: i64 = 100;
        let a: Vec<i64> = (0..m).collect();
        let h = Hist2d::build(&a, &a, 50).unwrap();
        // (0, 10) falls in an empty bucket: estimated zero.
        assert_eq!(h.point_probability(0, 10), 0.0);
        // Out of range.
        assert_eq!(h.point_probability(-5, 0), 0.0);
        assert_eq!(h.point_probability(0, 1000), 0.0);
    }

    #[test]
    fn perfect_buckets_recover_joint_distribution() {
        // With one bucket per value the joint distribution is exact.
        let m: i64 = 10;
        let a: Vec<i64> = (0..m).collect();
        let h = Hist2d::build(&a, &a, m as usize).unwrap();
        assert!((h.point_probability(3, 3) - 0.1).abs() < 1e-12);
        assert_eq!(h.point_probability(3, 4), 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(Hist2d::build(&[], &[], 4).is_none());
        assert!(Hist2d::build(&[1], &[1, 2], 4).is_none());
        assert!(Hist2d::build(&[1, 2], &[1, 2], 0).is_none());
        // Constant columns collapse to a single bucket.
        let h = Hist2d::build(&[5, 5, 5], &[7, 7, 7], 4).unwrap();
        assert!(h.point_probability(5, 7) > 0.0);
        assert_eq!(h.total_rows(), 3);
    }
}
