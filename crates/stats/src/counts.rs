//! Exact per-column value-count multisets — the retained state behind
//! incremental ANALYZE.
//!
//! [`crate::analyze`] derives every published statistic (MCVs, histogram,
//! n_distinct, min/max, null fraction) from a [`ValueCounts`]: the exact
//! multiset of a column's values. Because the derivation is a pure function
//! of the multiset, and multisets merge exactly, re-analyzing a table whose
//! history since the last ANALYZE is append-only reduces to scanning just
//! the appended tail and merging — with output *bit-identical* to a full
//! re-scan. That equivalence is what the quiescence suite proves and what
//! lets the serving layer run ANALYZE after every ingest without paying
//! full-table costs.
//!
//! Counts are kept sorted by value in a plain `Vec`, never a hash map, so
//! every traversal is deterministic by construction (rule R1 of
//! `reopt-lint`) and serialization is stable.

use serde::{Deserialize, Serialize};

use reopt_storage::value::NULL_SENTINEL;

/// The exact multiset of one column's values: a NULL count plus
/// `(value, occurrences)` pairs sorted by value ascending.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValueCounts {
    /// Number of NULL rows.
    pub nulls: u64,
    /// Non-NULL `(value, occurrences)` pairs, sorted by value ascending.
    pub counts: Vec<(i64, u64)>,
}

impl ValueCounts {
    /// Count a raw column slice ([`NULL_SENTINEL`] encodes NULL).
    pub fn scan(data: &[i64]) -> ValueCounts {
        let mut vals: Vec<i64> = data
            .iter()
            .copied()
            .filter(|&v| v != NULL_SENTINEL)
            .collect();
        let nulls = (data.len() - vals.len()) as u64;
        vals.sort_unstable();
        let mut counts: Vec<(i64, u64)> = Vec::new();
        for v in vals {
            match counts.last_mut() {
                Some((last, c)) if *last == v => *c += 1,
                _ => counts.push((v, 1)),
            }
        }
        ValueCounts { nulls, counts }
    }

    /// Exact multiset union: fold `other` into `self` (sorted-list merge).
    /// `scan(a ++ b)` equals `scan(a).merge(&scan(b))` — the identity that
    /// makes tail-merge ANALYZE exact.
    pub fn merge(&mut self, other: &ValueCounts) {
        self.nulls += other.nulls;
        if other.counts.is_empty() {
            return;
        }
        let mut merged: Vec<(i64, u64)> = Vec::with_capacity(self.counts.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.counts.len() || j < other.counts.len() {
            let pick = match (self.counts.get(i), other.counts.get(j)) {
                (Some(&(a, ca)), Some(&(b, cb))) => {
                    if a == b {
                        i += 1;
                        j += 1;
                        (a, ca + cb)
                    } else if a < b {
                        i += 1;
                        (a, ca)
                    } else {
                        j += 1;
                        (b, cb)
                    }
                }
                (Some(&(a, ca)), None) => {
                    i += 1;
                    (a, ca)
                }
                (None, Some(&(b, cb))) => {
                    j += 1;
                    (b, cb)
                }
                (None, None) => break,
            };
            merged.push(pick);
        }
        self.counts = merged;
    }

    /// Total rows counted (NULLs included).
    pub fn row_count(&self) -> u64 {
        self.nulls + self.non_null()
    }

    /// Non-NULL rows counted.
    pub fn non_null(&self) -> u64 {
        self.counts.iter().map(|&(_, c)| c).sum()
    }

    /// Number of distinct non-NULL values.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }
}

/// The retained ANALYZE state of one table: per-column value counts,
/// positionally aligned with the schema. Carried inside
/// [`crate::TableStats`] so the next (incremental) ANALYZE can merge a
/// dirty tail instead of re-scanning history.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableAnalyzeState {
    /// Per-column value counts in schema order.
    pub columns: Vec<ValueCounts>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_counts_and_sorts() {
        let c = ValueCounts::scan(&[5, 1, NULL_SENTINEL, 5, 1, 5]);
        assert_eq!(c.nulls, 1);
        assert_eq!(c.counts, vec![(1, 2), (5, 3)]);
        assert_eq!(c.row_count(), 6);
        assert_eq!(c.non_null(), 5);
        assert_eq!(c.distinct(), 2);
    }

    #[test]
    fn scan_of_empty_is_empty() {
        let c = ValueCounts::scan(&[]);
        assert_eq!(c, ValueCounts::default());
        assert_eq!(c.row_count(), 0);
    }

    #[test]
    fn merge_equals_scan_of_concatenation() {
        let a = [3, 1, NULL_SENTINEL, 3];
        let b = [2, 3, NULL_SENTINEL, 7, 1];
        let mut merged = ValueCounts::scan(&a);
        merged.merge(&ValueCounts::scan(&b));
        let together: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(merged, ValueCounts::scan(&together));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut c = ValueCounts::scan(&[1, 2, 2]);
        let orig = c.clone();
        c.merge(&ValueCounts::default());
        assert_eq!(c, orig);
        let mut empty = ValueCounts::default();
        empty.merge(&orig);
        assert_eq!(empty, orig);
    }
}
