//! Equi-depth histograms over the non-MCV population of a column.
//!
//! As in PostgreSQL, the histogram divides the *sorted non-MCV values* into
//! buckets of (approximately) equal population and records only the bucket
//! bounds. Range selectivities interpolate linearly within a bucket — the
//! uniformity-within-bucket assumption Example 2 of the paper leans on.

use serde::{Deserialize, Serialize};

/// An equi-depth histogram: `bounds.len() - 1` buckets of equal population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EquiDepthHistogram {
    /// Bucket bounds, ascending: bucket `i` spans `[bounds[i], bounds[i+1])`,
    /// except the last bucket which is closed on both sides.
    bounds: Vec<i64>,
}

impl EquiDepthHistogram {
    /// Build from a *sorted* slice of values, with at most `max_buckets`
    /// buckets. Returns `None` for fewer than 2 values — no histogram is
    /// stored (PostgreSQL behaves the same way).
    pub fn from_sorted(sorted: &[i64], max_buckets: usize) -> Option<Self> {
        if sorted.len() < 2 || max_buckets == 0 {
            return None;
        }
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
        let buckets = max_buckets.min(sorted.len() - 1).max(1);
        let mut bounds = Vec::with_capacity(buckets + 1);
        for i in 0..=buckets {
            // Evenly spaced quantile positions over the value population.
            let pos = (i * (sorted.len() - 1)) / buckets;
            bounds.push(sorted[pos]);
        }
        Some(EquiDepthHistogram { bounds })
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Bucket bounds (ascending).
    pub fn bounds(&self) -> &[i64] {
        &self.bounds
    }

    /// Smallest recorded value.
    pub fn min(&self) -> i64 {
        self.bounds[0]
    }

    /// Largest recorded value.
    pub fn max(&self) -> i64 {
        // lint: panic-ok(constructor invariant: from_sorted returns None unless bounds has >= 2 entries, so last() cannot miss)
        *self.bounds.last().unwrap()
    }

    /// Fraction of the histogram population strictly below `c`, with linear
    /// interpolation inside the containing bucket (PostgreSQL's
    /// `ineq_histogram_selectivity`).
    pub fn fraction_below(&self, c: i64) -> f64 {
        let n = self.num_buckets() as f64;
        if c <= self.min() {
            return 0.0;
        }
        if c > self.max() {
            return 1.0;
        }
        // Find the bucket containing c: largest i with bounds[i] < c.
        let i = match self.bounds.binary_search(&c) {
            // c equals a bound; everything in buckets < i is below. With
            // duplicate bounds, binary_search may land anywhere in the run:
            // walk left to the first occurrence.
            Ok(mut idx) => {
                while idx > 0 && self.bounds[idx - 1] == c {
                    idx -= 1;
                }
                return idx as f64 / n;
            }
            Err(ins) => ins - 1, // bounds[ins-1] < c < bounds[ins]
        };
        let lo = self.bounds[i];
        let hi = self.bounds[i + 1];
        let frac_in_bucket = if hi > lo {
            (c - lo) as f64 / (hi - lo) as f64
        } else {
            0.5
        };
        (i as f64 + frac_in_bucket) / n
    }

    /// Fraction of the population in `[lo, hi]` (inclusive), assuming
    /// within-bucket uniformity.
    pub fn fraction_between(&self, lo: i64, hi: i64) -> f64 {
        if hi < lo {
            return 0.0;
        }
        // [lo, hi] = below(hi+1) - below(lo); saturating to dodge overflow.
        let upper = self.fraction_below(hi.saturating_add(1));
        let lower = self.fraction_below(lo);
        (upper - lower).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_hist() -> EquiDepthHistogram {
        // 0..=100 inclusive, 10 buckets.
        let vals: Vec<i64> = (0..=100).collect();
        EquiDepthHistogram::from_sorted(&vals, 10).unwrap()
    }

    #[test]
    fn construction_limits() {
        assert!(EquiDepthHistogram::from_sorted(&[], 10).is_none());
        assert!(EquiDepthHistogram::from_sorted(&[1], 10).is_none());
        assert!(EquiDepthHistogram::from_sorted(&[1, 2], 0).is_none());
        let h = EquiDepthHistogram::from_sorted(&[1, 2], 10).unwrap();
        assert_eq!(h.num_buckets(), 1);
        assert_eq!((h.min(), h.max()), (1, 2));
    }

    #[test]
    fn uniform_bounds_are_even() {
        let h = uniform_hist();
        assert_eq!(h.num_buckets(), 10);
        assert_eq!(h.bounds(), &[0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
    }

    #[test]
    fn fraction_below_interpolates() {
        let h = uniform_hist();
        assert_eq!(h.fraction_below(0), 0.0);
        assert_eq!(h.fraction_below(-5), 0.0);
        assert!((h.fraction_below(50) - 0.5).abs() < 1e-9);
        assert!((h.fraction_below(55) - 0.55).abs() < 1e-9);
        assert_eq!(h.fraction_below(101), 1.0);
        assert!((h.fraction_below(100) - 1.0).abs() < 0.11); // inside last bucket
    }

    #[test]
    fn fraction_between_ranges() {
        let h = uniform_hist();
        let f = h.fraction_between(20, 39);
        assert!((f - 0.20).abs() < 0.02, "got {f}");
        assert_eq!(h.fraction_between(50, 40), 0.0);
        assert!((h.fraction_between(0, 100) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_population_equalizes_depth() {
        // 90 copies of 1, then 2..=11 once each: equi-depth bounds must
        // concentrate around 1.
        let mut vals = vec![1i64; 90];
        vals.extend(2..=11);
        let h = EquiDepthHistogram::from_sorted(&vals, 10).unwrap();
        // At least the first several bounds pin at 1.
        assert!(h.bounds().iter().filter(|&&b| b == 1).count() >= 8);
        // below(2) covers ~90% of population.
        assert!(h.fraction_below(2) >= 0.8);
    }

    #[test]
    fn duplicate_bound_runs_resolve_to_leftmost() {
        let vals = vec![1, 1, 1, 1, 5, 9];
        let h = EquiDepthHistogram::from_sorted(&vals, 5).unwrap();
        // fraction_below(1) must be 0 regardless of duplicate bounds.
        assert_eq!(h.fraction_below(1), 0.0);
    }

    #[test]
    fn between_handles_extreme_constants() {
        let h = uniform_hist();
        assert!((h.fraction_between(i64::MIN + 1, i64::MAX) - 1.0).abs() < 1e-9);
        assert_eq!(h.fraction_between(200, 300), 0.0);
    }
}
