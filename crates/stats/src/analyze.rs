//! `ANALYZE`: building statistics from stored tables.
//!
//! Mirrors PostgreSQL's behaviour at the level the paper relies on
//! (§4.2.1):
//!
//! * if a column has at most `stats_target` distinct values, *all* of them
//!   become MCVs with exact frequencies (so small dimension tables are
//!   estimated perfectly);
//! * otherwise the values that are clearly more common than average
//!   (frequency ≥ `mcv_threshold` × average, and at least 2 occurrences)
//!   enter the MCV list, capped at `stats_target` entries, and an
//!   equi-depth histogram over the remaining values is stored.
//!
//! The scan is exhaustive rather than sampled: the engine's tables are
//! small enough that exact statistics keep experiments deterministic. This
//! is *favourable* to the baseline optimizer — estimation errors in our
//! experiments come from correlations (as in the paper), never from stale
//! or noisy statistics.

use crate::column_stats::{ColumnStats, DatabaseStats, TableStats};
use crate::histogram::EquiDepthHistogram;
use crate::mcv::McvList;
use reopt_common::{FxHashMap, Result};
use reopt_storage::value::NULL_SENTINEL;
use reopt_storage::{Column, Database, Table};

/// Tuning knobs for `ANALYZE`.
#[derive(Debug, Clone)]
pub struct AnalyzeOpts {
    /// Maximum MCV entries and maximum histogram buckets (PostgreSQL's
    /// `default_statistics_target`, default 100).
    pub stats_target: usize,
    /// A value qualifies as an MCV only if its frequency is at least this
    /// multiple of the average frequency (PostgreSQL uses 1.25).
    pub mcv_threshold: f64,
}

impl Default for AnalyzeOpts {
    fn default() -> Self {
        AnalyzeOpts {
            stats_target: 100,
            mcv_threshold: 1.25,
        }
    }
}

/// Compute statistics for one column.
pub fn analyze_column(column: &Column, opts: &AnalyzeOpts) -> ColumnStats {
    let data = column.data();
    let row_count = data.len() as u64;
    if row_count == 0 {
        return ColumnStats::empty();
    }

    let mut counts: FxHashMap<i64, u64> = FxHashMap::default();
    let mut nulls: u64 = 0;
    for &v in data {
        if v == NULL_SENTINEL {
            nulls += 1;
        } else {
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    let non_null = row_count - nulls;
    if non_null == 0 {
        return ColumnStats {
            row_count,
            null_frac: 1.0,
            n_distinct: 0.0,
            min: None,
            max: None,
            mcv: McvList::empty(),
            histogram: None,
        };
    }

    let n_distinct = counts.len() as f64;
    let min = counts.keys().min().copied();
    let max = counts.keys().max().copied();

    // Decide the MCV set.
    let mcv_values: Vec<(i64, u64)> = if counts.len() <= opts.stats_target {
        // Few distinct values: record all of them exactly.
        counts.iter().map(|(&v, &c)| (v, c)).collect()
    } else {
        let avg = non_null as f64 / n_distinct;
        let mut qualifying: Vec<(i64, u64)> = counts
            .iter()
            .filter(|(_, &c)| c >= 2 && c as f64 >= opts.mcv_threshold * avg)
            .map(|(&v, &c)| (v, c))
            .collect();
        // Keep the most frequent `stats_target`, ties broken by value for
        // determinism.
        qualifying.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        qualifying.truncate(opts.stats_target);
        qualifying
    };
    let mcv = McvList::new(
        mcv_values
            .iter()
            .map(|&(v, c)| (v, c as f64 / row_count as f64))
            .collect(),
    );

    // Histogram over the values not in the MCV list (full population of
    // occurrences, so repeated non-MCV values weight their region).
    let histogram = if mcv.len() == counts.len() {
        None
    } else {
        let mcv_set: FxHashMap<i64, ()> = mcv.entries().iter().map(|&(v, _)| (v, ())).collect();
        let mut rest: Vec<i64> = data
            .iter()
            .copied()
            .filter(|v| *v != NULL_SENTINEL && !mcv_set.contains_key(v))
            .collect();
        rest.sort_unstable();
        EquiDepthHistogram::from_sorted(&rest, opts.stats_target)
    };

    ColumnStats {
        row_count,
        null_frac: nulls as f64 / row_count as f64,
        n_distinct,
        min,
        max,
        mcv,
        histogram,
    }
}

/// Compute statistics for every column of a table.
pub fn analyze_table(table: &Table, opts: &AnalyzeOpts) -> TableStats {
    TableStats {
        table: table.id(),
        row_count: table.row_count() as u64,
        columns: table
            .columns()
            .iter()
            .map(|c| analyze_column(c, opts))
            .collect(),
    }
}

/// Compute statistics for every table of a database.
pub fn analyze_database(db: &Database, opts: &AnalyzeOpts) -> Result<DatabaseStats> {
    DatabaseStats::new(db.tables().iter().map(|t| analyze_table(t, opts)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_common::TableId;
    use reopt_storage::{ColumnDef, LogicalType, TableSchema};

    fn int_col(data: Vec<i64>) -> Column {
        Column::from_i64(LogicalType::Int, data)
    }

    #[test]
    fn small_domain_records_all_values_as_mcvs() {
        // 3 distinct values, uniform.
        let data: Vec<i64> = (0..300).map(|i| i % 3).collect();
        let s = analyze_column(&int_col(data), &AnalyzeOpts::default());
        assert_eq!(s.n_distinct, 3.0);
        assert_eq!(s.mcv.len(), 3);
        assert!(s.histogram.is_none());
        assert!((s.eq_selectivity(1) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.min, Some(0));
        assert_eq!(s.max, Some(2));
    }

    #[test]
    fn uniform_wide_domain_records_no_mcvs() {
        // 1000 distinct values, each exactly 5 times: nothing is "common".
        let mut data = Vec::new();
        for v in 0..1000i64 {
            data.extend(std::iter::repeat_n(v, 5));
        }
        let opts = AnalyzeOpts::default();
        let s = analyze_column(&int_col(data), &opts);
        assert_eq!(s.n_distinct, 1000.0);
        assert!(s.mcv.is_empty(), "uniform data must not create MCVs");
        let h = s.histogram.as_ref().expect("histogram present");
        assert_eq!(h.num_buckets(), opts.stats_target);
        // eq estimate = 1/n_distinct.
        assert!((s.eq_selectivity(500) - 0.001).abs() < 1e-9);
    }

    #[test]
    fn skewed_data_promotes_heavy_hitters() {
        // Value 0 appears 5000 times; 0..=999 once each besides.
        let mut data = vec![0i64; 5000];
        data.extend(0..1000);
        let s = analyze_column(&int_col(data), &AnalyzeOpts::default());
        let f = s.mcv.freq_of(0).expect("0 is an MCV");
        assert!((f - 5001.0 / 6000.0).abs() < 1e-9);
        // The singleton values are not MCVs.
        assert_eq!(s.mcv.len(), 1);
        assert!(s.histogram.is_some());
    }

    #[test]
    fn nulls_counted_in_null_frac() {
        let data = vec![1, NULL_SENTINEL, 2, NULL_SENTINEL];
        let s = analyze_column(&int_col(data), &AnalyzeOpts::default());
        assert!((s.null_frac - 0.5).abs() < 1e-12);
        assert_eq!(s.n_distinct, 2.0);
        // MCV freqs are fractions of *all* rows.
        assert!((s.eq_selectivity(1) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn all_null_column() {
        let s = analyze_column(&int_col(vec![NULL_SENTINEL; 10]), &AnalyzeOpts::default());
        assert_eq!(s.null_frac, 1.0);
        assert_eq!(s.n_distinct, 0.0);
        assert!(s.min.is_none());
    }

    #[test]
    fn empty_column() {
        let s = analyze_column(&int_col(vec![]), &AnalyzeOpts::default());
        assert_eq!(s.row_count, 0);
    }

    #[test]
    fn analyze_table_and_database() {
        let schema = TableSchema::new(vec![
            ColumnDef::new("a", LogicalType::Int),
            ColumnDef::new("b", LogicalType::Int),
        ])
        .unwrap();
        let mut db = Database::new();
        db.add_table_with(|id| {
            Table::new(
                id,
                "t",
                schema.clone(),
                vec![int_col(vec![1, 2, 3]), int_col(vec![7, 7, 7])],
            )
        })
        .unwrap();
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let ts = stats.table(TableId::new(0)).unwrap();
        assert_eq!(ts.row_count, 3);
        assert_eq!(ts.columns.len(), 2);
        assert_eq!(ts.columns[1].n_distinct, 1.0);
    }

    #[test]
    fn histogram_estimates_range_on_uniform_data() {
        let data: Vec<i64> = (0..10_000).collect();
        let s = analyze_column(&int_col(data), &AnalyzeOpts::default());
        let sel = s.between_selectivity(2_500, 7_499);
        assert!((sel - 0.5).abs() < 0.02, "got {sel}");
    }
}
