//! `ANALYZE`: building statistics from stored tables.
//!
//! Mirrors PostgreSQL's behaviour at the level the paper relies on
//! (§4.2.1):
//!
//! * if a column has at most `stats_target` distinct values, *all* of them
//!   become MCVs with exact frequencies (so small dimension tables are
//!   estimated perfectly);
//! * otherwise the values that are clearly more common than average
//!   (frequency ≥ `mcv_threshold` × average, and at least 2 occurrences)
//!   enter the MCV list, capped at `stats_target` entries, and an
//!   equi-depth histogram over the remaining values is stored.
//!
//! The scan is exhaustive rather than sampled: the engine's tables are
//! small enough that exact statistics keep experiments deterministic. This
//! is *favourable* to the baseline optimizer — estimation errors in our
//! experiments come from correlations (as in the paper), never from stale
//! or noisy statistics.
//!
//! Every published statistic is a pure function of a [`ValueCounts`]
//! multiset ([`stats_from_counts`]), and multisets merge exactly — so
//! [`analyze_incremental`] can re-scan only the rows appended since the
//! last ANALYZE and merge, with output bit-identical to a full re-scan.

use crate::column_stats::{ColumnStats, DatabaseStats, TableStats};
use crate::counts::{TableAnalyzeState, ValueCounts};
use crate::histogram::EquiDepthHistogram;
use crate::mcv::McvList;
use reopt_common::Result;
use reopt_storage::{Column, Database, Table};

/// Tuning knobs for `ANALYZE`.
#[derive(Debug, Clone)]
pub struct AnalyzeOpts {
    /// Maximum MCV entries and maximum histogram buckets (PostgreSQL's
    /// `default_statistics_target`, default 100).
    pub stats_target: usize,
    /// A value qualifies as an MCV only if its frequency is at least this
    /// multiple of the average frequency (PostgreSQL uses 1.25).
    pub mcv_threshold: f64,
}

impl Default for AnalyzeOpts {
    fn default() -> Self {
        AnalyzeOpts {
            stats_target: 100,
            mcv_threshold: 1.25,
        }
    }
}

/// Derive the published statistics of one column from its exact value
/// multiset. Pure: the sole source of every [`ColumnStats`] this crate
/// produces, whether the counts came from a full scan or an incremental
/// merge.
pub fn stats_from_counts(counts: &ValueCounts, opts: &AnalyzeOpts) -> ColumnStats {
    let row_count = counts.row_count();
    if row_count == 0 {
        return ColumnStats::empty();
    }
    let non_null = counts.non_null();
    if non_null == 0 {
        return ColumnStats {
            row_count,
            null_frac: 1.0,
            n_distinct: 0.0,
            min: None,
            max: None,
            mcv: McvList::empty(),
            histogram: None,
        };
    }

    let n_distinct = counts.distinct() as f64;
    let min = counts.counts.first().map(|&(v, _)| v);
    let max = counts.counts.last().map(|&(v, _)| v);

    // Decide the MCV set.
    let mcv_values: Vec<(i64, u64)> = if counts.distinct() <= opts.stats_target {
        // Few distinct values: record all of them exactly.
        counts.counts.clone()
    } else {
        let avg = non_null as f64 / n_distinct;
        let mut qualifying: Vec<(i64, u64)> = counts
            .counts
            .iter()
            .filter(|&&(_, c)| c >= 2 && c as f64 >= opts.mcv_threshold * avg)
            .copied()
            .collect();
        // Keep the most frequent `stats_target`, ties broken by value for
        // determinism.
        qualifying.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        qualifying.truncate(opts.stats_target);
        qualifying
    };
    let mcv = McvList::new(
        mcv_values
            .iter()
            .map(|&(v, c)| (v, c as f64 / row_count as f64))
            .collect(),
    );

    // Histogram over the values not in the MCV list (full population of
    // occurrences, so repeated non-MCV values weight their region).
    let histogram = if mcv.len() == counts.distinct() {
        None
    } else {
        let mut mcv_sorted: Vec<i64> = mcv.entries().iter().map(|&(v, _)| v).collect();
        mcv_sorted.sort_unstable();
        let mut rest: Vec<i64> = Vec::new();
        for &(v, c) in &counts.counts {
            if mcv_sorted.binary_search(&v).is_err() {
                rest.extend(std::iter::repeat_n(v, c as usize));
            }
        }
        EquiDepthHistogram::from_sorted(&rest, opts.stats_target)
    };

    ColumnStats {
        row_count,
        null_frac: counts.nulls as f64 / row_count as f64,
        n_distinct,
        min,
        max,
        mcv,
        histogram,
    }
}

/// Compute statistics for one column.
pub fn analyze_column(column: &Column, opts: &AnalyzeOpts) -> ColumnStats {
    stats_from_counts(&ValueCounts::scan(column.data()), opts)
}

/// Assemble a [`TableStats`] from per-column counts, stamping the table's
/// current [`reopt_storage::DataVersion`] and retaining the counts for the
/// next incremental pass.
fn table_stats_from_counts(
    table: &Table,
    counts: Vec<ValueCounts>,
    opts: &AnalyzeOpts,
) -> TableStats {
    TableStats {
        table: table.id(),
        row_count: table.row_count() as u64,
        columns: counts.iter().map(|c| stats_from_counts(c, opts)).collect(),
        as_of: table.version(),
        state: Some(TableAnalyzeState { columns: counts }),
    }
}

/// Compute statistics for every column of a table.
pub fn analyze_table(table: &Table, opts: &AnalyzeOpts) -> TableStats {
    let counts = table
        .columns()
        .iter()
        .map(|c| ValueCounts::scan(c.data()))
        .collect();
    table_stats_from_counts(table, counts, opts)
}

/// Compute statistics for every table of a database.
pub fn analyze_database(db: &Database, opts: &AnalyzeOpts) -> Result<DatabaseStats> {
    DatabaseStats::new(db.tables().iter().map(|t| analyze_table(t, opts)).collect())
}

/// The result of [`analyze_incremental`]: fresh statistics plus counters
/// describing how much work each table cost.
#[derive(Debug, Clone)]
pub struct IncrementalAnalyze {
    /// Statistics current as of the database's live versions — bit-identical
    /// to what [`analyze_database`] would produce on the same database.
    pub stats: DatabaseStats,
    /// Tables whose old stats were still current and were reused verbatim.
    pub tables_reused: usize,
    /// Tables whose appended tail was scanned and merged into the retained
    /// counts (no historical rows touched).
    pub tables_merged: usize,
    /// Tables that needed a full re-scan (rewritten in place since the old
    /// ANALYZE, unseen by it, or analyzed without retained counts).
    pub tables_rescanned: usize,
}

/// Re-ANALYZE a database against statistics computed earlier, touching as
/// few rows as possible. Per table, in order of preference:
///
/// 1. **reuse** — the table hasn't moved since `old` was computed;
/// 2. **tail-merge** — history since `old` is append-only
///    ([`Table::dirty_tail`]), so only the appended rows are scanned and
///    merged into the retained [`ValueCounts`];
/// 3. **re-scan** — the table was rewritten in place (deletes / TTL
///    expiry), is new, or `old` carries no retained counts.
///
/// The output statistics are *bit-identical* to [`analyze_database`] run
/// fresh on the same database — the quiescence suite holds this invariant.
pub fn analyze_incremental(
    db: &Database,
    old: &DatabaseStats,
    opts: &AnalyzeOpts,
) -> Result<IncrementalAnalyze> {
    let mut tables = Vec::with_capacity(db.len());
    let (mut reused, mut merged, mut rescanned) = (0usize, 0usize, 0usize);
    for t in db.tables() {
        let prior = old.table(t.id()).ok();
        // 1. Reuse: stats already describe the live version.
        if let Some(p) = prior {
            if p.as_of == t.version() && p.row_count == t.row_count() as u64 && p.state.is_some() {
                tables.push(p.clone());
                reused += 1;
                continue;
            }
        }
        // 2. Tail-merge: append-only history with retained counts.
        let tail = prior.and_then(|p| {
            let state = p.state.as_ref()?;
            if state.columns.len() != t.columns().len() {
                return None;
            }
            let range = t.dirty_tail(p.as_of, p.row_count as usize)?;
            Some((state, range))
        });
        if let Some((state, range)) = tail {
            let counts = t
                .columns()
                .iter()
                .zip(&state.columns)
                .map(|(col, prev)| {
                    let mut c = prev.clone();
                    c.merge(&ValueCounts::scan(&col.data()[range.clone()]));
                    c
                })
                .collect();
            tables.push(table_stats_from_counts(t, counts, opts));
            merged += 1;
            continue;
        }
        // 3. Full re-scan.
        tables.push(analyze_table(t, opts));
        rescanned += 1;
    }
    Ok(IncrementalAnalyze {
        stats: DatabaseStats::new(tables)?,
        tables_reused: reused,
        tables_merged: merged,
        tables_rescanned: rescanned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_common::{ColId, TableId};
    use reopt_storage::value::NULL_SENTINEL;
    use reopt_storage::{ColumnDef, LogicalType, TableSchema, Value};

    fn int_col(data: Vec<i64>) -> Column {
        Column::from_i64(LogicalType::Int, data)
    }

    #[test]
    fn small_domain_records_all_values_as_mcvs() {
        // 3 distinct values, uniform.
        let data: Vec<i64> = (0..300).map(|i| i % 3).collect();
        let s = analyze_column(&int_col(data), &AnalyzeOpts::default());
        assert_eq!(s.n_distinct, 3.0);
        assert_eq!(s.mcv.len(), 3);
        assert!(s.histogram.is_none());
        assert!((s.eq_selectivity(1) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.min, Some(0));
        assert_eq!(s.max, Some(2));
    }

    #[test]
    fn uniform_wide_domain_records_no_mcvs() {
        // 1000 distinct values, each exactly 5 times: nothing is "common".
        let mut data = Vec::new();
        for v in 0..1000i64 {
            data.extend(std::iter::repeat_n(v, 5));
        }
        let opts = AnalyzeOpts::default();
        let s = analyze_column(&int_col(data), &opts);
        assert_eq!(s.n_distinct, 1000.0);
        assert!(s.mcv.is_empty(), "uniform data must not create MCVs");
        let h = s.histogram.as_ref().expect("histogram present");
        assert_eq!(h.num_buckets(), opts.stats_target);
        // eq estimate = 1/n_distinct.
        assert!((s.eq_selectivity(500) - 0.001).abs() < 1e-9);
    }

    #[test]
    fn skewed_data_promotes_heavy_hitters() {
        // Value 0 appears 5000 times; 0..=999 once each besides.
        let mut data = vec![0i64; 5000];
        data.extend(0..1000);
        let s = analyze_column(&int_col(data), &AnalyzeOpts::default());
        let f = s.mcv.freq_of(0).expect("0 is an MCV");
        assert!((f - 5001.0 / 6000.0).abs() < 1e-9);
        // The singleton values are not MCVs.
        assert_eq!(s.mcv.len(), 1);
        assert!(s.histogram.is_some());
    }

    #[test]
    fn nulls_counted_in_null_frac() {
        let data = vec![1, NULL_SENTINEL, 2, NULL_SENTINEL];
        let s = analyze_column(&int_col(data), &AnalyzeOpts::default());
        assert!((s.null_frac - 0.5).abs() < 1e-12);
        assert_eq!(s.n_distinct, 2.0);
        // MCV freqs are fractions of *all* rows.
        assert!((s.eq_selectivity(1) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn all_null_column() {
        let s = analyze_column(&int_col(vec![NULL_SENTINEL; 10]), &AnalyzeOpts::default());
        assert_eq!(s.null_frac, 1.0);
        assert_eq!(s.n_distinct, 0.0);
        assert!(s.min.is_none());
    }

    #[test]
    fn empty_column() {
        let s = analyze_column(&int_col(vec![]), &AnalyzeOpts::default());
        assert_eq!(s.row_count, 0);
    }

    #[test]
    fn analyze_table_and_database() {
        let schema = TableSchema::new(vec![
            ColumnDef::new("a", LogicalType::Int),
            ColumnDef::new("b", LogicalType::Int),
        ])
        .unwrap();
        let mut db = Database::new();
        db.add_table_with(|id| {
            Table::new(
                id,
                "t",
                schema.clone(),
                vec![int_col(vec![1, 2, 3]), int_col(vec![7, 7, 7])],
            )
        })
        .unwrap();
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let ts = stats.table(TableId::new(0)).unwrap();
        assert_eq!(ts.row_count, 3);
        assert_eq!(ts.columns.len(), 2);
        assert_eq!(ts.columns[1].n_distinct, 1.0);
        // Fresh stats stamp the table's version and retain counts.
        assert_eq!(ts.as_of, db.table(TableId::new(0)).unwrap().version());
        let state = ts.state.as_ref().expect("counts retained");
        assert_eq!(state.columns[0].distinct(), 3);
    }

    #[test]
    fn histogram_estimates_range_on_uniform_data() {
        let data: Vec<i64> = (0..10_000).collect();
        let s = analyze_column(&int_col(data), &AnalyzeOpts::default());
        let sel = s.between_selectivity(2_500, 7_499);
        assert!((sel - 0.5).abs() < 0.02, "got {sel}");
    }

    fn skewed_db() -> Database {
        let schema = TableSchema::new(vec![
            ColumnDef::new("a", LogicalType::Int),
            ColumnDef::new("b", LogicalType::Int),
        ])
        .unwrap();
        let mut db = Database::new();
        let a: Vec<i64> = (0..2000).map(|i| i % 7).collect();
        let b: Vec<i64> = (0..2000)
            .map(|i| {
                if i % 11 == 0 {
                    NULL_SENTINEL
                } else {
                    i * 3 % 997
                }
            })
            .collect();
        db.add_table_with(|id| Table::new(id, "t", schema.clone(), vec![int_col(a), int_col(b)]))
            .unwrap();
        db
    }

    fn assert_stats_bit_identical(a: &DatabaseStats, b: &DatabaseStats) {
        // Serialized form covers every field, including retained counts —
        // equality here is the bit-identity the quiescence suite demands.
        assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
    }

    #[test]
    fn incremental_after_append_matches_full_rescan() {
        let opts = AnalyzeOpts::default();
        let mut db = skewed_db();
        let old = analyze_database(&db, &opts).unwrap();
        let id = db.table_id("t").unwrap();
        let rows: Vec<Vec<Value>> = (0..500)
            .map(|i| vec![Value::Int(i % 5), Value::Int(i * 7 % 313)])
            .collect();
        db.append_rows(id, &rows).unwrap();

        let inc = analyze_incremental(&db, &old, &opts).unwrap();
        assert_eq!(inc.tables_merged, 1);
        assert_eq!(inc.tables_reused, 0);
        assert_eq!(inc.tables_rescanned, 0);
        assert_stats_bit_identical(&inc.stats, &analyze_database(&db, &opts).unwrap());
    }

    #[test]
    fn incremental_reuses_quiescent_tables() {
        let opts = AnalyzeOpts::default();
        let db = skewed_db();
        let old = analyze_database(&db, &opts).unwrap();
        let inc = analyze_incremental(&db, &old, &opts).unwrap();
        assert_eq!(inc.tables_reused, 1);
        assert_eq!(inc.tables_merged, 0);
        assert_eq!(inc.tables_rescanned, 0);
        assert_stats_bit_identical(&inc.stats, &old);
    }

    #[test]
    fn incremental_rescans_after_in_place_rewrite() {
        let opts = AnalyzeOpts::default();
        let mut db = skewed_db();
        let old = analyze_database(&db, &opts).unwrap();
        let id = db.table_id("t").unwrap();
        let (_, deleted) = db.delete_where(id, ColId::new(0), |v| v == 3).unwrap();
        assert!(deleted > 0);
        let inc = analyze_incremental(&db, &old, &opts).unwrap();
        assert_eq!(inc.tables_rescanned, 1);
        assert_stats_bit_identical(&inc.stats, &analyze_database(&db, &opts).unwrap());
    }

    #[test]
    fn incremental_without_retained_counts_falls_back_to_rescan() {
        let opts = AnalyzeOpts::default();
        let mut db = skewed_db();
        let mut old = analyze_database(&db, &opts).unwrap();
        // Simulate hand-assembled stats: strip the retained counts.
        let stripped: Vec<TableStats> = old
            .tables()
            .iter()
            .map(|t| TableStats {
                state: None,
                ..t.clone()
            })
            .collect();
        old = DatabaseStats::new(stripped).unwrap();
        let id = db.table_id("t").unwrap();
        db.append_rows(id, &[vec![Value::Int(1), Value::Int(2)]])
            .unwrap();
        let inc = analyze_incremental(&db, &old, &opts).unwrap();
        assert_eq!(inc.tables_rescanned, 1);
        assert_stats_bit_identical(&inc.stats, &analyze_database(&db, &opts).unwrap());
    }

    #[test]
    fn zero_row_append_tail_merge_is_exact() {
        let opts = AnalyzeOpts::default();
        let mut db = skewed_db();
        let old = analyze_database(&db, &opts).unwrap();
        let id = db.table_id("t").unwrap();
        db.append_rows(id, &[]).unwrap();
        // Version moved but no rows: tail-merge over an empty range.
        let inc = analyze_incremental(&db, &old, &opts).unwrap();
        assert_eq!(inc.tables_merged, 1);
        assert_stats_bit_identical(&inc.stats, &analyze_database(&db, &opts).unwrap());
    }
}
