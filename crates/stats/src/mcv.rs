//! Most-common-value (MCV) lists.

use serde::{Deserialize, Serialize};

use reopt_common::FxHashMap;

/// A list of a column's most common values with their exact frequencies
/// (fractions of all rows, including NULL rows, as in PostgreSQL).
///
/// Serialized as the bare entry list; the lookup index and cached total
/// are rebuilt on deserialization, so persisted statistics stay queryable.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "Vec<(i64, f64)>", into = "Vec<(i64, f64)>")]
pub struct McvList {
    /// (value, frequency) sorted by descending frequency, ties by value.
    entries: Vec<(i64, f64)>,
    /// Fast lookup value → frequency.
    index: FxHashMap<i64, f64>,
    /// Cached sum of all frequencies.
    total: f64,
}

impl From<Vec<(i64, f64)>> for McvList {
    fn from(entries: Vec<(i64, f64)>) -> Self {
        McvList::new(entries)
    }
}

impl From<McvList> for Vec<(i64, f64)> {
    fn from(m: McvList) -> Self {
        m.entries
    }
}

impl McvList {
    /// Empty list (column has no values common enough to record).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build from (value, frequency) pairs; sorts and indexes them.
    /// Frequencies are sorted with `total_cmp`, so a NaN (e.g. from a
    /// 0/0 upstream) cannot panic the comparator — NaN sorts as the
    /// largest "frequency" and is otherwise carried through inert.
    pub fn new(mut entries: Vec<(i64, f64)>) -> Self {
        entries.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let index = entries.iter().copied().collect();
        let total = entries.iter().map(|e| e.1).sum();
        McvList {
            entries,
            index,
            total,
        }
    }

    /// Frequency of `value` if it is an MCV.
    pub fn freq_of(&self, value: i64) -> Option<f64> {
        self.index.get(&value).copied()
    }

    /// Sum of recorded frequencies (fraction of rows covered by MCVs).
    pub fn total_freq(&self) -> f64 {
        self.total
    }

    /// Number of recorded values.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no value is recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries in descending-frequency order.
    pub fn entries(&self) -> &[(i64, f64)] {
        &self.entries
    }

    /// Sum of frequencies of MCVs `v` satisfying `pred(v)` — used for range
    /// selectivity over the MCV population.
    pub fn freq_where<F: Fn(i64) -> bool>(&self, pred: F) -> f64 {
        self.entries
            .iter()
            .filter(|(v, _)| pred(*v))
            .map(|(_, f)| f)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_by_descending_frequency() {
        let m = McvList::new(vec![(1, 0.1), (2, 0.5), (3, 0.2)]);
        let vals: Vec<i64> = m.entries().iter().map(|e| e.0).collect();
        assert_eq!(vals, vec![2, 3, 1]);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn lookup_and_totals() {
        let m = McvList::new(vec![(10, 0.25), (20, 0.25)]);
        assert_eq!(m.freq_of(10), Some(0.25));
        assert_eq!(m.freq_of(99), None);
        assert!((m.total_freq() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn freq_where_filters() {
        let m = McvList::new(vec![(1, 0.1), (2, 0.2), (3, 0.3)]);
        let f = m.freq_where(|v| v >= 2);
        assert!((f - 0.5).abs() < 1e-12);
        assert_eq!(m.freq_where(|_| false), 0.0);
    }

    #[test]
    fn empty_list_behaviour() {
        let m = McvList::empty();
        assert!(m.is_empty());
        assert_eq!(m.total_freq(), 0.0);
        assert_eq!(m.freq_of(1), None);
    }

    #[test]
    fn nan_frequency_does_not_panic() {
        // Regression: `partial_cmp(..).unwrap()` panicked on NaN. The
        // degenerate entry must sort deterministically (total_cmp puts
        // positive NaN above every finite frequency) and leave lookups of
        // the sane entries intact.
        let m = McvList::new(vec![(1, 0.1), (2, f64::NAN), (3, 0.3)]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.entries()[0].0, 2, "NaN sorts first under total_cmp");
        assert_eq!(m.entries()[1], (3, 0.3));
        assert_eq!(m.entries()[2], (1, 0.1));
        assert_eq!(m.freq_of(3), Some(0.3));
        assert!(m.freq_of(2).unwrap().is_nan());
        // An all-NaN list is equally survivable.
        let m = McvList::new(vec![(5, f64::NAN), (4, f64::NAN)]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.entries()[0].0, 4, "NaN ties break by value");
    }

    #[test]
    fn frequency_ties_break_by_value() {
        let m = McvList::new(vec![(5, 0.2), (1, 0.2), (3, 0.2)]);
        let vals: Vec<i64> = m.entries().iter().map(|e| e.0).collect();
        assert_eq!(vals, vec![1, 3, 5]);
    }
}
