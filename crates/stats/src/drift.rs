//! Statistics drift: how far a database has moved from the statistics a
//! plan cache was validated under.
//!
//! The paper's setting is a static database — ANALYZE once, then query.
//! Under streaming ingest the cached plans (and the Γ card-override store
//! feeding re-optimization) were all validated against *yesterday's*
//! distribution; the serving layer needs a cheap, deterministic signal for
//! "the data has moved enough that those validations are stale". This
//! module provides it: compare a fresh (incremental) ANALYZE against the
//! baseline stats and reduce the difference to one scalar per table.
//!
//! The score is the maximum over a table's columns of:
//!
//! * relative row-count deviation,
//! * relative `n_distinct` deviation,
//! * absolute `null_frac` change,
//! * total-variation distance between the MCV distributions (halved sum of
//!   absolute frequency differences — the classic statistical distance).
//!
//! A score of 0.0 means the distributions are unchanged at the granularity
//! the optimizer sees; 1.0 means maximal divergence (e.g. a table appeared
//! or its schema changed shape). [`crate::DriftReport::max`] drives the
//! serving layer's refresh decision against a configured threshold.

use std::collections::BTreeMap;

use crate::column_stats::{ColumnStats, DatabaseStats, TableStats};
use reopt_common::TableId;

/// Relative deviation of `new` from `old`, with a floor of 1 on the
/// denominator so empty baselines don't divide by zero.
fn rel_dev(old: f64, new: f64) -> f64 {
    (new - old).abs() / old.max(1.0)
}

/// Total-variation distance between two MCV frequency distributions:
/// `½ · Σ_v |p(v) − q(v)|` over the union of their supports. Ranges over
/// `[0, 1]`; 0 iff the lists agree exactly.
fn mcv_total_variation(old: &ColumnStats, new: &ColumnStats) -> f64 {
    let mut freqs: BTreeMap<i64, (f64, f64)> = BTreeMap::new();
    for &(v, f) in old.mcv.entries() {
        freqs.entry(v).or_insert((0.0, 0.0)).0 = f;
    }
    for &(v, f) in new.mcv.entries() {
        freqs.entry(v).or_insert((0.0, 0.0)).1 = f;
    }
    0.5 * freqs.values().map(|&(p, q)| (p - q).abs()).sum::<f64>()
}

/// Drift score of one column: the worst of its per-statistic deviations.
pub fn column_drift(old: &ColumnStats, new: &ColumnStats) -> f64 {
    let row = rel_dev(old.row_count as f64, new.row_count as f64);
    let distinct = rel_dev(old.n_distinct, new.n_distinct);
    let nulls = (old.null_frac - new.null_frac).abs();
    let mcv = mcv_total_variation(old, new);
    row.max(distinct).max(nulls).max(mcv)
}

/// Drift score of one table: table-level row-count deviation, maxed with
/// every column's drift. Shape changes (different column counts) score the
/// maximal 1.0 — stats that can't even be compared are certainly stale.
pub fn table_drift(old: &TableStats, new: &TableStats) -> f64 {
    if old.columns.len() != new.columns.len() {
        return 1.0;
    }
    let mut score = rel_dev(old.row_count as f64, new.row_count as f64);
    for (o, n) in old.columns.iter().zip(&new.columns) {
        score = score.max(column_drift(o, n));
    }
    score
}

/// Per-table drift scores for a whole database.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// `(table, score)` in table-id order, one entry per table of `new`.
    pub tables: Vec<(TableId, f64)>,
}

impl DriftReport {
    /// The worst per-table score; 0.0 for an empty database.
    pub fn max(&self) -> f64 {
        self.tables.iter().map(|&(_, s)| s).fold(0.0, f64::max)
    }

    /// Tables whose score is at least `threshold`, in id order.
    pub fn over(&self, threshold: f64) -> Vec<TableId> {
        self.tables
            .iter()
            .filter(|&&(_, s)| s >= threshold)
            .map(|&(t, _)| t)
            .collect()
    }
}

/// Compare fresh statistics against a baseline, table by table. Tables the
/// baseline has never seen score 1.0 — and so do tables the baseline *has*
/// seen but the fresh stats lack: a dropped table invalidates every plan
/// that touched it just as surely as an appeared one.
pub fn database_drift(old: &DatabaseStats, new: &DatabaseStats) -> DriftReport {
    let mut tables: Vec<(TableId, f64)> = new
        .tables()
        .iter()
        .map(|n| {
            let score = match old.table(n.table) {
                Ok(o) => table_drift(o, n),
                Err(_) => 1.0,
            };
            (n.table, score)
        })
        .collect();
    for o in old.tables() {
        if new.table(o.table).is_err() {
            tables.push((o.table, 1.0));
        }
    }
    // Baseline-only tables were appended after the fresh ones; restore the
    // documented id order.
    tables.sort_unstable_by_key(|&(t, _)| t);
    DriftReport { tables }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze_database, AnalyzeOpts};
    use reopt_storage::{Column, ColumnDef, Database, LogicalType, Table, TableSchema, Value};

    fn db_with(data: Vec<i64>) -> Database {
        let schema = TableSchema::new(vec![ColumnDef::new("a", LogicalType::Int)]).unwrap();
        let mut db = Database::new();
        db.add_table_with(|id| {
            Table::new(
                id,
                "t",
                schema.clone(),
                vec![Column::from_i64(LogicalType::Int, data.clone())],
            )
        })
        .unwrap();
        db
    }

    #[test]
    fn identical_stats_have_zero_drift() {
        let db = db_with((0..100).map(|i| i % 5).collect());
        let s = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let r = database_drift(&s, &s);
        assert_eq!(r.max(), 0.0);
        assert!(r.over(0.25).is_empty());
    }

    #[test]
    fn skew_shift_registers_as_mcv_drift() {
        // Baseline: uniform over 5 values. After: value 0 dominates.
        let db = db_with((0..100).map(|i| i % 5).collect());
        let old = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let mut db2 = db_with((0..100).map(|i| i % 5).collect());
        let id = db2.table_id("t").unwrap();
        let rows: Vec<Vec<Value>> = (0..100).map(|_| vec![Value::Int(0)]).collect();
        db2.append_rows(id, &rows).unwrap();
        let new = analyze_database(&db2, &AnalyzeOpts::default()).unwrap();
        let r = database_drift(&old, &new);
        // Rows doubled → relative row deviation 1.0; MCV mass of value 0
        // went from 0.2 to 0.6 → TV distance 0.4. Max picks the former.
        assert!(r.max() >= 0.4, "got {}", r.max());
        assert_eq!(r.over(0.25), vec![db2.table_id("t").unwrap()]);
    }

    #[test]
    fn small_append_stays_under_threshold() {
        let db = db_with((0..1000).map(|i| i % 5).collect());
        let old = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let mut db2 = db_with((0..1000).map(|i| i % 5).collect());
        let id = db2.table_id("t").unwrap();
        // 2% more rows, same distribution.
        let rows: Vec<Vec<Value>> = (0..20).map(|i| vec![Value::Int(i % 5)]).collect();
        db2.append_rows(id, &rows).unwrap();
        let new = analyze_database(&db2, &AnalyzeOpts::default()).unwrap();
        let r = database_drift(&old, &new);
        assert!(r.max() < 0.25, "got {}", r.max());
    }

    #[test]
    fn unseen_table_scores_maximal_drift() {
        let db = db_with(vec![1, 2, 3]);
        let new = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let empty = DatabaseStats::new(vec![]).unwrap();
        let r = database_drift(&empty, &new);
        assert_eq!(r.max(), 1.0);
    }

    #[test]
    fn baseline_only_table_scores_maximal_drift() {
        // Regression: a table present in the baseline but missing from the
        // fresh stats used to contribute nothing — the report iterated only
        // the fresh side, so a dropped table read as zero drift.
        let db = db_with(vec![1, 2, 3]);
        let old = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let empty = DatabaseStats::new(vec![]).unwrap();
        let r = database_drift(&old, &empty);
        assert_eq!(r.max(), 1.0);
        let id = db.table_id("t").unwrap();
        assert_eq!(r.over(0.25), vec![id]);
        assert_eq!(r.tables, vec![(id, 1.0)]);
    }
}
