//! Equi-join selectivity estimation (PostgreSQL's `eqjoinsel`).
//!
//! The paper (§4.2.1) describes the two regimes its host optimizer uses for
//! a join predicate `B1 = B2`:
//!
//! * without MCVs on both sides: the System-R reduction factor
//!   `1 / max(nd(B1), nd(B2))` [Selinger et al. 1979];
//! * with MCVs on both sides: "join" the two MCV lists — the matched MCV
//!   mass is exact, and only the residual non-MCV mass falls back to the
//!   uniform rule. This is the refinement that makes skewed (z=1) TPC-H
//!   estimable for the baseline optimizer.
//!
//! `n_distinct` values are clamped by the estimated input cardinalities
//! (PostgreSQL does the same): a filter that keeps 100 rows cannot feed
//! more than 100 distinct join keys.

use crate::column_stats::{ColumnStats, MIN_SELECTIVITY};

/// Selectivity of the equi-join predicate between two columns described by
/// `s1` and `s2`, where the joining inputs are estimated to carry
/// `rows1`/`rows2` tuples (used to clamp distinct counts).
///
/// The result is a fraction of the *cross product* `rows1 × rows2`.
pub fn eq_join_selectivity(s1: &ColumnStats, s2: &ColumnStats, rows1: f64, rows2: f64) -> f64 {
    let nd1 = clamp_nd(s1.n_distinct, rows1);
    let nd2 = clamp_nd(s2.n_distinct, rows2);

    if s1.mcv.is_empty() || s2.mcv.is_empty() {
        // System-R rule, discounted by NULL fractions.
        let sel = (1.0 - s1.null_frac) * (1.0 - s2.null_frac) / nd1.max(nd2).max(1.0);
        return sel.max(MIN_SELECTIVITY);
    }

    // MCV-join refinement.
    let mut match_freq = 0.0; // Σ f1(v)·f2(v) over MCVs present on both sides
    let mut matched1 = 0.0; // Σ f1(v) over matched MCVs
    let mut matched2 = 0.0;
    for &(v, f1) in s1.mcv.entries() {
        if let Some(f2) = s2.mcv.freq_of(v) {
            match_freq += f1 * f2;
            matched1 += f1;
            matched2 += f2;
        }
    }
    let unmatched1 = (s1.mcv.total_freq() - matched1).max(0.0); // MCV1-only mass
    let unmatched2 = (s2.mcv.total_freq() - matched2).max(0.0);
    let other1 = s1.other_frac(); // non-MCV, non-NULL mass
    let other2 = s2.other_frac();
    let nd_other1 = (nd1 - s1.mcv.len() as f64).max(1.0);
    let nd_other2 = (nd2 - s2.mcv.len() as f64).max(1.0);

    // A value that is an MCV on one side but not on the other joins against
    // the other side's non-MCV mass spread over its distinct values; the
    // two non-MCV masses join under the uniform rule.
    let sel = match_freq
        + unmatched1 * other2 / nd_other2
        + unmatched2 * other1 / nd_other1
        + other1 * other2 / nd_other1.max(nd_other2);

    sel.clamp(MIN_SELECTIVITY, 1.0)
}

fn clamp_nd(nd: f64, rows: f64) -> f64 {
    if rows.is_finite() && rows >= 1.0 && nd > rows {
        rows
    } else {
        nd.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::EquiDepthHistogram;
    use crate::mcv::McvList;

    fn uniform_stats(n_distinct: f64, rows: u64) -> ColumnStats {
        let domain: Vec<i64> = (0..n_distinct as i64).collect();
        ColumnStats {
            row_count: rows,
            null_frac: 0.0,
            n_distinct,
            min: Some(0),
            max: Some(n_distinct as i64 - 1),
            mcv: McvList::empty(),
            histogram: EquiDepthHistogram::from_sorted(&domain, 100),
        }
    }

    #[test]
    fn system_r_rule_without_mcvs() {
        let a = uniform_stats(1000.0, 100_000);
        let b = uniform_stats(500.0, 50_000);
        let sel = eq_join_selectivity(&a, &b, 100_000.0, 50_000.0);
        assert!((sel - 1.0 / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn nd_clamped_by_input_rows() {
        let a = uniform_stats(1000.0, 100_000);
        let b = uniform_stats(500.0, 50_000);
        // Filtered inputs of 100 rows each: nd clamps to 100 on both sides.
        let sel = eq_join_selectivity(&a, &b, 100.0, 100.0);
        assert!((sel - 1.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn identical_mcv_lists_join_exactly() {
        // Two columns, each 50% value 1 and 50% value 2 (both MCVs).
        let mcv = McvList::new(vec![(1, 0.5), (2, 0.5)]);
        let s = ColumnStats {
            row_count: 1000,
            null_frac: 0.0,
            n_distinct: 2.0,
            min: Some(1),
            max: Some(2),
            mcv,
            histogram: None,
        };
        let sel = eq_join_selectivity(&s, &s, 1000.0, 1000.0);
        // Exact: 0.5*0.5 + 0.5*0.5 = 0.5.
        assert!((sel - 0.5).abs() < 1e-9);
    }

    #[test]
    fn disjoint_mcv_lists_join_to_near_zero() {
        let s1 = ColumnStats {
            row_count: 1000,
            null_frac: 0.0,
            n_distinct: 2.0,
            min: Some(1),
            max: Some(2),
            mcv: McvList::new(vec![(1, 0.5), (2, 0.5)]),
            histogram: None,
        };
        let s2 = ColumnStats {
            row_count: 1000,
            null_frac: 0.0,
            n_distinct: 2.0,
            min: Some(3),
            max: Some(4),
            mcv: McvList::new(vec![(3, 0.5), (4, 0.5)]),
            histogram: None,
        };
        let sel = eq_join_selectivity(&s1, &s2, 1000.0, 1000.0);
        // No matched MCVs, no residual mass on either side.
        assert!(sel <= MIN_SELECTIVITY * 10.0, "got {sel}");
    }

    #[test]
    fn skewed_vs_uniform_mixes_regimes() {
        // s1: 90% value 7, rest uniform over 100..1099.
        let tail: Vec<i64> = (100..1100).collect();
        let s1 = ColumnStats {
            row_count: 10_000,
            null_frac: 0.0,
            n_distinct: 1001.0,
            min: Some(7),
            max: Some(1099),
            mcv: McvList::new(vec![(7, 0.9)]),
            histogram: EquiDepthHistogram::from_sorted(&tail, 100),
        };
        // s2: uniform with no MCVs over 1000 values incl. 7.
        let s2 = uniform_stats(1000.0, 10_000);
        let sel = eq_join_selectivity(&s1, &s2, 10_000.0, 10_000.0);
        // Falls back to System-R because one side lacks MCVs:
        assert!((sel - 1.0 / 1001.0).abs() < 1e-6);
    }

    #[test]
    fn null_fractions_discount_matches() {
        let mut a = uniform_stats(100.0, 1000);
        a.null_frac = 0.5;
        let b = uniform_stats(100.0, 1000);
        let sel = eq_join_selectivity(&a, &b, 1000.0, 1000.0);
        assert!((sel - 0.5 / 100.0).abs() < 1e-9);
    }

    #[test]
    fn selectivity_never_exceeds_one_or_hits_zero() {
        let a = uniform_stats(1.0, 10);
        let sel = eq_join_selectivity(&a, &a, 10.0, 10.0);
        assert!(sel <= 1.0 && sel > 0.0);
    }
}
