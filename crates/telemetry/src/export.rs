//! Trace export: Chrome trace format (loadable in Perfetto / `ui.perfetto.dev`
//! and `chrome://tracing`) and JSON-lines.
//!
//! The JSON is hand-rolled so the crate stays dependency-free; a dev-test
//! round-trips the output through `serde_json` to prove validity.

use crate::span::{AttrValue, QueryTrace, SpanRecord};

fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn attr_value_into(v: &AttrValue, out: &mut String) {
    match v {
        AttrValue::U64(n) => out.push_str(&n.to_string()),
        AttrValue::I64(n) => out.push_str(&n.to_string()),
        AttrValue::F64(n) => {
            if n.is_finite() {
                out.push_str(&format!("{n}"));
                // `{}` prints integral floats without a dot; keep it a
                // JSON number either way (both forms are valid).
            } else {
                out.push_str("null");
            }
        }
        AttrValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        AttrValue::Str(s) => {
            out.push('"');
            escape_json_into(s, out);
            out.push('"');
        }
    }
}

fn args_into(span: &SpanRecord, out: &mut String) {
    out.push_str("{\"span_id\":");
    out.push_str(&span.id.to_string());
    out.push_str(",\"parent_id\":");
    out.push_str(&span.parent.to_string());
    for (k, v) in &span.attrs {
        out.push_str(",\"");
        escape_json_into(k, out);
        out.push_str("\":");
        attr_value_into(v, out);
    }
    out.push('}');
}

fn event_into(span: &SpanRecord, out: &mut String) {
    out.push_str("{\"name\":\"");
    escape_json_into(span.name, out);
    out.push_str("\",\"cat\":\"reopt\",\"ph\":\"X\",\"ts\":");
    out.push_str(&span.start_us.to_string());
    out.push_str(",\"dur\":");
    out.push_str(&span.dur_us.to_string());
    out.push_str(",\"pid\":1,\"tid\":1,\"args\":");
    args_into(span, out);
    out.push('}');
}

impl QueryTrace {
    /// One JSON document in Chrome trace-event format. All spans are
    /// complete (`"ph":"X"`) events on a single pid/tid; ts/dur nesting
    /// reconstructs the tree in the Perfetto timeline, and the exact
    /// parent links ride along in `args`.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, span) in self.spans().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            event_into(span, &mut out);
        }
        out.push_str("\n]}");
        out
    }

    /// One JSON object per line:
    /// `{"id":..,"parent":..,"name":..,"start_us":..,"dur_us":..,"attrs":{..}}`
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for span in self.spans() {
            out.push_str("{\"id\":");
            out.push_str(&span.id.to_string());
            out.push_str(",\"parent\":");
            out.push_str(&span.parent.to_string());
            out.push_str(",\"name\":\"");
            escape_json_into(span.name, &mut out);
            out.push_str("\",\"start_us\":");
            out.push_str(&span.start_us.to_string());
            out.push_str(",\"dur_us\":");
            out.push_str(&span.dur_us.to_string());
            out.push_str(",\"attrs\":{");
            for (i, (k, v)) in span.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_json_into(k, &mut out);
                out.push_str("\":");
                attr_value_into(v, &mut out);
            }
            out.push_str("}}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::span::Tracer;
    use serde_json::Value;

    fn sample_trace() -> crate::span::QueryTrace {
        let t = Tracer::enabled();
        let mut root = t.span("service.execute");
        root.attr_str("query", "q \"quoted\"\nline2");
        root.attr_f64("cost", 1.5);
        root.attr_f64("bad", f64::NAN);
        root.attr_bool("hit", true);
        root.attr_i64("delta", -3);
        let child = t.under(&root).span("exec.operator");
        drop(child);
        drop(root);
        t.finish()
    }

    fn num(v: &Value) -> i64 {
        match v {
            Value::Int(i) => *i,
            Value::UInt(u) => *u as i64,
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_shape() {
        let json = sample_trace().to_chrome_trace();
        let doc = serde_json::value_from_str(&json).unwrap();
        let events = match doc.get("traceEvents").unwrap() {
            Value::Array(items) => items.clone(),
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(events.len(), 2);
        for e in &events {
            assert_eq!(e.get("ph").unwrap(), &Value::Str("X".into()));
            assert_eq!(num(e.get("pid").unwrap()), 1);
            assert_eq!(num(e.get("tid").unwrap()), 1);
            assert!(num(e.get("ts").unwrap()) >= 0);
            assert!(num(e.get("dur").unwrap()) >= 0);
            let args = e.get("args").unwrap();
            assert!(num(args.get("span_id").unwrap()) > 0);
        }
        let root = &events[0];
        assert_eq!(
            root.get("name").unwrap(),
            &Value::Str("service.execute".into())
        );
        let args = root.get("args").unwrap();
        assert_eq!(num(args.get("parent_id").unwrap()), 0);
        assert_eq!(
            args.get("query").unwrap(),
            &Value::Str("q \"quoted\"\nline2".into())
        );
        assert_eq!(args.get("cost").unwrap(), &Value::Float(1.5));
        assert_eq!(args.get("bad").unwrap(), &Value::Null);
        assert_eq!(args.get("hit").unwrap(), &Value::Bool(true));
        assert_eq!(num(args.get("delta").unwrap()), -3);
        let child_args = events[1].get("args").unwrap();
        assert_eq!(
            num(child_args.get("parent_id").unwrap()),
            num(args.get("span_id").unwrap())
        );
    }

    #[test]
    fn json_lines_parse_individually() {
        let lines = sample_trace().to_json_lines();
        let mut n = 0;
        for line in lines.lines() {
            let doc = serde_json::value_from_str(line).unwrap();
            assert!(num(doc.get("id").unwrap()) > 0);
            assert!(matches!(doc.get("name").unwrap(), Value::Str(_)));
            n += 1;
        }
        assert_eq!(n, 2);
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let trace = Tracer::disabled().finish();
        let doc = serde_json::value_from_str(&trace.to_chrome_trace()).unwrap();
        match doc.get("traceEvents").unwrap() {
            Value::Array(items) => assert!(items.is_empty()),
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(trace.to_json_lines(), "");
    }
}
