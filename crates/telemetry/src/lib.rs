//! `reopt_telemetry` — deterministic-safe observability for the
//! re-optimization pipeline (Wu, Naughton & Singh, SIGMOD 2016).
//!
//! Three pieces:
//!
//! * [`span`] — structured spans. A [`Tracer`] handle is threaded through
//!   `QueryService::submit/execute`, `ReOptimizer::run`, `execute_mid_query`,
//!   sample validation and the executor; each layer opens named, nested
//!   spans with typed attributes. A disabled tracer is a true no-op.
//! * [`metrics`] — an ordered counters/gauges/histograms registry with a
//!   fixed-bucket latency histogram (p50/p95/p99 within 12.5%).
//! * [`export`] — Chrome-trace-format (Perfetto-loadable) and JSON-lines
//!   writers for finished [`QueryTrace`]s.
//!
//! The crate depends only on `reopt-common` (for `Stopwatch`, the sole
//! sanctioned clock, and `lock_unpoisoned`).

pub mod export;
pub mod metrics;
pub mod span;

pub use metrics::{
    HistogramSnapshot, LatencyHistogram, LatencySummary, MetricsRegistry, TelemetrySnapshot,
};
pub use span::{env_trace_default, AttrValue, QueryTrace, Span, SpanRecord, Tracer};

/// Canonical span names — the span taxonomy. Every span emitted by the
/// workspace uses one of these constants so traces are greppable and the
/// README table stays authoritative.
pub mod names {
    /// `QueryService::submit` root: one per admission.
    pub const SERVICE_SUBMIT: &str = "service.submit";
    /// Plan-cache admission decision (attrs: `template`, `source`).
    pub const SERVICE_ADMISSION: &str = "service.admission";
    /// `QueryService::execute` root: submit + run + aggregate.
    pub const SERVICE_EXECUTE: &str = "service.execute";
    /// Whole re-optimization loop (attrs: `rounds`, `converged`).
    pub const REOPT_LOOP: &str = "reopt.loop";
    /// One plan→validate round (attrs: `round`, `terminal`, `gamma_new`).
    pub const REOPT_ROUND: &str = "reopt.round";
    /// DP join-order search inside a round (attrs: `subsets_reused`,
    /// `subsets_replanned`).
    pub const OPTIMIZER_DP: &str = "optimizer.dp";
    /// Sample dry-run validation (attrs: `cache_hits`, `subtrees_executed`,
    /// `sample_rows`, `delta_len`).
    pub const SAMPLING_DRY_RUN: &str = "sampling.dry_run";
    /// Whole mid-query execution loop (attrs: `suspensions`, `replans`,
    /// `plan_switches`).
    pub const MIDQUERY_RUN: &str = "midquery.run";
    /// One pipeline segment between suspensions.
    pub const MIDQUERY_SEGMENT: &str = "midquery.segment";
    /// A suspension: Γ refinement from observed cardinalities (attrs:
    /// `breaker`, `breaker_rows`, `replan`).
    pub const MIDQUERY_SUSPEND: &str = "midquery.suspend";
    /// Re-planning with pinned completed subtrees (attrs: `pins`,
    /// `switched`).
    pub const MIDQUERY_REPLAN: &str = "midquery.replan";
    /// Checkpoint splice of completed work into the new plan (attr:
    /// `reused`).
    pub const MIDQUERY_SPLICE: &str = "midquery.splice";
    /// One physical operator execution (attrs: `op`, `node`, `rows`,
    /// `cache_hit`).
    pub const EXEC_OPERATOR: &str = "exec.operator";
    /// Final aggregation over join output.
    pub const EXEC_AGGREGATE: &str = "exec.aggregate";
    /// One ingest operation root (attrs: `table`, `rows_appended`,
    /// `rows_deleted`, `data_version`, `drift`, `refreshed`).
    pub const SERVICE_INGEST: &str = "service.ingest";
    /// Post-ingest incremental ANALYZE (attrs: `reused`, `merged`,
    /// `rescanned`).
    pub const INGEST_ANALYZE: &str = "ingest.analyze";
    /// Drift measurement against the validation baseline (attrs: `max`,
    /// `threshold`, `tables_over`).
    pub const INGEST_DRIFT: &str = "ingest.drift";
    /// Surgical refresh after drift crossed the threshold: drifted
    /// tables' samples redrawn, their plans marked, disjoint dry-run
    /// entries migrated (attrs: `tables_refreshed`, `plans_evicted`,
    /// `sample_entries_kept`, `sample_entries_dropped`).
    pub const INGEST_REFRESH: &str = "ingest.refresh";
    /// Cached-plan re-validation on admission of a surgically-evicted
    /// template (attrs: `template`, `cached_cost`, `revalidated_cost`,
    /// `accepted`).
    pub const SERVICE_REVALIDATE: &str = "service.revalidate";
}
