//! Structured spans: a cheap, clone-able [`Tracer`] handle that records
//! nested, duration-measured spans into a shared buffer.
//!
//! Design constraints (see lint rules R1–R5):
//!
//! * **Deterministic-safe.** A disabled tracer reads no clock, takes no
//!   lock, and allocates nothing — threading it through the engine cannot
//!   perturb plan choice or row output. All durations come from
//!   [`reopt_common::Stopwatch`], the sole sanctioned clock (R3).
//! * **Explicit parentage.** There is no thread-local "current span";
//!   callers derive a child handle with [`Tracer::under`] and pass it down.
//!   This keeps parent links correct under the executor's worker pools
//!   without any ambient state.
//! * **Drop-recorded.** A [`Span`] records itself when dropped, so early
//!   returns and `?` propagation still produce closed spans.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use reopt_common::{lock_unpoisoned, Stopwatch};

/// A typed attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::I64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// One finished span, as stored in a [`QueryTrace`].
///
/// `parent == 0` marks a root span; ids start at 1.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    pub id: u64,
    pub parent: u64,
    pub name: &'static str,
    /// Microseconds since the trace epoch.
    pub start_us: u64,
    /// Span duration in microseconds (saturating).
    pub dur_us: u64,
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Look up an attribute by key (first match wins).
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Convenience: the attribute as a `u64`, if present and numeric.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        match self.attr(key) {
            Some(AttrValue::U64(v)) => Some(*v),
            Some(AttrValue::I64(v)) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct TracerCore {
    /// Single epoch for the whole trace: every span start/end is an offset
    /// from this Stopwatch, so spans nest consistently on one timeline.
    epoch: Stopwatch,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Handle for emitting spans. Cloning is cheap (an `Option<Arc>` + a `u64`).
///
/// A disabled tracer (the [`Default`]) is a true no-op: every method is a
/// branch on `None` and returns immediately.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    core: Option<Arc<TracerCore>>,
    parent: u64,
}

impl Tracer {
    /// A tracer that records nothing. Identical to `Tracer::default()`.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// A fresh recording tracer with its own epoch and span buffer.
    pub fn enabled() -> Self {
        Tracer {
            core: Some(Arc::new(TracerCore {
                epoch: Stopwatch::start(),
                next_id: AtomicU64::new(1),
                spans: Mutex::new(Vec::new()),
            })),
            parent: 0,
        }
    }

    /// Enabled iff the `REOPT_TRACE` environment variable is truthy.
    pub fn from_env() -> Self {
        if env_trace_default() {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// A handle whose spans become children of `span`.
    ///
    /// If `span` is itself non-recording (e.g. it came from a disabled
    /// tracer) the parent link is left unchanged.
    pub fn under(&self, span: &Span) -> Tracer {
        Tracer {
            core: self.core.clone(),
            parent: if span.is_recording() {
                span.id
            } else {
                self.parent
            },
        }
    }

    /// Open a span. On a disabled tracer this is free: no clock read, no
    /// id allocation, no buffer touch.
    pub fn span(&self, name: &'static str) -> Span {
        match &self.core {
            None => Span {
                core: None,
                id: 0,
                parent: 0,
                name,
                start_us: 0,
                attrs: Vec::new(),
            },
            Some(core) => {
                // lint: relaxed-ok(span ids only need uniqueness from a single atomic RMW; no other memory is published through them)
                let id = core.next_id.fetch_add(1, Ordering::Relaxed);
                Span {
                    start_us: micros(core.epoch.elapsed()),
                    core: Some(Arc::clone(core)),
                    id,
                    parent: self.parent,
                    name,
                    attrs: Vec::new(),
                }
            }
        }
    }

    /// Drain the recorded spans into an immutable [`QueryTrace`].
    ///
    /// Spans still open in other clones of this tracer will be lost; finish
    /// only after the traced work completed. Records are sorted by
    /// `(start_us, id)` so the result is stable for a given execution.
    pub fn finish(self) -> QueryTrace {
        match self.core {
            None => QueryTrace::default(),
            Some(core) => {
                let mut spans = std::mem::take(&mut *lock_unpoisoned(&core.spans));
                spans.sort_by_key(|s| (s.start_us, s.id));
                QueryTrace { spans }
            }
        }
    }
}

/// An open span. Records itself into the trace buffer on drop.
#[derive(Debug)]
pub struct Span {
    core: Option<Arc<TracerCore>>,
    id: u64,
    parent: u64,
    name: &'static str,
    start_us: u64,
    attrs: Vec<(&'static str, AttrValue)>,
}

impl Span {
    /// Whether this span will be recorded (false for disabled tracers).
    pub fn is_recording(&self) -> bool {
        self.core.is_some()
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    /// Rename the span (e.g. once the operator kind is known).
    pub fn set_name(&mut self, name: &'static str) {
        self.name = name;
    }

    pub fn attr_u64(&mut self, key: &'static str, v: u64) {
        if self.core.is_some() {
            self.attrs.push((key, AttrValue::U64(v)));
        }
    }

    pub fn attr_i64(&mut self, key: &'static str, v: i64) {
        if self.core.is_some() {
            self.attrs.push((key, AttrValue::I64(v)));
        }
    }

    pub fn attr_f64(&mut self, key: &'static str, v: f64) {
        if self.core.is_some() {
            self.attrs.push((key, AttrValue::F64(v)));
        }
    }

    pub fn attr_bool(&mut self, key: &'static str, v: bool) {
        if self.core.is_some() {
            self.attrs.push((key, AttrValue::Bool(v)));
        }
    }

    pub fn attr_str(&mut self, key: &'static str, v: impl Into<String>) {
        if self.core.is_some() {
            self.attrs.push((key, AttrValue::Str(v.into())));
        }
    }

    /// Format `v` only when recording — keeps the disabled path free of
    /// `format!` allocations.
    pub fn attr_display(&mut self, key: &'static str, v: &dyn std::fmt::Display) {
        if self.core.is_some() {
            self.attrs.push((key, AttrValue::Str(v.to_string())));
        }
    }

    /// Close the span explicitly (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(core) = self.core.take() {
            let end_us = micros(core.epoch.elapsed());
            lock_unpoisoned(&core.spans).push(SpanRecord {
                id: self.id,
                parent: self.parent,
                name: self.name,
                start_us: self.start_us,
                dur_us: end_us.saturating_sub(self.start_us),
                attrs: std::mem::take(&mut self.attrs),
            });
        }
    }
}

/// An immutable, finished span tree.
#[derive(Debug, Clone, Default)]
pub struct QueryTrace {
    spans: Vec<SpanRecord>,
}

impl QueryTrace {
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// First span with this name, in `(start_us, id)` order.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Number of spans with this name.
    pub fn count(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// Direct children of the span with id `id`, in start order.
    pub fn children_of(&self, id: u64) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(move |s| s.parent == id)
    }

    /// Root spans (parent == 0), in start order.
    pub fn roots(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(|s| s.parent == 0)
    }

    /// Indented text rendering of the span tree, one span per line:
    /// `name  dur_us=N  key=value ...`
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for root in self.roots() {
            self.render_into(root, 0, &mut out);
        }
        out
    }

    fn render_into(&self, span: &SpanRecord, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(span.name);
        out.push_str(&format!("  dur_us={}", span.dur_us));
        for (k, v) in &span.attrs {
            out.push_str(&format!("  {k}={v}"));
        }
        out.push('\n');
        for child in self.children_of(span.id) {
            self.render_into(child, depth + 1, out);
        }
    }
}

/// Whether `REOPT_TRACE` asks for ambient tracing ("1" / "true" / "on",
/// case-insensitive). Resolve this once at construction time, like the
/// executor's `REOPT_THREADS` / `REOPT_COLUMNAR` knobs — never per query.
pub fn env_trace_default() -> bool {
    match std::env::var("REOPT_TRACE") {
        Ok(v) => matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "true" | "on"),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let mut s = t.span("x");
        assert!(!s.is_recording());
        s.attr_u64("rows", 7);
        s.attr_str("label", "y");
        drop(s);
        let trace = t.finish();
        assert!(trace.is_empty());
    }

    #[test]
    fn spans_nest_via_under() {
        let t = Tracer::enabled();
        let mut root = t.span("root");
        root.attr_u64("n", 1);
        let child_tracer = t.under(&root);
        let inner = child_tracer.span("inner");
        let grand = child_tracer.under(&inner).span("grand");
        drop(grand);
        drop(inner);
        let root_id = root.id();
        drop(root);

        let trace = t.finish();
        assert_eq!(trace.len(), 3);
        let root = trace.find("root").unwrap();
        assert_eq!(root.id, root_id);
        assert_eq!(root.parent, 0);
        assert_eq!(root.attr_u64("n"), Some(1));
        let inner = trace.find("inner").unwrap();
        assert_eq!(inner.parent, root.id);
        let grand = trace.find("grand").unwrap();
        assert_eq!(grand.parent, inner.id);
        assert!(trace.children_of(root.id).any(|s| s.name == "inner"));
        assert_eq!(trace.roots().count(), 1);
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let t = Tracer::enabled();
        let ids: Vec<u64> = (0..100).map(|_| t.span("s").id()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn early_drop_records_closed_span() {
        let t = Tracer::enabled();
        fn inner(t: &Tracer) -> Option<()> {
            let _s = t.span("early");
            None?;
            Some(())
        }
        assert!(inner(&t).is_none());
        let trace = t.finish();
        assert_eq!(trace.count("early"), 1);
    }

    #[test]
    fn render_tree_indents_children() {
        let t = Tracer::enabled();
        let root = t.span("a");
        let child = t.under(&root).span("b");
        drop(child);
        drop(root);
        let tree = t.finish().render_tree();
        assert!(tree.contains("a  dur_us="));
        assert!(tree.contains("\n  b  dur_us="));
    }

    #[test]
    fn env_parsing_is_strict() {
        // We can't set env vars safely in parallel tests; just check the
        // default (unset in the test environment unless CI exported it).
        let _ = env_trace_default();
    }
}
