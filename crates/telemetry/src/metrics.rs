//! Metrics registry: ordered counters / gauges / latency histograms.
//!
//! Everything is `BTreeMap`-backed so snapshots iterate in a deterministic
//! order (lint R1), and the histogram uses fixed log₂ buckets with three
//! sub-bucket bits, bounding quantile error at ≈12.5% while keeping the
//! whole structure a flat `Vec<u64>`.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use reopt_common::lock_unpoisoned;

/// Values below this are given exact single-value buckets.
const LINEAR_CUTOFF: u64 = 16;
/// Sub-bucket bits per power of two above the linear cutoff.
const SUB_BITS: u64 = 3;
const SUBS: u64 = 1 << SUB_BITS;
/// Bucket count: 16 exact + 8 sub-buckets for each msb in 4..=63.
const NUM_BUCKETS: usize = (LINEAR_CUTOFF + (64 - 4) * SUBS) as usize;

fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        v as usize
    } else {
        let msb = 63 - u64::from(v.leading_zeros()); // >= 4
        let sub = (v >> (msb - SUB_BITS)) & (SUBS - 1);
        (LINEAR_CUTOFF + (msb - 4) * SUBS + sub) as usize
    }
}

/// Largest value that maps to bucket `i` (inclusive).
fn bucket_upper_bound(i: usize) -> u64 {
    let i = i as u64;
    if i < LINEAR_CUTOFF {
        i
    } else {
        let j = i - LINEAR_CUTOFF;
        let msb = j / SUBS + 4;
        let sub = j % SUBS;
        // Widen: the top sub-bucket of the msb=63 octave overflows u64.
        let ub = ((u128::from(SUBS + sub + 1)) << (msb - SUB_BITS)) - 1;
        u64::try_from(ub).unwrap_or(u64::MAX)
    }
}

/// Fixed-bucket latency histogram over `u64` microsecond samples.
///
/// Exact below 16µs, ≤12.5% relative error above; 496 buckets total.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn observe(&mut self, micros: u64) {
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(micros);
        self.max_us = self.max_us.max(micros);
        self.counts[bucket_index(micros)] += 1;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Upper bound (inclusive) of the bucket holding the `q`-quantile
    /// sample, with `q` in `[0, 1]`. Exact for values < 16µs; otherwise
    /// within 12.5% above the true sample. Returns 0 on an empty histogram.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                // Never report past the observed maximum.
                return bucket_upper_bound(i).min(self.max_us);
            }
        }
        self.max_us
    }

    pub fn p50(&self) -> u64 {
        self.quantile_upper_bound(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile_upper_bound(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile_upper_bound(0.99)
    }

    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_us: self.sum_us.checked_div(self.count).unwrap_or(0),
            max_us: self.max_us,
            p50_us: self.p50(),
            p95_us: self.p95(),
            p99_us: self.p99(),
        }
    }

    /// `(inclusive upper bound µs, count)` for every non-empty bucket.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (bucket_upper_bound(i), *c))
            .collect()
    }
}

/// Compact, `Copy` summary of a latency histogram — all-µs integers so it
/// can ride in `Copy + Eq` stats structs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    pub count: u64,
    pub mean_us: u64,
    pub max_us: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LatencyHistogram>,
}

/// Shared, thread-safe registry. Cloning shares the underlying maps.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter (creating it at zero).
    pub fn add(&self, name: &str, delta: u64) {
        if delta == 0 {
            return;
        }
        let mut inner = lock_unpoisoned(&self.inner);
        match inner.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                inner.counters.insert(name.to_string(), delta);
            }
        }
    }

    pub fn set_gauge(&self, name: &str, v: f64) {
        let mut inner = lock_unpoisoned(&self.inner);
        match inner.gauges.get_mut(name) {
            Some(g) => *g = v,
            None => {
                inner.gauges.insert(name.to_string(), v);
            }
        }
    }

    /// Record one sample into the named latency histogram.
    pub fn observe_micros(&self, name: &str, micros: u64) {
        let mut inner = lock_unpoisoned(&self.inner);
        if let Some(h) = inner.histograms.get_mut(name) {
            h.observe(micros);
        } else {
            let mut h = LatencyHistogram::new();
            h.observe(micros);
            inner.histograms.insert(name.to_string(), h);
        }
    }

    pub fn counter(&self, name: &str) -> u64 {
        lock_unpoisoned(&self.inner)
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    pub fn latency_summary(&self, name: &str) -> LatencySummary {
        lock_unpoisoned(&self.inner)
            .histograms
            .get(name)
            .map(LatencyHistogram::summary)
            .unwrap_or_default()
    }

    /// Point-in-time copy of everything in the registry, in sorted order.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = lock_unpoisoned(&self.inner);
        TelemetrySnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistogramSnapshot {
                            summary: h.summary(),
                            buckets: h.nonzero_buckets(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Immutable snapshot of one histogram.
#[derive(Debug, Clone, Default)]
pub struct HistogramSnapshot {
    pub summary: LatencySummary,
    /// `(inclusive upper bound µs, count)` for non-empty buckets.
    pub buckets: Vec<(u64, u64)>,
}

/// Immutable, ordered snapshot of the whole registry. Callers may fold in
/// extra values (e.g. atomic counters kept outside the registry) with
/// [`TelemetrySnapshot::set_counter`] before handing it out.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl TelemetrySnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn set_counter(&mut self, name: &str, v: u64) {
        self.counters.insert(name.to_string(), v);
    }

    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Sorted plain-text dump (one `name value` pair per line).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter {k} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge {k} {v}\n"));
        }
        for (k, h) in &self.histograms {
            let s = h.summary;
            out.push_str(&format!(
                "histogram {k} count={} mean_us={} p50_us={} p95_us={} p99_us={} max_us={}\n",
                s.count, s.mean_us, s.p50_us, s.p95_us, s.p99_us, s.max_us
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_line() {
        // Every bucket's upper bound maps back to that bucket, and the next
        // integer maps to a strictly later bucket.
        for i in 0..NUM_BUCKETS {
            let ub = bucket_upper_bound(i);
            assert_eq!(bucket_index(ub), i, "upper bound of bucket {i}");
            if ub < u64::MAX {
                assert!(bucket_index(ub + 1) > i, "successor of bucket {i}");
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        // For v >= 16 the bucket upper bound overshoots by at most 12.5%.
        for v in [16u64, 100, 999, 4096, 123_456, 987_654_321] {
            let ub = bucket_upper_bound(bucket_index(v));
            assert!(ub >= v);
            assert!((ub - v) as f64 <= v as f64 * 0.125, "v={v} ub={ub}");
        }
    }

    #[test]
    fn exact_quantiles_below_cutoff() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.observe(v);
        }
        assert_eq!(h.p50(), 5);
        assert_eq!(h.quantile_upper_bound(1.0), 10);
        assert_eq!(h.quantile_upper_bound(0.0), 1);
    }

    #[test]
    fn uniform_distribution_quantiles_within_error_band() {
        // 1..=1000 µs uniformly: true p50=500, p95=950, p99=990.
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.mean_us, 500);
        assert_eq!(s.max_us, 1000);
        for (got, want) in [(s.p50_us, 500.0), (s.p95_us, 950.0), (s.p99_us, 990.0)] {
            assert!(got as f64 >= want, "got {got} want >= {want}");
            assert!(
                got as f64 <= want * 1.125,
                "got {got} want <= {}",
                want * 1.125
            );
        }
    }

    #[test]
    fn constant_distribution_is_exact_to_the_bucket() {
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.observe(777);
        }
        let ub = bucket_upper_bound(bucket_index(777));
        assert_eq!(h.p50(), ub.min(777));
        assert_eq!(h.p99(), ub.min(777));
        assert_eq!(h.summary().mean_us, 777);
    }

    #[test]
    fn quantiles_never_exceed_observed_max() {
        let mut h = LatencyHistogram::new();
        h.observe(1_000_000);
        assert_eq!(h.p99(), 1_000_000);
        assert_eq!(h.summary().max_us, 1_000_000);
    }

    #[test]
    fn merge_matches_combined_observation() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for v in [3u64, 17, 250, 9000] {
            a.observe(v);
            all.observe(v);
        }
        for v in [5u64, 42, 100_000] {
            b.observe(v);
            all.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.summary(), all.summary());
    }

    #[test]
    fn registry_is_ordered_and_shared() {
        let r = MetricsRegistry::new();
        let r2 = r.clone();
        r.add("z.last", 1);
        r.add("a.first", 2);
        r2.add("a.first", 3);
        r.set_gauge("g", 1.5);
        r.observe_micros("lat", 100);
        r.observe_micros("lat", 200);

        assert_eq!(r.counter("a.first"), 5);
        assert_eq!(r.counter("missing"), 0);
        let snap = r2.snapshot();
        let keys: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(keys, ["a.first", "z.last"]);
        assert_eq!(snap.gauge("g"), Some(1.5));
        assert_eq!(snap.histograms["lat"].summary.count, 2);
        assert!(snap.render().contains("counter a.first 5"));
    }
}
