//! Predicates: local comparisons against constants and equi-join clauses.

use std::fmt;

use reopt_common::{ColId, RelId};
use reopt_storage::Value;

/// Comparison operator of a local predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `BETWEEN lo AND hi` (inclusive); the second constant rides in
    /// [`Predicate::value2`].
    Between,
}

impl CmpOp {
    /// Whether the operator requires an ordered column type.
    pub fn needs_order(self) -> bool {
        !matches!(self, CmpOp::Eq | CmpOp::Ne)
    }

    /// Evaluate the operator on raw encoded values.
    #[inline]
    pub fn eval(self, v: i64, c1: i64, c2: i64) -> bool {
        match self {
            CmpOp::Eq => v == c1,
            CmpOp::Ne => v != c1,
            CmpOp::Lt => v < c1,
            CmpOp::Le => v <= c1,
            CmpOp::Gt => v > c1,
            CmpOp::Ge => v >= c1,
            CmpOp::Between => v >= c1 && v <= c2,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Between => "BETWEEN",
        };
        f.write_str(s)
    }
}

/// A local predicate `rel.col OP constant` (conjunct of the query's `F`).
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Relation occurrence the predicate applies to.
    pub rel: RelId,
    /// Column within that relation's table.
    pub col: ColId,
    /// Comparison operator.
    pub op: CmpOp,
    /// First constant.
    pub value: Value,
    /// Second constant, only used by [`CmpOp::Between`].
    pub value2: Option<Value>,
}

impl Predicate {
    /// `rel.col = v`.
    pub fn eq(rel: RelId, col: ColId, v: impl Into<Value>) -> Self {
        Predicate {
            rel,
            col,
            op: CmpOp::Eq,
            value: v.into(),
            value2: None,
        }
    }

    /// `rel.col <> v`.
    pub fn ne(rel: RelId, col: ColId, v: impl Into<Value>) -> Self {
        Predicate {
            rel,
            col,
            op: CmpOp::Ne,
            value: v.into(),
            value2: None,
        }
    }

    /// `rel.col < v`.
    pub fn lt(rel: RelId, col: ColId, v: impl Into<Value>) -> Self {
        Predicate {
            rel,
            col,
            op: CmpOp::Lt,
            value: v.into(),
            value2: None,
        }
    }

    /// `rel.col <= v`.
    pub fn le(rel: RelId, col: ColId, v: impl Into<Value>) -> Self {
        Predicate {
            rel,
            col,
            op: CmpOp::Le,
            value: v.into(),
            value2: None,
        }
    }

    /// `rel.col > v`.
    pub fn gt(rel: RelId, col: ColId, v: impl Into<Value>) -> Self {
        Predicate {
            rel,
            col,
            op: CmpOp::Gt,
            value: v.into(),
            value2: None,
        }
    }

    /// `rel.col >= v`.
    pub fn ge(rel: RelId, col: ColId, v: impl Into<Value>) -> Self {
        Predicate {
            rel,
            col,
            op: CmpOp::Ge,
            value: v.into(),
            value2: None,
        }
    }

    /// `rel.col BETWEEN lo AND hi` (inclusive).
    pub fn between(rel: RelId, col: ColId, lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        Predicate {
            rel,
            col,
            op: CmpOp::Between,
            value: lo.into(),
            value2: Some(hi.into()),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            CmpOp::Between => write!(
                f,
                "{}.{} BETWEEN {} AND {}",
                self.rel,
                self.col,
                self.value,
                self.value2.as_ref().unwrap_or(&Value::Null)
            ),
            op => write!(f, "{}.{} {} {}", self.rel, self.col, op, self.value),
        }
    }
}

/// An equi-join predicate `left_rel.left_col = right_rel.right_col`.
///
/// Stored in canonical orientation (smaller `RelId` on the left) so that
/// join-graph comparisons are order-insensitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JoinPredicate {
    /// Left side (smaller `RelId` after canonicalization).
    pub left_rel: RelId,
    /// Column on the left relation.
    pub left_col: ColId,
    /// Right side.
    pub right_rel: RelId,
    /// Column on the right relation.
    pub right_col: ColId,
}

impl JoinPredicate {
    /// Build in canonical orientation. Self-join predicates within one
    /// relation occurrence are not representable (and not needed).
    pub fn new(a_rel: RelId, a_col: ColId, b_rel: RelId, b_col: ColId) -> Self {
        if a_rel <= b_rel {
            JoinPredicate {
                left_rel: a_rel,
                left_col: a_col,
                right_rel: b_rel,
                right_col: b_col,
            }
        } else {
            JoinPredicate {
                left_rel: b_rel,
                left_col: b_col,
                right_rel: a_rel,
                right_col: a_col,
            }
        }
    }

    /// The column this predicate needs on relation `rel`, if `rel` is one
    /// of its endpoints.
    pub fn col_on(&self, rel: RelId) -> Option<ColId> {
        if rel == self.left_rel {
            Some(self.left_col)
        } else if rel == self.right_rel {
            Some(self.right_col)
        } else {
            None
        }
    }

    /// The endpoint opposite to `rel`.
    pub fn other_side(&self, rel: RelId) -> Option<(RelId, ColId)> {
        if rel == self.left_rel {
            Some((self.right_rel, self.right_col))
        } else if rel == self.right_rel {
            Some((self.left_rel, self.left_col))
        } else {
            None
        }
    }
}

impl fmt::Display for JoinPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{} = {}.{}",
            self.left_rel, self.left_col, self.right_rel, self.right_col
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_eval() {
        assert!(CmpOp::Eq.eval(5, 5, 0));
        assert!(!CmpOp::Eq.eval(5, 6, 0));
        assert!(CmpOp::Ne.eval(5, 6, 0));
        assert!(CmpOp::Lt.eval(4, 5, 0));
        assert!(CmpOp::Le.eval(5, 5, 0));
        assert!(CmpOp::Gt.eval(6, 5, 0));
        assert!(CmpOp::Ge.eval(5, 5, 0));
        assert!(CmpOp::Between.eval(5, 1, 9));
        assert!(!CmpOp::Between.eval(0, 1, 9));
        assert!(!CmpOp::Between.eval(10, 1, 9));
    }

    #[test]
    fn order_requirements() {
        assert!(!CmpOp::Eq.needs_order());
        assert!(!CmpOp::Ne.needs_order());
        assert!(CmpOp::Lt.needs_order());
        assert!(CmpOp::Between.needs_order());
    }

    #[test]
    fn predicate_constructors_and_display() {
        let p = Predicate::eq(RelId::new(0), ColId::new(1), 5i64);
        assert_eq!(p.to_string(), "r0.c1 = 5");
        let p = Predicate::between(RelId::new(2), ColId::new(0), 1i64, 9i64);
        assert_eq!(p.to_string(), "r2.c0 BETWEEN 1 AND 9");
        assert_eq!(p.value2, Some(Value::Int(9)));
    }

    #[test]
    fn join_predicate_canonical_orientation() {
        let a = JoinPredicate::new(RelId::new(3), ColId::new(1), RelId::new(1), ColId::new(2));
        let b = JoinPredicate::new(RelId::new(1), ColId::new(2), RelId::new(3), ColId::new(1));
        assert_eq!(a, b);
        assert_eq!(a.left_rel, RelId::new(1));
        assert_eq!(a.to_string(), "r1.c2 = r3.c1");
    }

    #[test]
    fn join_predicate_side_lookups() {
        let j = JoinPredicate::new(RelId::new(0), ColId::new(4), RelId::new(2), ColId::new(7));
        assert_eq!(j.col_on(RelId::new(0)), Some(ColId::new(4)));
        assert_eq!(j.col_on(RelId::new(2)), Some(ColId::new(7)));
        assert_eq!(j.col_on(RelId::new(1)), None);
        assert_eq!(
            j.other_side(RelId::new(0)),
            Some((RelId::new(2), ColId::new(7)))
        );
        assert_eq!(j.other_side(RelId::new(9)), None);
    }
}
