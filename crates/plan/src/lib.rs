//! Query representation: logical algebra, join trees and physical plans.
//!
//! The paper works on select–equijoin(–aggregate) queries
//! `σ_F(R1 ⋈ … ⋈ RK)` (§4.1). This crate defines:
//!
//! * [`expr`] — local predicates and equi-join predicates,
//! * [`query`] — the [`query::Query`] type, its builder, the join
//!   graph, and aggregate specifications,
//! * [`join_tree`] — logical [`join_tree::JoinTree`]s, the
//!   paper's `tree(P)` set representation (§3.1) and `code(T)` encoding
//!   (Appendix E),
//! * [`transform`] — local/global transformation classification
//!   (Definition 1/4), structural equivalence (Definition 3) and plan
//!   coverage (Definition 2),
//! * [`physical`] — physical plans (access paths + join operators) with
//!   structural fingerprints, the objects Algorithm 1 compares across
//!   rounds,
//! * [`template`] — literal-free query *template* fingerprints, the plan
//!   cache key of the serving layer (`reopt-service`).

pub mod expr;
pub mod join_tree;
pub mod physical;
pub mod query;
pub mod sql;
pub mod template;
pub mod transform;

pub use expr::{CmpOp, JoinPredicate, Predicate};
pub use join_tree::JoinTree;
pub use physical::{AccessPath, JoinAlgo, PhysicalPlan, PlanNodeInfo};
pub use query::{AggExpr, AggFunc, AggSpec, ColRef, JoinGraph, Query, QueryBuilder};
pub use sql::to_sql;
pub use template::{template_fingerprint, QueryTemplate};
pub use transform::{classify_transformation, is_covered_by, local_transformations, TransformKind};
