//! Local/global transformation classification and plan coverage —
//! Definitions 1–4 of the paper.

use crate::join_tree::JoinTree;
use crate::physical::{JoinAlgo, PhysicalPlan};
use reopt_common::FxHashSet;
use reopt_common::RelSet;

/// Relationship between two join trees of the same query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransformKind {
    /// Identical trees (same ordered joins) — also "structurally
    /// equivalent" in the sense of Definition 3.
    Identical,
    /// Local transformation: same *unordered* logical joins
    /// (Definition 1) but not identical.
    Local,
    /// Global transformation: different unordered logical joins.
    Global,
}

/// Classify `next` relative to `prev`.
///
/// Note the paper's convention that a tree is a local transformation of
/// itself; [`TransformKind::Identical`] refines that case so Algorithm 1's
/// termination test (P_i = P_{i-1}) is expressible with the same machinery.
pub fn classify_transformation(prev: &JoinTree, next: &JoinTree) -> TransformKind {
    if prev.ordered_joins() == next.ordered_joins() {
        TransformKind::Identical
    } else if prev.join_sets() == next.join_sets() {
        TransformKind::Local
    } else {
        TransformKind::Global
    }
}

/// Definition 2: is `plan` covered by `plans`, i.e. is every unordered
/// join of `plan` contained in the union of the others' joins?
///
/// When this holds for the optimizer's newest plan, sampling-based
/// validation adds nothing new to Γ and Algorithm 1 terminates in the next
/// round (Theorem 1).
pub fn is_covered_by(plan: &JoinTree, plans: &[&JoinTree]) -> bool {
    let mut covered: FxHashSet<RelSet> = FxHashSet::default();
    for p in plans {
        covered.extend(p.join_sets());
    }
    plan.join_sets().iter().all(|s| covered.contains(s))
}

/// Enumerate local transformations of a physical plan (Definition 1 over
/// plans): every combination of operand swaps at the join nodes, plus
/// single-node physical-operator changes. Used by the Theorem 6 check —
/// the re-optimized plan must be no costlier than any of these under the
/// final Γ.
///
/// Operand swaps compose (2^joins variants); operator substitutions are
/// applied one node at a time to keep the enumeration linear. Index-nested
/// joins are not *swapped* (the swapped orientation requires the new inner
/// to be an indexed base scan, which is not generally executable), but
/// they *are* substituted by hash/merge/nested-loop variants — their
/// marker inner scan executes as an ordinary filtered scan.
pub fn local_transformations(plan: &PhysicalPlan) -> Vec<PhysicalPlan> {
    let mut out = Vec::new();
    // 1. All operand-swap combinations.
    let swappable = collect_swappable(plan);
    let n = swappable.len().min(12); // cap the 2^n enumeration defensively
    for mask in 1u32..(1u32 << n) {
        let mut idx = 0;
        out.push(swap_by_mask(plan, mask, &mut idx));
    }
    // 2. Single-node operator substitutions (on the original orientation).
    let join_count = plan.num_joins();
    for node in 0..join_count {
        for algo in [JoinAlgo::Hash, JoinAlgo::Merge, JoinAlgo::NestedLoop] {
            let mut idx = 0;
            let candidate = substitute_algo(plan, node, algo, &mut idx);
            if !candidate.same_structure(plan) {
                out.push(candidate);
            }
        }
    }
    out
}

/// Count swappable join nodes (pre-order), excluding index-nested joins.
fn collect_swappable(plan: &PhysicalPlan) -> Vec<()> {
    let mut v = Vec::new();
    plan.visit(&mut |n| {
        if let PhysicalPlan::Join { algo, .. } = n {
            if *algo != JoinAlgo::IndexNested {
                v.push(());
            }
        }
    });
    v
}

fn swap_by_mask(plan: &PhysicalPlan, mask: u32, idx: &mut u32) -> PhysicalPlan {
    match plan {
        PhysicalPlan::Scan { .. } => plan.clone(),
        PhysicalPlan::Join {
            algo,
            left,
            right,
            keys,
            info,
        } => {
            let l = swap_by_mask(left, mask, idx);
            let r = swap_by_mask(right, mask, idx);
            let swap_here = if *algo != JoinAlgo::IndexNested {
                let bit = *idx;
                *idx += 1;
                bit < 12 && mask & (1 << bit) != 0
            } else {
                false
            };
            if swap_here {
                PhysicalPlan::Join {
                    algo: *algo,
                    left: Box::new(r),
                    right: Box::new(l),
                    keys: keys.iter().map(|(a, b)| (*b, *a)).collect(),
                    info: *info,
                }
            } else {
                PhysicalPlan::Join {
                    algo: *algo,
                    left: Box::new(l),
                    right: Box::new(r),
                    keys: keys.clone(),
                    info: *info,
                }
            }
        }
    }
}

fn substitute_algo(
    plan: &PhysicalPlan,
    target: usize,
    new_algo: JoinAlgo,
    idx: &mut usize,
) -> PhysicalPlan {
    match plan {
        PhysicalPlan::Scan { .. } => plan.clone(),
        PhysicalPlan::Join {
            algo,
            left,
            right,
            keys,
            info,
        } => {
            let here = *idx;
            *idx += 1;
            let l = substitute_algo(left, target, new_algo, idx);
            let r = substitute_algo(right, target, new_algo, idx);
            let algo_out = if here == target { new_algo } else { *algo };
            PhysicalPlan::Join {
                algo: algo_out,
                left: Box::new(l),
                right: Box::new(r),
                keys: keys.clone(),
                info: *info,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_common::RelId;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    fn leaf(i: u32) -> JoinTree {
        JoinTree::leaf(r(i))
    }

    #[test]
    fn identical_trees() {
        let t = JoinTree::left_deep(&[r(0), r(1), r(2)]).unwrap();
        assert_eq!(
            classify_transformation(&t, &t.clone()),
            TransformKind::Identical
        );
    }

    #[test]
    fn commuted_operands_are_local() {
        // A ⋈ B vs B ⋈ A (the paper's explicit example under Definition 1).
        let ab = JoinTree::join(leaf(0), leaf(1));
        let ba = JoinTree::join(leaf(1), leaf(0));
        assert_eq!(classify_transformation(&ab, &ba), TransformKind::Local);
    }

    #[test]
    fn fig1_classifications() {
        let t1 = JoinTree::left_deep(&[r(0), r(1), r(2), r(3)]).unwrap();
        let t1p = JoinTree::join(
            JoinTree::join(leaf(2), JoinTree::join(leaf(0), leaf(1))),
            leaf(3),
        );
        let t2 = JoinTree::join(
            JoinTree::join(leaf(0), leaf(1)),
            JoinTree::join(leaf(2), leaf(3)),
        );
        let t2p = JoinTree::join(
            JoinTree::join(leaf(2), leaf(3)),
            JoinTree::join(leaf(0), leaf(1)),
        );
        assert_eq!(classify_transformation(&t1, &t1p), TransformKind::Local);
        assert_eq!(classify_transformation(&t2, &t2p), TransformKind::Local);
        assert_eq!(classify_transformation(&t1, &t2), TransformKind::Global);
        assert_eq!(classify_transformation(&t1p, &t2p), TransformKind::Global);
    }

    #[test]
    fn coverage_by_own_transformations() {
        // Any plan is covered by a set containing a local transformation
        // of it (Corollary 2's premise).
        let t2 = JoinTree::join(
            JoinTree::join(leaf(0), leaf(1)),
            JoinTree::join(leaf(2), leaf(3)),
        );
        let t2p = JoinTree::join(
            JoinTree::join(leaf(2), leaf(3)),
            JoinTree::join(leaf(0), leaf(1)),
        );
        assert!(is_covered_by(&t2p, &[&t2]));
        assert!(is_covered_by(&t2, &[&t2]));
    }

    #[test]
    fn coverage_via_union_of_plans() {
        // Example 1's scenario: T2's join C⋈D is not covered by T1 alone…
        let t1 = JoinTree::left_deep(&[r(0), r(1), r(2), r(3)]).unwrap();
        let t2 = JoinTree::join(
            JoinTree::join(leaf(0), leaf(1)),
            JoinTree::join(leaf(2), leaf(3)),
        );
        assert!(!is_covered_by(&t2, &[&t1]));
        // …but the union {T1, T2} covers a tree mixing their joins.
        let t3 = JoinTree::join(
            JoinTree::join(leaf(2), leaf(3)),
            JoinTree::join(leaf(1), leaf(0)),
        );
        assert!(is_covered_by(&t3, &[&t1, &t2]));
    }

    #[test]
    fn local_transformations_are_local_and_distinct() {
        use crate::physical::{AccessPath, PlanNodeInfo};
        use crate::query::ColRef;
        use reopt_common::{ColId, TableId};

        let scan = |rel: u32| PhysicalPlan::Scan {
            rel: RelId::new(rel),
            table: TableId::new(rel),
            access: AccessPath::SeqScan,
            info: PlanNodeInfo::default(),
        };
        let key = |a: u32, b: u32| {
            (
                ColRef::new(RelId::new(a), ColId::new(0)),
                ColRef::new(RelId::new(b), ColId::new(0)),
            )
        };
        let plan = PhysicalPlan::Join {
            algo: JoinAlgo::Hash,
            left: Box::new(PhysicalPlan::Join {
                algo: JoinAlgo::Merge,
                left: Box::new(scan(0)),
                right: Box::new(scan(1)),
                keys: vec![key(0, 1)],
                info: PlanNodeInfo::default(),
            }),
            right: Box::new(scan(2)),
            keys: vec![key(1, 2)],
            info: PlanNodeInfo::default(),
        };
        let variants = local_transformations(&plan);
        // 2 swappable joins -> 3 swap variants; + operator substitutions.
        assert!(variants.len() >= 3 + 2, "got {}", variants.len());
        let base_sets = plan.logical_tree().join_sets();
        for v in &variants {
            // Every variant is a local transformation (or identical tree
            // with a different operator).
            assert_eq!(v.logical_tree().join_sets(), base_sets);
            assert!(!v.same_structure(&plan), "variant equals original");
        }
        // All variants structurally distinct from each other.
        let mut prints: Vec<u64> = variants.iter().map(|v| v.fingerprint()).collect();
        prints.sort_unstable();
        prints.dedup();
        assert_eq!(prints.len(), variants.len());
    }

    #[test]
    fn index_nested_joins_substituted_but_not_swapped() {
        use crate::physical::{AccessPath, PlanNodeInfo};
        use crate::query::ColRef;
        use reopt_common::{ColId, TableId};
        let scan = |rel: u32| PhysicalPlan::Scan {
            rel: RelId::new(rel),
            table: TableId::new(rel),
            access: AccessPath::SeqScan,
            info: PlanNodeInfo::default(),
        };
        let plan = PhysicalPlan::Join {
            algo: JoinAlgo::IndexNested,
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            keys: vec![(
                ColRef::new(RelId::new(0), ColId::new(0)),
                ColRef::new(RelId::new(1), ColId::new(0)),
            )],
            info: PlanNodeInfo::default(),
        };
        let variants = local_transformations(&plan);
        // No swap variants; three operator substitutions.
        assert_eq!(variants.len(), 3);
        for v in &variants {
            // Operand order unchanged (never swapped)...
            assert_eq!(
                v.logical_tree().ordered_joins(),
                plan.logical_tree().ordered_joins()
            );
            // ...and the algorithm is no longer IndexNested.
            if let PhysicalPlan::Join { algo, .. } = v {
                assert_ne!(*algo, JoinAlgo::IndexNested);
            }
        }
    }

    #[test]
    fn coverage_with_empty_set_fails_for_joins() {
        let t = JoinTree::join(leaf(0), leaf(1));
        assert!(!is_covered_by(&t, &[]));
        // A bare leaf has no joins, so it is vacuously covered.
        let l = leaf(0);
        assert!(is_covered_by(&l, &[]));
    }
}
