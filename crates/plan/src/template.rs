//! Query *template* fingerprints — the plan-cache key of the serving
//! layer.
//!
//! A production service sees the same query *shape* over and over with
//! different constants: `σ_{a=?}(R) ⋈ S ⋈ T` arrives once per user with a
//! fresh literal each time. Re-optimizing every arrival from scratch wastes
//! the sampling budget the paper works hard to keep small; caching the
//! final plan per *template* amortizes one re-optimization across every
//! instance of the shape (the same bet PostgreSQL's generic plans and the
//! plan-stitch/Perron-et-al. line of work make — see PAPERS.md).
//!
//! [`QueryTemplate`] is the canonical normal form: relation list, local
//! predicate *shapes* (relation, column, operator — literals parameterized
//! out), the join edge set in canonical orientation, and the aggregate
//! shape. [`template_fingerprint`] collapses it to 64 bits with the same
//! `fx_mix` chain idiom the physical-plan fingerprint uses. Two queries
//! that differ only in their literal constants — or in the order/
//! orientation in which their join predicates were added — produce the
//! same fingerprint; distinct shapes collide with probability ≈ 2⁻⁶⁴
//! (property-tested in `tests/proptest_template.rs`).

use crate::expr::CmpOp;
use crate::query::Query;
use reopt_common::hash::fx_mix;
use reopt_common::TableId;

/// The canonical, literal-free normal form of a query's shape.
///
/// Equality on `QueryTemplate` is the ground truth the 64-bit
/// [`fingerprint`](QueryTemplate::fingerprint) approximates: equal
/// templates always hash equal; unequal templates hash equal only on a
/// 64-bit collision.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryTemplate {
    /// Base table of each relation occurrence, in `RelId` order.
    relations: Vec<TableId>,
    /// Local predicate shapes `(rel, col, op)`, literals dropped, sorted.
    /// Multiplicity is preserved: two filters on the same column are a
    /// different shape than one.
    predicates: Vec<(u32, u32, u8)>,
    /// Join edges `(left_rel, left_col, right_rel, right_col)` in canonical
    /// orientation, sorted and deduplicated.
    joins: Vec<(u32, u32, u32, u32)>,
    /// Aggregate grouping columns `(rel, col)`, sorted (GROUP BY order is
    /// semantically irrelevant).
    group_by: Vec<(u32, u32)>,
    /// Aggregate expressions `(func, input)` in output order — projection
    /// order is part of the query's meaning, so it stays significant.
    aggs: Vec<(u8, Option<(u32, u32)>)>,
}

fn op_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
        CmpOp::Between => 6,
    }
}

impl QueryTemplate {
    /// Normalize `query` into its template.
    pub fn of(query: &Query) -> Self {
        let relations = query.relations.clone();
        let mut predicates: Vec<(u32, u32, u8)> = query
            .local
            .iter()
            .flatten()
            .map(|p| (p.rel.0, p.col.0, op_tag(p.op)))
            .collect();
        predicates.sort_unstable();
        // JoinPredicate is already canonically oriented (smaller RelId on
        // the left); sorting + dedup additionally erases insertion order
        // and duplicates from hand-built queries.
        let mut joins: Vec<(u32, u32, u32, u32)> = query
            .joins
            .iter()
            .map(|j| (j.left_rel.0, j.left_col.0, j.right_rel.0, j.right_col.0))
            .collect();
        joins.sort_unstable();
        joins.dedup();
        let (group_by, aggs) = match &query.aggregate {
            Some(spec) => {
                let mut gb: Vec<(u32, u32)> =
                    spec.group_by.iter().map(|c| (c.rel.0, c.col.0)).collect();
                gb.sort_unstable();
                let aggs = spec
                    .aggs
                    .iter()
                    .map(|a| {
                        let func = match a.func {
                            crate::query::AggFunc::Count => 0u8,
                            crate::query::AggFunc::Sum => 1,
                            crate::query::AggFunc::Min => 2,
                            crate::query::AggFunc::Max => 3,
                            crate::query::AggFunc::Avg => 4,
                        };
                        (func, a.input.map(|c| (c.rel.0, c.col.0)))
                    })
                    .collect();
                (gb, aggs)
            }
            None => (Vec::new(), Vec::new()),
        };
        QueryTemplate {
            relations,
            predicates,
            joins,
            group_by,
            aggs,
        }
    }

    /// Number of relation occurrences in the templated query.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// The set of base tables the templated query touches, sorted and
    /// deduplicated — the serving layer's plan cache indexes entries by
    /// this set so drift in one table can evict exactly the plans that
    /// read it.
    pub fn base_tables(&self) -> Vec<TableId> {
        let mut tables = self.relations.clone();
        tables.sort_unstable();
        tables.dedup();
        tables
    }

    /// Number of (distinct) join edges.
    pub fn num_joins(&self) -> usize {
        self.joins.len()
    }

    /// 64-bit fingerprint of the template, consistent with template
    /// equality. Section tags separate the variable-length parts so, e.g.,
    /// a predicate list ending where a join list begins cannot alias a
    /// different split of the same words.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fx_mix(0x7e3a_917b, self.relations.len() as u64);
        for t in &self.relations {
            h = fx_mix(h, t.0 as u64);
        }
        h = fx_mix(h, 0xa001 ^ self.predicates.len() as u64);
        for &(rel, col, op) in &self.predicates {
            h = fx_mix(h, ((rel as u64) << 32) | col as u64);
            h = fx_mix(h, op as u64);
        }
        h = fx_mix(h, 0xa002 ^ self.joins.len() as u64);
        for &(lr, lc, rr, rc) in &self.joins {
            h = fx_mix(h, ((lr as u64) << 32) | lc as u64);
            h = fx_mix(h, ((rr as u64) << 32) | rc as u64);
        }
        h = fx_mix(h, 0xa003 ^ self.group_by.len() as u64);
        for &(rel, col) in &self.group_by {
            h = fx_mix(h, ((rel as u64) << 32) | col as u64);
        }
        h = fx_mix(h, 0xa004 ^ self.aggs.len() as u64);
        for &(func, input) in &self.aggs {
            h = fx_mix(h, func as u64);
            h = fx_mix(
                h,
                match input {
                    Some((rel, col)) => ((rel as u64) << 32) | col as u64,
                    None => u64::MAX,
                },
            );
        }
        h
    }
}

/// Fingerprint of `query`'s template — shorthand for
/// `QueryTemplate::of(query).fingerprint()`.
pub fn template_fingerprint(query: &Query) -> u64 {
    QueryTemplate::of(query).fingerprint()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{AggExpr, AggSpec, ColRef, QueryBuilder};
    use crate::Predicate;
    use reopt_common::{ColId, TableId};

    fn chain(consts: &[i64]) -> Query {
        let mut qb = QueryBuilder::new();
        let rels: Vec<_> = (0..consts.len())
            .map(|i| qb.add_relation(TableId::from(i)))
            .collect();
        for (i, &r) in rels.iter().enumerate() {
            qb.add_predicate(Predicate::eq(r, ColId::new(0), consts[i]));
        }
        for w in rels.windows(2) {
            qb.add_join(
                ColRef::new(w[0], ColId::new(1)),
                ColRef::new(w[1], ColId::new(1)),
            );
        }
        qb.build()
    }

    #[test]
    fn literal_substitution_is_invariant() {
        let a = chain(&[0, 0, 0, 1]);
        let b = chain(&[7, -3, 42, 9]);
        assert_eq!(QueryTemplate::of(&a), QueryTemplate::of(&b));
        assert_eq!(template_fingerprint(&a), template_fingerprint(&b));
    }

    #[test]
    fn join_commutation_and_insertion_order_are_invariant() {
        let mk = |flip: bool| {
            let mut qb = QueryBuilder::new();
            let a = qb.add_relation(TableId::new(0));
            let b = qb.add_relation(TableId::new(1));
            let c = qb.add_relation(TableId::new(2));
            let (e1, e2) = (
                (ColRef::new(a, ColId::new(1)), ColRef::new(b, ColId::new(1))),
                (ColRef::new(b, ColId::new(1)), ColRef::new(c, ColId::new(1))),
            );
            if flip {
                // Reversed insertion order and commuted operands.
                qb.add_join(e2.1, e2.0);
                qb.add_join(e1.1, e1.0);
            } else {
                qb.add_join(e1.0, e1.1);
                qb.add_join(e2.0, e2.1);
            }
            qb.build()
        };
        let (a, b) = (mk(false), mk(true));
        assert_eq!(QueryTemplate::of(&a), QueryTemplate::of(&b));
        assert_eq!(template_fingerprint(&a), template_fingerprint(&b));
    }

    #[test]
    fn shape_changes_change_the_fingerprint() {
        let base = chain(&[0, 0, 0]);
        // Different operator on one predicate.
        let mut qb = QueryBuilder::new();
        let rels: Vec<_> = (0..3usize)
            .map(|i| qb.add_relation(TableId::from(i)))
            .collect();
        qb.add_predicate(Predicate::lt(rels[0], ColId::new(0), 0i64));
        qb.add_predicate(Predicate::eq(rels[1], ColId::new(0), 0i64));
        qb.add_predicate(Predicate::eq(rels[2], ColId::new(0), 0i64));
        for w in rels.windows(2) {
            qb.add_join(
                ColRef::new(w[0], ColId::new(1)),
                ColRef::new(w[1], ColId::new(1)),
            );
        }
        let diff_op = qb.build();
        assert_ne!(template_fingerprint(&base), template_fingerprint(&diff_op));

        // Fewer relations.
        assert_ne!(
            template_fingerprint(&base),
            template_fingerprint(&chain(&[0, 0]))
        );

        // Different base table under one occurrence.
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(TableId::new(0));
        let b = qb.add_relation(TableId::new(9));
        let c = qb.add_relation(TableId::new(2));
        for (i, &r) in [a, b, c].iter().enumerate() {
            let _ = i;
            qb.add_predicate(Predicate::eq(r, ColId::new(0), 0i64));
        }
        qb.add_join(ColRef::new(a, ColId::new(1)), ColRef::new(b, ColId::new(1)));
        qb.add_join(ColRef::new(b, ColId::new(1)), ColRef::new(c, ColId::new(1)));
        assert_ne!(
            template_fingerprint(&base),
            template_fingerprint(&qb.build())
        );
    }

    #[test]
    fn predicate_multiplicity_is_significant() {
        let single = chain(&[0, 0]);
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(TableId::new(0));
        let b = qb.add_relation(TableId::new(1));
        qb.add_predicate(Predicate::eq(a, ColId::new(0), 0i64));
        qb.add_predicate(Predicate::eq(a, ColId::new(0), 5i64));
        qb.add_predicate(Predicate::eq(b, ColId::new(0), 0i64));
        qb.add_join(ColRef::new(a, ColId::new(1)), ColRef::new(b, ColId::new(1)));
        let double = qb.build();
        assert_ne!(template_fingerprint(&single), template_fingerprint(&double));
    }

    #[test]
    fn aggregate_shape_is_part_of_the_template() {
        let plain = chain(&[0, 0]);
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(TableId::new(0));
        let b = qb.add_relation(TableId::new(1));
        qb.add_predicate(Predicate::eq(a, ColId::new(0), 0i64));
        qb.add_predicate(Predicate::eq(b, ColId::new(0), 0i64));
        qb.add_join(ColRef::new(a, ColId::new(1)), ColRef::new(b, ColId::new(1)));
        qb.aggregate(AggSpec {
            group_by: vec![ColRef::new(a, ColId::new(1))],
            aggs: vec![AggExpr::count_star()],
        });
        let agg = qb.build();
        assert_ne!(template_fingerprint(&plain), template_fingerprint(&agg));

        // GROUP BY column order is *not* significant.
        let mk = |swap: bool| {
            let mut qb = QueryBuilder::new();
            let a = qb.add_relation(TableId::new(0));
            let b = qb.add_relation(TableId::new(1));
            qb.add_join(ColRef::new(a, ColId::new(1)), ColRef::new(b, ColId::new(1)));
            let (g1, g2) = (ColRef::new(a, ColId::new(0)), ColRef::new(b, ColId::new(0)));
            qb.aggregate(AggSpec {
                group_by: if swap { vec![g2, g1] } else { vec![g1, g2] },
                aggs: vec![AggExpr::count_star()],
            });
            qb.build()
        };
        assert_eq!(
            template_fingerprint(&mk(false)),
            template_fingerprint(&mk(true))
        );
    }

    #[test]
    fn template_accessors() {
        let t = QueryTemplate::of(&chain(&[0, 0, 0]));
        assert_eq!(t.num_relations(), 3);
        assert_eq!(t.num_joins(), 2);
        assert_eq!(
            t.base_tables(),
            vec![TableId::new(0), TableId::new(1), TableId::new(2)]
        );
    }

    #[test]
    fn base_tables_dedup_self_joins() {
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(TableId::new(5));
        let b = qb.add_relation(TableId::new(5)); // self-join occurrence
        let c = qb.add_relation(TableId::new(2));
        qb.add_join(ColRef::new(a, ColId::new(1)), ColRef::new(b, ColId::new(1)));
        qb.add_join(ColRef::new(b, ColId::new(1)), ColRef::new(c, ColId::new(1)));
        let t = QueryTemplate::of(&qb.build());
        assert_eq!(t.base_tables(), vec![TableId::new(2), TableId::new(5)]);
    }

    #[test]
    fn duplicate_edges_collapse() {
        // A query built without the builder's dedup still normalizes.
        let mut q = chain(&[0, 0]);
        let dup = q.joins[0];
        q.joins.push(dup);
        assert_eq!(
            template_fingerprint(&q),
            template_fingerprint(&chain(&[0, 0]))
        );
        assert_eq!(QueryTemplate::of(&q).num_joins(), 1);
    }

    #[test]
    fn rel_id_identity_is_significant() {
        // r0 ⋈ r1 over (t0, t1) vs (t1, t0): different templates — the
        // occurrence→table binding matters, not just the table multiset.
        let mk = |swap: bool| {
            let mut qb = QueryBuilder::new();
            let (ta, tb) = if swap { (1, 0) } else { (0, 1) };
            let a = qb.add_relation(TableId::new(ta));
            let b = qb.add_relation(TableId::new(tb));
            qb.add_join(ColRef::new(a, ColId::new(1)), ColRef::new(b, ColId::new(1)));
            qb.build()
        };
        assert_ne!(
            template_fingerprint(&mk(false)),
            template_fingerprint(&mk(true))
        );
    }
}
