//! SQL-flavoured rendering of queries — for logs, examples and debugging.
//!
//! The engine has no SQL parser (queries are built programmatically), but a
//! readable SQL-ish rendering makes experiment output self-describing:
//! every figure harness row can be traced back to a recognizable query.

use crate::expr::CmpOp;
use crate::query::{AggFunc, Query};
use reopt_common::RelId;
use reopt_storage::Database;

/// Render `query` as SQL-flavoured text against `db`'s catalog names.
///
/// Relation occurrences are aliased `t0, t1, …` in `RelId` order, so
/// self-joins are unambiguous. The output is for humans; it is not parsed
/// back.
pub fn to_sql(query: &Query, db: &Database) -> String {
    let alias = |r: RelId| format!("t{}", r.0);
    let col_name = |r: RelId, c: reopt_common::ColId| -> String {
        query
            .table_of(r)
            .ok()
            .and_then(|t| db.table(t).ok())
            .and_then(|t| t.schema().column(c).ok().map(|d| d.name.clone()))
            .unwrap_or_else(|| format!("{c}"))
    };

    let mut out = String::new();
    out.push_str("SELECT ");
    match &query.aggregate {
        Some(agg) => {
            let mut items: Vec<String> = agg
                .group_by
                .iter()
                .map(|g| format!("{}.{}", alias(g.rel), col_name(g.rel, g.col)))
                .collect();
            for a in &agg.aggs {
                let f = match a.func {
                    AggFunc::Count => "COUNT",
                    AggFunc::Sum => "SUM",
                    AggFunc::Min => "MIN",
                    AggFunc::Max => "MAX",
                    AggFunc::Avg => "AVG",
                };
                match &a.input {
                    Some(c) => {
                        items.push(format!("{f}({}.{})", alias(c.rel), col_name(c.rel, c.col)))
                    }
                    None => items.push(format!("{f}(*)")),
                }
            }
            out.push_str(&items.join(", "));
        }
        None => out.push('*'),
    }

    out.push_str("\nFROM ");
    let froms: Vec<String> = (0..query.num_relations())
        .map(|i| {
            let r = RelId::from(i);
            let name = query
                .table_of(r)
                .ok()
                .and_then(|t| db.table(t).ok().map(|t| t.name().to_string()))
                .unwrap_or_else(|| "?".into());
            format!("{name} AS {}", alias(r))
        })
        .collect();
    out.push_str(&froms.join(", "));

    let mut conds: Vec<String> = Vec::new();
    for j in &query.joins {
        conds.push(format!(
            "{}.{} = {}.{}",
            alias(j.left_rel),
            col_name(j.left_rel, j.left_col),
            alias(j.right_rel),
            col_name(j.right_rel, j.right_col)
        ));
    }
    for i in 0..query.num_relations() {
        for p in query.local_predicates(RelId::from(i)) {
            let lhs = format!("{}.{}", alias(p.rel), col_name(p.rel, p.col));
            match p.op {
                CmpOp::Between => {
                    conds.push(format!(
                        "{lhs} BETWEEN {} AND {}",
                        render_value(&p.value),
                        p.value2.as_ref().map(render_value).unwrap_or_default()
                    ));
                }
                op => conds.push(format!("{lhs} {op} {}", render_value(&p.value))),
            }
        }
    }
    if !conds.is_empty() {
        out.push_str("\nWHERE ");
        out.push_str(&conds.join("\n  AND "));
    }
    if let Some(agg) = &query.aggregate {
        if !agg.group_by.is_empty() {
            out.push_str("\nGROUP BY ");
            let keys: Vec<String> = agg
                .group_by
                .iter()
                .map(|g| format!("{}.{}", alias(g.rel), col_name(g.rel, g.col)))
                .collect();
            out.push_str(&keys.join(", "));
        }
    }
    out.push(';');
    out
}

fn render_value(v: &reopt_storage::Value) -> String {
    match v {
        reopt_storage::Value::Str(s) => format!("'{s}'"),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{AggExpr, AggSpec, ColRef, QueryBuilder};
    use crate::Predicate;
    use reopt_common::ColId;
    use reopt_storage::{Column, ColumnDef, LogicalType, Table, TableSchema};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("o_orderkey", LogicalType::Int),
                ColumnDef::new("o_orderdate", LogicalType::Date),
            ])?;
            Table::new(
                id,
                "orders",
                schema,
                vec![
                    Column::from_i64(LogicalType::Int, vec![1]),
                    Column::from_i64(LogicalType::Date, vec![1]),
                ],
            )
        })
        .unwrap();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("l_orderkey", LogicalType::Int),
                ColumnDef::new("l_shipmode", LogicalType::Dict),
            ])?;
            Table::new(
                id,
                "lineitem",
                schema,
                vec![
                    Column::from_i64(LogicalType::Int, vec![1]),
                    Column::from_strings(&["AIR"]),
                ],
            )
        })
        .unwrap();
        db
    }

    #[test]
    fn renders_joins_filters_and_aggregates() {
        let db = db();
        let mut qb = QueryBuilder::new();
        let o = qb.add_relation(db.table_id("orders").unwrap());
        let l = qb.add_relation(db.table_id("lineitem").unwrap());
        qb.add_join(ColRef::new(o, ColId::new(0)), ColRef::new(l, ColId::new(0)));
        qb.add_predicate(Predicate::between(o, ColId::new(1), 10i64, 99i64));
        qb.add_predicate(Predicate::eq(l, ColId::new(1), "AIR"));
        qb.aggregate(AggSpec {
            group_by: vec![ColRef::new(o, ColId::new(0))],
            aggs: vec![AggExpr::count_star()],
        });
        let sql = to_sql(&qb.build(), &db);
        assert!(sql.contains("SELECT t0.o_orderkey, COUNT(*)"), "{sql}");
        assert!(sql.contains("FROM orders AS t0, lineitem AS t1"), "{sql}");
        assert!(sql.contains("t0.o_orderkey = t1.l_orderkey"), "{sql}");
        assert!(sql.contains("t0.o_orderdate BETWEEN 10 AND 99"), "{sql}");
        assert!(sql.contains("t1.l_shipmode = 'AIR'"), "{sql}");
        assert!(sql.contains("GROUP BY t0.o_orderkey"), "{sql}");
        assert!(sql.ends_with(';'), "{sql}");
    }

    /// Golden output: the exact rendering of a 3-relation (self-)join +
    /// aggregate query. `to_sql` silently falls back to positional column
    /// names for anything it cannot resolve, so substring checks alone
    /// would let the format drift unnoticed; this pins every byte.
    #[test]
    fn golden_multi_join_aggregate_rendering() {
        let db = db();
        let mut qb = QueryBuilder::new();
        let o = qb.add_relation(db.table_id("orders").unwrap());
        let l = qb.add_relation(db.table_id("lineitem").unwrap());
        let l2 = qb.add_relation(db.table_id("lineitem").unwrap());
        qb.add_join(ColRef::new(o, ColId::new(0)), ColRef::new(l, ColId::new(0)));
        qb.add_join(
            ColRef::new(l, ColId::new(0)),
            ColRef::new(l2, ColId::new(0)),
        );
        qb.add_predicate(Predicate::between(o, ColId::new(1), 10i64, 99i64));
        qb.add_predicate(Predicate::eq(l, ColId::new(1), "AIR"));
        qb.add_predicate(Predicate::ne(l2, ColId::new(1), "MAIL"));
        qb.aggregate(AggSpec {
            group_by: vec![ColRef::new(o, ColId::new(0))],
            aggs: vec![
                AggExpr::count_star(),
                AggExpr::max(ColRef::new(l, ColId::new(0))),
            ],
        });
        let sql = to_sql(&qb.build(), &db);
        let expected = "\
SELECT t0.o_orderkey, COUNT(*), MAX(t1.l_orderkey)
FROM orders AS t0, lineitem AS t1, lineitem AS t2
WHERE t0.o_orderkey = t1.l_orderkey
  AND t1.l_orderkey = t2.l_orderkey
  AND t0.o_orderdate BETWEEN 10 AND 99
  AND t1.l_shipmode = 'AIR'
  AND t2.l_shipmode <> 'MAIL'
GROUP BY t0.o_orderkey;";
        assert_eq!(sql, expected);
    }

    /// Golden output: the unknown-column fallback renders the positional
    /// name (`c9`) rather than erroring — pinned so the escape hatch
    /// can't silently change shape.
    #[test]
    fn golden_unknown_column_fallback_rendering() {
        let db = db();
        let mut qb = QueryBuilder::new();
        let o = qb.add_relation(db.table_id("orders").unwrap());
        qb.add_predicate(Predicate::eq(o, ColId::new(9), 1i64));
        let sql = to_sql(&qb.build(), &db);
        let expected = "\
SELECT *
FROM orders AS t0
WHERE t0.c9 = 1;";
        assert_eq!(sql, expected);
    }

    #[test]
    fn renders_select_star_without_aggregate() {
        let db = db();
        let mut qb = QueryBuilder::new();
        let _ = qb.add_relation(db.table_id("orders").unwrap());
        let sql = to_sql(&qb.build(), &db);
        assert!(sql.starts_with("SELECT *"), "{sql}");
        assert!(!sql.contains("WHERE"));
        assert!(!sql.contains("GROUP BY"));
    }

    #[test]
    fn self_joins_get_distinct_aliases() {
        let db = db();
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("orders").unwrap());
        let b = qb.add_relation(db.table_id("orders").unwrap());
        qb.add_join(ColRef::new(a, ColId::new(0)), ColRef::new(b, ColId::new(0)));
        let sql = to_sql(&qb.build(), &db);
        assert!(sql.contains("orders AS t0, orders AS t1"), "{sql}");
        assert!(sql.contains("t0.o_orderkey = t1.o_orderkey"), "{sql}");
    }
}
