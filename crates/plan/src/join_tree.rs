//! Logical join trees and the paper's representations of them.
//!
//! §3.1 represents a join tree as "the set of ordered logical joins
//! contained in P", e.g. `T2 = {A ⋈ B, C ⋈ D, A ⋈ B ⋈ C ⋈ D}`; Appendix E
//! encodes trees bottom-up/left-to-right (`code(T)`). Both views reduce to
//! looking at the *internal nodes* of the binary tree:
//!
//! * an **ordered** join is the pair `(rels(left child), rels(right child))`
//!   — sensitive to operand order, so `A ⋈ B ≠ B ⋈ A`;
//! * an **unordered** join is just `rels(node)` — the set of base relations
//!   the node covers (within one tree, node relation-sets are unique).
//!
//! Definition 1 (local vs global transformation) compares unordered join
//! sets; Definition 2 (coverage) asks whether every unordered join of one
//! tree appears among those of a set of trees.

use std::fmt;

use reopt_common::{RelId, RelSet};

/// A binary logical join tree over relation occurrences.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum JoinTree {
    /// A base relation occurrence.
    Leaf(RelId),
    /// A join of two subtrees (operand order is meaningful).
    Join(Box<JoinTree>, Box<JoinTree>),
}

impl JoinTree {
    /// Leaf constructor.
    pub fn leaf(rel: RelId) -> Self {
        JoinTree::Leaf(rel)
    }

    /// Join constructor.
    pub fn join(left: JoinTree, right: JoinTree) -> Self {
        JoinTree::Join(Box::new(left), Box::new(right))
    }

    /// Build a left-deep tree joining `rels` in the given order.
    pub fn left_deep(rels: &[RelId]) -> Option<Self> {
        let (&first, rest) = rels.split_first()?;
        let mut t = JoinTree::leaf(first);
        for &r in rest {
            t = JoinTree::join(t, JoinTree::leaf(r));
        }
        Some(t)
    }

    /// The set of base relations this tree covers.
    pub fn relset(&self) -> RelSet {
        match self {
            JoinTree::Leaf(r) => RelSet::single(*r),
            JoinTree::Join(l, r) => l.relset().union(r.relset()),
        }
    }

    /// Number of joins (internal nodes); a leaf has zero.
    pub fn num_joins(&self) -> usize {
        match self {
            JoinTree::Leaf(_) => 0,
            JoinTree::Join(l, r) => 1 + l.num_joins() + r.num_joins(),
        }
    }

    /// Whether the tree is left-deep (every right child is a leaf).
    pub fn is_left_deep(&self) -> bool {
        match self {
            JoinTree::Leaf(_) => true,
            JoinTree::Join(l, r) => matches!(**r, JoinTree::Leaf(_)) && l.is_left_deep(),
        }
    }

    /// The **ordered** joins of the tree: one `(left rels, right rels)`
    /// pair per internal node, bottom-up left-to-right.
    pub fn ordered_joins(&self) -> Vec<(RelSet, RelSet)> {
        let mut out = Vec::with_capacity(self.num_joins());
        self.collect_ordered(&mut out);
        out
    }

    fn collect_ordered(&self, out: &mut Vec<(RelSet, RelSet)>) -> RelSet {
        match self {
            JoinTree::Leaf(r) => RelSet::single(*r),
            JoinTree::Join(l, r) => {
                let ls = l.collect_ordered(out);
                let rs = r.collect_ordered(out);
                out.push((ls, rs));
                ls.union(rs)
            }
        }
    }

    /// The **unordered** joins of the tree: the relation set covered by
    /// each internal node, sorted ascending (by mask) for set comparison.
    /// This is the paper's `tree(P)` with order erased — the basis of
    /// Definitions 1 and 2.
    pub fn join_sets(&self) -> Vec<RelSet> {
        let mut out: Vec<RelSet> = self
            .ordered_joins()
            .into_iter()
            .map(|(l, r)| l.union(r))
            .collect();
        out.sort();
        out
    }

    /// Appendix E's `code(T)` encoding, with leaves named by relation index
    /// (e.g. `(r0r1, r2r0r1, ...)` — leaf order preserved within a join).
    pub fn encoding(&self) -> String {
        fn leaves(t: &JoinTree, out: &mut Vec<RelId>) {
            match t {
                JoinTree::Leaf(r) => out.push(*r),
                JoinTree::Join(l, r) => {
                    leaves(l, out);
                    leaves(r, out);
                }
            }
        }
        fn encode(t: &JoinTree, parts: &mut Vec<String>) {
            if let JoinTree::Join(l, r) = t {
                encode(l, parts);
                encode(r, parts);
                let mut ls = Vec::new();
                leaves(t, &mut ls);
                parts.push(
                    ls.iter()
                        .map(|r| format!("r{}", r.0))
                        .collect::<Vec<_>>()
                        .join(""),
                );
            }
        }
        let mut parts = Vec::new();
        encode(self, &mut parts);
        format!("({})", parts.join(","))
    }
}

impl fmt::Display for JoinTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinTree::Leaf(r) => write!(f, "{r}"),
            JoinTree::Join(l, r) => write!(f, "({l} ⋈ {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    /// The paper's Figure 1 trees over A=r0, B=r1, C=r2, D=r3.
    fn fig1() -> (JoinTree, JoinTree, JoinTree, JoinTree) {
        // T1 = ((A ⋈ B) ⋈ C) ⋈ D — left-deep.
        let t1 = JoinTree::left_deep(&[r(0), r(1), r(2), r(3)]).unwrap();
        // T1' = (C ⋈ (A ⋈ B)) ⋈ D.
        let t1p = JoinTree::join(
            JoinTree::join(
                JoinTree::leaf(r(2)),
                JoinTree::join(JoinTree::leaf(r(0)), JoinTree::leaf(r(1))),
            ),
            JoinTree::leaf(r(3)),
        );
        // T2 = (A ⋈ B) ⋈ (C ⋈ D) — bushy.
        let t2 = JoinTree::join(
            JoinTree::join(JoinTree::leaf(r(0)), JoinTree::leaf(r(1))),
            JoinTree::join(JoinTree::leaf(r(2)), JoinTree::leaf(r(3))),
        );
        // T2' = (C ⋈ D) ⋈ (A ⋈ B).
        let t2p = JoinTree::join(
            JoinTree::join(JoinTree::leaf(r(2)), JoinTree::leaf(r(3))),
            JoinTree::join(JoinTree::leaf(r(0)), JoinTree::leaf(r(1))),
        );
        (t1, t1p, t2, t2p)
    }

    #[test]
    fn relset_and_join_count() {
        let (t1, _, t2, _) = fig1();
        assert_eq!(t1.relset(), RelSet::first_n(4));
        assert_eq!(t2.relset(), RelSet::first_n(4));
        assert_eq!(t1.num_joins(), 3);
        assert_eq!(JoinTree::leaf(r(0)).num_joins(), 0);
    }

    #[test]
    fn left_deep_shape() {
        let (t1, t1p, t2, _) = fig1();
        assert!(t1.is_left_deep());
        assert!(!t2.is_left_deep());
        // T1' has C ⋈ (A ⋈ B): right child is not a leaf.
        assert!(!t1p.is_left_deep());
    }

    #[test]
    fn fig1_ordered_joins_distinguish_t1_t1p() {
        let (t1, t1p, _, _) = fig1();
        assert_ne!(t1.ordered_joins(), t1p.ordered_joins());
        // But their unordered join sets match: local transformations.
        assert_eq!(t1.join_sets(), t1p.join_sets());
    }

    #[test]
    fn fig1_t2_representation_matches_paper() {
        // The paper: T2 = {A⋈B, C⋈D, A⋈B⋈C⋈D}.
        let (_, _, t2, t2p) = fig1();
        let sets = t2.join_sets();
        let ab = RelSet::single(r(0)).with(r(1));
        let cd = RelSet::single(r(2)).with(r(3));
        let abcd = RelSet::first_n(4);
        let mut expected = vec![ab, cd, abcd];
        expected.sort();
        assert_eq!(sets, expected);
        // T2' is a local transformation of T2.
        assert_eq!(t2.join_sets(), t2p.join_sets());
        assert_ne!(t2.ordered_joins(), t2p.ordered_joins());
    }

    #[test]
    fn t1_vs_t2_are_global_transformations() {
        let (t1, _, t2, _) = fig1();
        assert_ne!(t1.join_sets(), t2.join_sets());
    }

    #[test]
    fn encoding_matches_appendix_e() {
        let (t1, t1p, t2, t2p) = fig1();
        // Appendix E example: T1 -> (AB, ABC, ABCD); T2 -> (AB, CD, ABCD).
        assert_eq!(t1.encoding(), "(r0r1,r0r1r2,r0r1r2r3)");
        assert_eq!(t2.encoding(), "(r0r1,r2r3,r0r1r2r3)");
        // T1' -> (AB, CAB, CABD); T2' -> (CD, AB, CDAB).
        assert_eq!(t1p.encoding(), "(r0r1,r2r0r1,r2r0r1r3)");
        assert_eq!(t2p.encoding(), "(r2r3,r0r1,r2r3r0r1)");
    }

    #[test]
    fn left_deep_builder() {
        assert!(JoinTree::left_deep(&[]).is_none());
        let single = JoinTree::left_deep(&[r(5)]).unwrap();
        assert_eq!(single, JoinTree::leaf(r(5)));
        let t = JoinTree::left_deep(&[r(1), r(0)]).unwrap();
        assert_eq!(t.encoding(), "(r1r0)");
    }

    #[test]
    fn display_renders_tree() {
        let (_, _, t2, _) = fig1();
        assert_eq!(t2.to_string(), "((r0 ⋈ r1) ⋈ (r2 ⋈ r3))");
    }
}
