//! Queries, the query builder, join graphs and aggregate specifications.

use std::fmt;

use crate::expr::{JoinPredicate, Predicate};
use reopt_common::relset::MAX_RELS;
use reopt_common::TableId;
use reopt_common::{ColId, Error, RelId, RelSet, Result};
use reopt_storage::{Database, LogicalType};

/// A reference to a column of a relation occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColRef {
    /// The relation occurrence.
    pub rel: RelId,
    /// The column within its table.
    pub col: ColId,
}

impl ColRef {
    /// Construct a column reference.
    pub fn new(rel: RelId, col: ColId) -> Self {
        ColRef { rel, col }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.rel, self.col)
    }
}

/// Aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)`.
    Count,
    /// `SUM(col)`.
    Sum,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
    /// `AVG(col)`.
    Avg,
}

/// One aggregate expression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggExpr {
    /// The function.
    pub func: AggFunc,
    /// Input column; `None` only for `COUNT(*)`.
    pub input: Option<ColRef>,
}

impl AggExpr {
    /// `COUNT(*)`.
    pub fn count_star() -> Self {
        AggExpr {
            func: AggFunc::Count,
            input: None,
        }
    }

    /// `SUM(rel.col)`.
    pub fn sum(c: ColRef) -> Self {
        AggExpr {
            func: AggFunc::Sum,
            input: Some(c),
        }
    }

    /// `MIN(rel.col)`.
    pub fn min(c: ColRef) -> Self {
        AggExpr {
            func: AggFunc::Min,
            input: Some(c),
        }
    }

    /// `MAX(rel.col)`.
    pub fn max(c: ColRef) -> Self {
        AggExpr {
            func: AggFunc::Max,
            input: Some(c),
        }
    }

    /// `AVG(rel.col)`.
    pub fn avg(c: ColRef) -> Self {
        AggExpr {
            func: AggFunc::Avg,
            input: Some(c),
        }
    }
}

/// Grouped aggregation applied on top of the join result.
///
/// The aggregate is *not* part of plan search — the paper's technique
/// targets the join order (§2), and the engine evaluates the aggregate as a
/// final pipeline stage on whatever join order was chosen.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AggSpec {
    /// Grouping columns (empty = a single global group).
    pub group_by: Vec<ColRef>,
    /// Aggregate expressions.
    pub aggs: Vec<AggExpr>,
}

/// A select–equijoin(–aggregate) query: `σ_F(R1 ⋈ … ⋈ RK)` with an
/// optional aggregate on top.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Base table of each relation occurrence, indexed by `RelId`.
    pub relations: Vec<TableId>,
    /// Local predicates, grouped by relation occurrence (`local[rel]`).
    pub local: Vec<Vec<Predicate>>,
    /// Equi-join predicates (canonical orientation, deduplicated).
    pub joins: Vec<JoinPredicate>,
    /// Optional aggregation applied after the joins.
    pub aggregate: Option<AggSpec>,
}

impl Query {
    /// Number of relation occurrences.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// The set of all relations of the query.
    pub fn all_rels(&self) -> RelSet {
        RelSet::first_n(self.relations.len())
    }

    /// Base table of relation `rel`.
    pub fn table_of(&self, rel: RelId) -> Result<TableId> {
        self.relations
            .get(rel.index())
            .copied()
            .ok_or_else(|| Error::not_found(format!("relation {rel}")))
    }

    /// Local predicates of relation `rel`.
    pub fn local_predicates(&self, rel: RelId) -> &[Predicate] {
        self.local.get(rel.index()).map_or(&[], |v| v.as_slice())
    }

    /// Build the join graph of this query.
    pub fn join_graph(&self) -> JoinGraph {
        JoinGraph::new(self.num_relations(), &self.joins)
    }

    /// Validate the query against a database: referenced tables/columns
    /// exist, range predicates only target ordered columns, the join graph
    /// is connected, and constants are type-compatible.
    pub fn validate(&self, db: &Database) -> Result<()> {
        if self.relations.is_empty() {
            return Err(Error::invalid("query has no relations"));
        }
        if self.relations.len() > MAX_RELS {
            return Err(Error::invalid(format!(
                "query has {} relations; the engine supports at most {MAX_RELS}",
                self.relations.len()
            )));
        }
        if self.local.len() != self.relations.len() {
            return Err(Error::internal(
                "local predicate buckets misaligned with relations",
            ));
        }
        for (i, &table) in self.relations.iter().enumerate() {
            let t = db.table(table)?;
            for p in &self.local[i] {
                if p.rel.index() != i {
                    return Err(Error::internal(format!(
                        "predicate {p} filed under relation r{i}"
                    )));
                }
                let def = t.schema().column(p.col)?;
                if p.op.needs_order() && !def.ty.is_ordered() {
                    return Err(Error::invalid(format!(
                        "range predicate {p} on unordered column `{}`",
                        def.name
                    )));
                }
                // Type-check the constants (encode_constant errors on
                // incompatible types).
                let col = t.column(p.col)?;
                col.encode_constant(&p.value)?;
                if let Some(v2) = &p.value2 {
                    col.encode_constant(v2)?;
                }
            }
        }
        for j in &self.joins {
            let lt = db.table(self.table_of(j.left_rel)?)?;
            let rt = db.table(self.table_of(j.right_rel)?)?;
            lt.schema().column(j.left_col)?;
            rt.schema().column(j.right_col)?;
            if j.left_rel == j.right_rel {
                return Err(Error::invalid(format!(
                    "join predicate {j} relates a relation to itself"
                )));
            }
            // Joining dict columns across different dictionaries would
            // compare unrelated codes.
            let ldef = lt.schema().column(j.left_col)?;
            let rdef = rt.schema().column(j.right_col)?;
            if (ldef.ty == LogicalType::Dict || rdef.ty == LogicalType::Dict)
                && self.table_of(j.left_rel)? != self.table_of(j.right_rel)?
            {
                return Err(Error::unsupported(format!(
                    "join {j} over dictionary columns of different tables"
                )));
            }
        }
        if self.num_relations() > 1 && !self.join_graph().is_connected() {
            return Err(Error::unsupported(
                "query's join graph is disconnected (cross products are not planned)",
            ));
        }
        if let Some(agg) = &self.aggregate {
            for c in agg
                .group_by
                .iter()
                .chain(agg.aggs.iter().filter_map(|a| a.input.as_ref()))
            {
                let t = db.table(self.table_of(c.rel)?)?;
                t.schema().column(c.col)?;
            }
            if agg.aggs.is_empty() && agg.group_by.is_empty() {
                return Err(Error::invalid("empty aggregate specification"));
            }
        }
        Ok(())
    }
}

/// Adjacency view of a query's join predicates.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    num_rels: usize,
    edges: Vec<JoinPredicate>,
    /// adjacency[rel] = indexes into `edges`.
    adjacency: Vec<Vec<usize>>,
}

impl JoinGraph {
    /// Build from the query's join predicates.
    pub fn new(num_rels: usize, joins: &[JoinPredicate]) -> Self {
        let mut adjacency = vec![Vec::new(); num_rels];
        for (i, j) in joins.iter().enumerate() {
            if j.left_rel.index() < num_rels && j.right_rel.index() < num_rels {
                adjacency[j.left_rel.index()].push(i);
                adjacency[j.right_rel.index()].push(i);
            }
        }
        JoinGraph {
            num_rels,
            edges: joins.to_vec(),
            adjacency,
        }
    }

    /// Number of relations.
    pub fn num_rels(&self) -> usize {
        self.num_rels
    }

    /// All edges.
    pub fn edges(&self) -> &[JoinPredicate] {
        &self.edges
    }

    /// Number of edges — the `M` of the paper's Appendix B analysis.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The join predicates connecting `left` to `right` (both directions).
    pub fn edges_between(&self, left: RelSet, right: RelSet) -> Vec<JoinPredicate> {
        self.edges
            .iter()
            .filter(|j| {
                (left.contains(j.left_rel) && right.contains(j.right_rel))
                    || (right.contains(j.left_rel) && left.contains(j.right_rel))
            })
            .copied()
            .collect()
    }

    /// All join predicates with both endpoints inside `set`.
    pub fn edges_within(&self, set: RelSet) -> Vec<JoinPredicate> {
        self.edges
            .iter()
            .filter(|j| set.contains(j.left_rel) && set.contains(j.right_rel))
            .copied()
            .collect()
    }

    /// Whether `left` and `right` are connected by at least one edge.
    pub fn connects(&self, left: RelSet, right: RelSet) -> bool {
        self.edges.iter().any(|j| {
            (left.contains(j.left_rel) && right.contains(j.right_rel))
                || (right.contains(j.left_rel) && left.contains(j.right_rel))
        })
    }

    /// Whether the sub-graph induced by `set` is connected.
    pub fn is_set_connected(&self, set: RelSet) -> bool {
        let Some(start) = set.min_rel() else {
            return true;
        };
        let mut seen = RelSet::single(start);
        let mut frontier = vec![start];
        while let Some(r) = frontier.pop() {
            for &ei in &self.adjacency[r.index()] {
                let j = &self.edges[ei];
                for other in [j.left_rel, j.right_rel] {
                    if set.contains(other) && !seen.contains(other) {
                        seen = seen.with(other);
                        frontier.push(other);
                    }
                }
            }
        }
        seen == set
    }

    /// Whether the whole join graph is connected.
    pub fn is_connected(&self) -> bool {
        self.is_set_connected(RelSet::first_n(self.num_rels))
    }

    /// Relations adjacent to `set` (connected by an edge but outside it).
    pub fn neighbors(&self, set: RelSet) -> RelSet {
        let mut out = RelSet::EMPTY;
        for r in set.iter() {
            for &ei in &self.adjacency[r.index()] {
                let j = &self.edges[ei];
                for other in [j.left_rel, j.right_rel] {
                    if !set.contains(other) {
                        out = out.with(other);
                    }
                }
            }
        }
        out
    }
}

/// Fluent builder for [`Query`].
#[derive(Debug, Default)]
pub struct QueryBuilder {
    relations: Vec<TableId>,
    local: Vec<Vec<Predicate>>,
    joins: Vec<JoinPredicate>,
    aggregate: Option<AggSpec>,
}

impl QueryBuilder {
    /// Start an empty query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a relation occurrence over `table`; returns its [`RelId`].
    pub fn add_relation(&mut self, table: TableId) -> RelId {
        let rel = RelId::from(self.relations.len());
        self.relations.push(table);
        self.local.push(Vec::new());
        rel
    }

    /// Add a local predicate.
    pub fn add_predicate(&mut self, p: Predicate) -> &mut Self {
        assert!(
            p.rel.index() < self.relations.len(),
            "predicate references unknown relation {}",
            p.rel
        );
        self.local[p.rel.index()].push(p);
        self
    }

    /// Add an equi-join predicate (deduplicated).
    pub fn add_join(&mut self, a: ColRef, b: ColRef) -> &mut Self {
        let j = JoinPredicate::new(a.rel, a.col, b.rel, b.col);
        if !self.joins.contains(&j) {
            self.joins.push(j);
        }
        self
    }

    /// Set the aggregate stage.
    pub fn aggregate(&mut self, spec: AggSpec) -> &mut Self {
        self.aggregate = Some(spec);
        self
    }

    /// Finish building.
    pub fn build(self) -> Query {
        Query {
            relations: self.relations,
            local: self.local,
            joins: self.joins,
            aggregate: self.aggregate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_storage::{Column, ColumnDef, Table, TableSchema};

    fn test_db() -> Database {
        let mut db = Database::new();
        for name in ["a", "b", "c"] {
            db.add_table_with(|id| {
                let schema = TableSchema::new(vec![
                    ColumnDef::new("k", LogicalType::Int),
                    ColumnDef::new("tag", LogicalType::Dict),
                ])?;
                Table::new(
                    id,
                    name,
                    schema,
                    vec![
                        Column::from_i64(LogicalType::Int, vec![1, 2, 3]),
                        Column::from_strings(&["x", "y", "z"]),
                    ],
                )
            })
            .unwrap();
        }
        db
    }

    fn chain_query(db: &Database) -> Query {
        // a ⋈ b ⋈ c on k, with a filter on a.k.
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("a").unwrap());
        let b = qb.add_relation(db.table_id("b").unwrap());
        let c = qb.add_relation(db.table_id("c").unwrap());
        qb.add_predicate(Predicate::eq(a, ColId::new(0), 1i64));
        qb.add_join(ColRef::new(a, ColId::new(0)), ColRef::new(b, ColId::new(0)));
        qb.add_join(ColRef::new(b, ColId::new(0)), ColRef::new(c, ColId::new(0)));
        qb.build()
    }

    #[test]
    fn builder_assembles_query() {
        let db = test_db();
        let q = chain_query(&db);
        assert_eq!(q.num_relations(), 3);
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.local_predicates(RelId::new(0)).len(), 1);
        assert_eq!(q.local_predicates(RelId::new(1)).len(), 0);
        assert!(q.validate(&db).is_ok());
        assert_eq!(q.all_rels().len(), 3);
    }

    #[test]
    fn duplicate_joins_are_deduplicated() {
        let db = test_db();
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("a").unwrap());
        let b = qb.add_relation(db.table_id("b").unwrap());
        qb.add_join(ColRef::new(a, ColId::new(0)), ColRef::new(b, ColId::new(0)));
        qb.add_join(ColRef::new(b, ColId::new(0)), ColRef::new(a, ColId::new(0)));
        let q = qb.build();
        assert_eq!(q.joins.len(), 1);
    }

    #[test]
    fn validation_rejects_disconnected_graph() {
        let db = test_db();
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("a").unwrap());
        let _b = qb.add_relation(db.table_id("b").unwrap());
        let c = qb.add_relation(db.table_id("c").unwrap());
        qb.add_join(ColRef::new(a, ColId::new(0)), ColRef::new(c, ColId::new(0)));
        let q = qb.build();
        assert!(matches!(q.validate(&db), Err(Error::Unsupported(_))));
    }

    #[test]
    fn validation_rejects_range_on_dict() {
        let db = test_db();
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("a").unwrap());
        qb.add_predicate(Predicate::lt(a, ColId::new(1), 5i64));
        let q = qb.build();
        assert!(q.validate(&db).is_err());
    }

    #[test]
    fn validation_rejects_bad_columns_and_empty() {
        let db = test_db();
        let empty = QueryBuilder::new().build();
        assert!(empty.validate(&db).is_err());

        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("a").unwrap());
        qb.add_predicate(Predicate::eq(a, ColId::new(9), 1i64));
        assert!(qb.build().validate(&db).is_err());
    }

    #[test]
    fn join_graph_topology() {
        let db = test_db();
        let q = chain_query(&db);
        let g = q.join_graph();
        assert_eq!(g.num_edges(), 2);
        assert!(g.is_connected());
        let r0 = RelSet::single(RelId::new(0));
        let r2 = RelSet::single(RelId::new(2));
        assert!(!g.connects(r0, r2));
        assert!(g.connects(r0, RelSet::single(RelId::new(1))));
        assert_eq!(g.neighbors(r0), RelSet::single(RelId::new(1)));
        let r01 = r0.with(RelId::new(1));
        assert_eq!(g.neighbors(r01), r2);
        assert!(g.is_set_connected(r01));
        assert!(!g.is_set_connected(r0.union(r2)));
        assert_eq!(g.edges_within(r01).len(), 1);
        assert_eq!(g.edges_between(r01, r2).len(), 1);
    }

    #[test]
    fn aggregate_validation() {
        let db = test_db();
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("a").unwrap());
        qb.aggregate(AggSpec {
            group_by: vec![ColRef::new(a, ColId::new(1))],
            aggs: vec![
                AggExpr::count_star(),
                AggExpr::sum(ColRef::new(a, ColId::new(0))),
            ],
        });
        assert!(qb.build().validate(&db).is_ok());

        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(db.table_id("a").unwrap());
        qb.aggregate(AggSpec {
            group_by: vec![],
            aggs: vec![AggExpr::min(ColRef::new(a, ColId::new(9)))],
        });
        assert!(qb.build().validate(&db).is_err());
    }
}
