//! Physical plans: access paths, join algorithms and structural identity.
//!
//! A physical plan is what the optimizer emits and what Algorithm 1
//! compares across rounds ("if P_i is the same as P_{i-1}, break"). Plan
//! identity is *structural*: join order plus operator and access-path
//! choices. Cost/cardinality annotations ([`PlanNodeInfo`]) are explicitly
//! excluded from identity — two rounds may re-derive the same plan with
//! different estimates, and that still terminates the loop.

use std::fmt::Write as _;

use crate::join_tree::JoinTree;
use crate::query::ColRef;
use reopt_common::hash::fx_mix;
use reopt_common::{ColId, RelId, RelSet, TableId};

/// How a base relation is read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPath {
    /// Full sequential scan, filtering all local predicates.
    SeqScan,
    /// Probe the hash index on `col` with the constant of an equality
    /// predicate; remaining local predicates are applied as residuals.
    IndexScan {
        /// The indexed column being probed.
        col: ColId,
    },
}

/// Physical join algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinAlgo {
    /// Hash join: build on the right (inner) input, probe with the left.
    Hash,
    /// Sort-merge join: sort both inputs on the join keys, then merge.
    Merge,
    /// Naive nested loops (used only when no equi-key exists or inputs are
    /// tiny).
    NestedLoop,
    /// Index nested loops: the right input must be a base-table scan whose
    /// join column is indexed; each outer row probes the index.
    IndexNested,
}

/// Optimizer annotations carried on each node. Not part of plan identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanNodeInfo {
    /// Estimated output rows (from whatever estimator produced the plan —
    /// native statistics or Γ-overridden).
    pub est_rows: f64,
    /// Estimated cumulative cost of the subtree.
    pub est_cost: f64,
}

impl Default for PlanNodeInfo {
    fn default() -> Self {
        PlanNodeInfo {
            est_rows: 0.0,
            est_cost: 0.0,
        }
    }
}

/// A physical plan tree.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    /// Base relation access.
    Scan {
        /// Relation occurrence this scan produces.
        rel: RelId,
        /// Base table scanned.
        table: TableId,
        /// Access path.
        access: AccessPath,
        /// Optimizer annotations.
        info: PlanNodeInfo,
    },
    /// Binary join.
    Join {
        /// Join algorithm.
        algo: JoinAlgo,
        /// Outer / probe input.
        left: Box<PhysicalPlan>,
        /// Inner / build input.
        right: Box<PhysicalPlan>,
        /// Equi-join keys: (column on left input, column on right input).
        keys: Vec<(ColRef, ColRef)>,
        /// Optimizer annotations.
        info: PlanNodeInfo,
    },
}

impl PhysicalPlan {
    /// The relations this subtree covers.
    pub fn relset(&self) -> RelSet {
        match self {
            PhysicalPlan::Scan { rel, .. } => RelSet::single(*rel),
            PhysicalPlan::Join { left, right, .. } => left.relset().union(right.relset()),
        }
    }

    /// Annotations of the root node.
    pub fn info(&self) -> &PlanNodeInfo {
        match self {
            PhysicalPlan::Scan { info, .. } | PhysicalPlan::Join { info, .. } => info,
        }
    }

    /// Estimated rows at the root.
    pub fn est_rows(&self) -> f64 {
        self.info().est_rows
    }

    /// Estimated total cost.
    pub fn est_cost(&self) -> f64 {
        self.info().est_cost
    }

    /// Number of join nodes.
    pub fn num_joins(&self) -> usize {
        match self {
            PhysicalPlan::Scan { .. } => 0,
            PhysicalPlan::Join { left, right, .. } => 1 + left.num_joins() + right.num_joins(),
        }
    }

    /// The logical join tree skeleton (the paper's `tree(P)`).
    pub fn logical_tree(&self) -> JoinTree {
        match self {
            PhysicalPlan::Scan { rel, .. } => JoinTree::leaf(*rel),
            PhysicalPlan::Join { left, right, .. } => {
                JoinTree::join(left.logical_tree(), right.logical_tree())
            }
        }
    }

    /// Structural identity: same shape, operators, access paths and keys.
    /// Ignores [`PlanNodeInfo`].
    pub fn same_structure(&self, other: &PhysicalPlan) -> bool {
        match (self, other) {
            (
                PhysicalPlan::Scan {
                    rel: r1,
                    table: t1,
                    access: a1,
                    ..
                },
                PhysicalPlan::Scan {
                    rel: r2,
                    table: t2,
                    access: a2,
                    ..
                },
            ) => r1 == r2 && t1 == t2 && a1 == a2,
            (
                PhysicalPlan::Join {
                    algo: g1,
                    left: l1,
                    right: rr1,
                    keys: k1,
                    ..
                },
                PhysicalPlan::Join {
                    algo: g2,
                    left: l2,
                    right: rr2,
                    keys: k2,
                    ..
                },
            ) => g1 == g2 && k1 == k2 && l1.same_structure(l2) && rr1.same_structure(rr2),
            _ => false,
        }
    }

    /// A 64-bit structural fingerprint consistent with
    /// [`PhysicalPlan::same_structure`].
    pub fn fingerprint(&self) -> u64 {
        match self {
            PhysicalPlan::Scan {
                rel, table, access, ..
            } => {
                let mut h = fx_mix(0x5ca9, rel.0 as u64);
                h = fx_mix(h, table.0 as u64);
                h = match access {
                    AccessPath::SeqScan => fx_mix(h, 1),
                    AccessPath::IndexScan { col } => fx_mix(fx_mix(h, 2), col.0 as u64),
                };
                h
            }
            PhysicalPlan::Join {
                algo,
                left,
                right,
                keys,
                ..
            } => {
                let tag = match algo {
                    JoinAlgo::Hash => 11,
                    JoinAlgo::Merge => 12,
                    JoinAlgo::NestedLoop => 13,
                    JoinAlgo::IndexNested => 14,
                };
                let mut h = fx_mix(0x10e1, tag);
                h = fx_mix(h, left.fingerprint());
                h = fx_mix(h, right.fingerprint());
                for (a, b) in keys {
                    h = fx_mix(h, ((a.rel.0 as u64) << 32) | a.col.0 as u64);
                    h = fx_mix(h, ((b.rel.0 as u64) << 32) | b.col.0 as u64);
                }
                h
            }
        }
    }

    /// Visit every node (pre-order).
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a PhysicalPlan)) {
        f(self);
        if let PhysicalPlan::Join { left, right, .. } = self {
            left.visit(f);
            right.visit(f);
        }
    }

    /// All join subtrees (pre-order) — the nodes sampling validates.
    pub fn join_subtrees(&self) -> Vec<&PhysicalPlan> {
        let mut out = Vec::new();
        self.visit(&mut |n| {
            if matches!(n, PhysicalPlan::Join { .. }) {
                out.push(n);
            }
        });
        out
    }

    /// Multi-line EXPLAIN-style rendering.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self {
            PhysicalPlan::Scan {
                rel,
                table,
                access,
                info,
            } => {
                let path = match access {
                    AccessPath::SeqScan => "SeqScan".to_string(),
                    AccessPath::IndexScan { col } => format!("IndexScan[{col}]"),
                };
                let _ = writeln!(
                    out,
                    "{path} {rel} (table {table})  rows={:.1} cost={:.1}",
                    info.est_rows, info.est_cost
                );
            }
            PhysicalPlan::Join {
                algo,
                left,
                right,
                keys,
                info,
            } => {
                let keys_s = keys
                    .iter()
                    .map(|(a, b)| format!("{a}={b}"))
                    .collect::<Vec<_>>()
                    .join(" AND ");
                let _ = writeln!(
                    out,
                    "{algo:?}Join on [{keys_s}]  rows={:.1} cost={:.1}",
                    info.est_rows, info.est_cost
                );
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rel: u32, access: AccessPath) -> PhysicalPlan {
        PhysicalPlan::Scan {
            rel: RelId::new(rel),
            table: TableId::new(rel),
            access,
            info: PlanNodeInfo::default(),
        }
    }

    fn key(lr: u32, lc: u32, rr: u32, rc: u32) -> (ColRef, ColRef) {
        (
            ColRef::new(RelId::new(lr), ColId::new(lc)),
            ColRef::new(RelId::new(rr), ColId::new(rc)),
        )
    }

    fn hash_join(l: PhysicalPlan, r: PhysicalPlan, k: (ColRef, ColRef)) -> PhysicalPlan {
        PhysicalPlan::Join {
            algo: JoinAlgo::Hash,
            left: Box::new(l),
            right: Box::new(r),
            keys: vec![k],
            info: PlanNodeInfo {
                est_rows: 10.0,
                est_cost: 99.0,
            },
        }
    }

    #[test]
    fn relset_and_joins() {
        let p = hash_join(
            scan(0, AccessPath::SeqScan),
            scan(1, AccessPath::SeqScan),
            key(0, 0, 1, 0),
        );
        assert_eq!(p.relset(), RelSet::first_n(2));
        assert_eq!(p.num_joins(), 1);
        assert_eq!(p.join_subtrees().len(), 1);
        assert_eq!(p.est_rows(), 10.0);
        assert_eq!(p.est_cost(), 99.0);
    }

    #[test]
    fn logical_tree_extraction() {
        let p = hash_join(
            hash_join(
                scan(0, AccessPath::SeqScan),
                scan(1, AccessPath::SeqScan),
                key(0, 0, 1, 0),
            ),
            scan(2, AccessPath::SeqScan),
            key(1, 0, 2, 0),
        );
        let t = p.logical_tree();
        assert_eq!(t.encoding(), "(r0r1,r0r1r2)");
        assert!(t.is_left_deep());
    }

    #[test]
    fn structural_identity_ignores_estimates() {
        let mut a = hash_join(
            scan(0, AccessPath::SeqScan),
            scan(1, AccessPath::SeqScan),
            key(0, 0, 1, 0),
        );
        let b = hash_join(
            scan(0, AccessPath::SeqScan),
            scan(1, AccessPath::SeqScan),
            key(0, 0, 1, 0),
        );
        assert!(a.same_structure(&b));
        assert_eq!(a.fingerprint(), b.fingerprint());
        if let PhysicalPlan::Join { info, .. } = &mut a {
            info.est_rows = 1e9;
            info.est_cost = 1e9;
        }
        assert!(a.same_structure(&b));
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn identity_distinguishes_operators_and_paths() {
        let a = hash_join(
            scan(0, AccessPath::SeqScan),
            scan(1, AccessPath::SeqScan),
            key(0, 0, 1, 0),
        );
        let mut b = a.clone();
        if let PhysicalPlan::Join { algo, .. } = &mut b {
            *algo = JoinAlgo::Merge;
        }
        assert!(!a.same_structure(&b));
        assert_ne!(a.fingerprint(), b.fingerprint());

        let c = hash_join(
            scan(0, AccessPath::IndexScan { col: ColId::new(0) }),
            scan(1, AccessPath::SeqScan),
            key(0, 0, 1, 0),
        );
        assert!(!a.same_structure(&c));
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn identity_distinguishes_operand_order() {
        let a = hash_join(
            scan(0, AccessPath::SeqScan),
            scan(1, AccessPath::SeqScan),
            key(0, 0, 1, 0),
        );
        let b = hash_join(
            scan(1, AccessPath::SeqScan),
            scan(0, AccessPath::SeqScan),
            key(1, 0, 0, 0),
        );
        assert!(!a.same_structure(&b));
        assert_ne!(a.fingerprint(), b.fingerprint());
        // But they are local transformations of each other.
        use crate::transform::{classify_transformation, TransformKind};
        assert_eq!(
            classify_transformation(&a.logical_tree(), &b.logical_tree()),
            TransformKind::Local
        );
    }

    #[test]
    fn explain_is_readable() {
        let p = hash_join(
            scan(0, AccessPath::IndexScan { col: ColId::new(2) }),
            scan(1, AccessPath::SeqScan),
            key(0, 0, 1, 0),
        );
        let s = p.explain();
        assert!(s.contains("HashJoin on [r0.c0=r1.c0]"));
        assert!(s.contains("IndexScan[c2] r0"));
        assert!(s.contains("SeqScan r1"));
    }
}
