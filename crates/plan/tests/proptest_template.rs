//! Property tests for query-template fingerprints — the plan-cache key of
//! the serving layer, where either a false split (literal noise leaking
//! into the key) or a false merge (distinct shapes colliding) silently
//! corrupts plan reuse.

use proptest::prelude::*;
use reopt_common::{ColId, TableId};
use reopt_plan::query::ColRef;
use reopt_plan::{template_fingerprint, Predicate, Query, QueryBuilder, QueryTemplate};

/// A literal-free description of a random query shape, derived from raw
/// seed words so both the shape and its literal instantiations are plain
/// deterministic code.
#[derive(Debug, Clone, PartialEq)]
struct Shape {
    /// Base table per relation occurrence.
    tables: Vec<u32>,
    /// Predicate kind per relation: 0 = none, 1 = Eq, 2 = Lt, 3 = Between
    /// (on column 0).
    preds: Vec<u8>,
    /// Join edges (i, j) with i < j, always containing the chain so the
    /// graph stays connected, plus random extra edges.
    edges: Vec<(usize, usize)>,
}

/// Split a seed word into per-use sub-streams (splitmix64 step).
fn mix(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn shape_from_seed(mut seed: u64) -> Shape {
    let k = 2 + (mix(&mut seed) % 5) as usize; // 2..=6 relations
    let tables: Vec<u32> = (0..k).map(|_| (mix(&mut seed) % 4) as u32).collect();
    let preds: Vec<u8> = (0..k).map(|_| (mix(&mut seed) % 4) as u8).collect();
    let mut edges: Vec<(usize, usize)> = (0..k - 1).map(|i| (i, i + 1)).collect();
    // Up to two extra chords.
    for _ in 0..(mix(&mut seed) % 3) {
        if k >= 3 {
            let i = (mix(&mut seed) as usize) % (k - 2);
            let j = i + 2 + (mix(&mut seed) as usize) % (k - i - 2).max(1);
            if j < k && !edges.contains(&(i, j)) {
                edges.push((i, j));
            }
        }
    }
    Shape {
        tables,
        preds,
        edges,
    }
}

/// Instantiate `shape` with literals drawn from `lit_seed`; when
/// `permute_joins` is set, insert the join edges in reverse order with
/// commuted operands (must not change the template).
fn instantiate(shape: &Shape, mut lit_seed: u64, permute_joins: bool) -> Query {
    let mut qb = QueryBuilder::new();
    let rels: Vec<_> = shape
        .tables
        .iter()
        .map(|&t| qb.add_relation(TableId::new(t)))
        .collect();
    for (i, &kind) in shape.preds.iter().enumerate() {
        let a = (mix(&mut lit_seed) % 1000) as i64;
        let b = a + (mix(&mut lit_seed) % 100) as i64;
        match kind {
            0 => {}
            1 => {
                qb.add_predicate(Predicate::eq(rels[i], ColId::new(0), a));
            }
            2 => {
                qb.add_predicate(Predicate::lt(rels[i], ColId::new(0), a));
            }
            _ => {
                qb.add_predicate(Predicate::between(rels[i], ColId::new(0), a, b));
            }
        }
    }
    let mut edges = shape.edges.clone();
    if permute_joins {
        edges.reverse();
    }
    for (i, j) in edges {
        let (x, y) = (
            ColRef::new(rels[i], ColId::new(1)),
            ColRef::new(rels[j], ColId::new(1)),
        );
        if permute_joins {
            qb.add_join(y, x);
        } else {
            qb.add_join(x, y);
        }
    }
    qb.build()
}

proptest! {
    /// Literal substitution never changes the fingerprint: one template,
    /// any constants.
    #[test]
    fn fingerprint_is_literal_invariant(seed in any::<u64>(), l1 in any::<u64>(), l2 in any::<u64>()) {
        let shape = shape_from_seed(seed);
        let a = instantiate(&shape, l1, false);
        let b = instantiate(&shape, l2, false);
        prop_assert_eq!(QueryTemplate::of(&a), QueryTemplate::of(&b));
        prop_assert_eq!(template_fingerprint(&a), template_fingerprint(&b));
    }

    /// Join-input commutation and join insertion order never change the
    /// fingerprint.
    #[test]
    fn fingerprint_is_join_commutation_invariant(seed in any::<u64>(), lit in any::<u64>()) {
        let shape = shape_from_seed(seed);
        let forward = instantiate(&shape, lit, false);
        let commuted = instantiate(&shape, lit, true);
        prop_assert_eq!(QueryTemplate::of(&forward), QueryTemplate::of(&commuted));
        prop_assert_eq!(
            template_fingerprint(&forward),
            template_fingerprint(&commuted)
        );
    }

    /// Distinct shapes collide with probability ~0: whenever the
    /// normalized templates differ, the 64-bit fingerprints differ too
    /// (a generator-wide collision would fail the run).
    #[test]
    fn distinct_shapes_do_not_collide(s1 in any::<u64>(), s2 in any::<u64>(), lit in any::<u64>()) {
        let (a, b) = (shape_from_seed(s1), shape_from_seed(s2));
        let qa: Query = instantiate(&a, lit, false);
        let qb: Query = instantiate(&b, lit, false);
        let (ta, tb) = (QueryTemplate::of(&qa), QueryTemplate::of(&qb));
        if ta == tb {
            prop_assert_eq!(template_fingerprint(&qa), template_fingerprint(&qb));
        } else {
            prop_assert_ne!(template_fingerprint(&qa), template_fingerprint(&qb));
        }
    }
}

/// Deterministic bulk collision sweep: several hundred structurally
/// distinct templates must produce pairwise-distinct fingerprints.
#[test]
fn bulk_shape_sweep_has_no_collisions() {
    use std::collections::HashMap;
    let mut seen: HashMap<u64, QueryTemplate> = HashMap::new();
    let mut distinct = 0usize;
    for seed in 0..600u64 {
        let shape = shape_from_seed(seed.wrapping_mul(0x5851_f42d_4c95_7f2d));
        let q = instantiate(&shape, seed, false);
        let t = QueryTemplate::of(&q);
        let fp = template_fingerprint(&q);
        match seen.get(&fp) {
            Some(prev) => assert_eq!(
                prev, &t,
                "fingerprint collision between distinct templates (seed {seed})"
            ),
            None => {
                seen.insert(fp, t);
                distinct += 1;
            }
        }
    }
    // The generator really does produce many distinct shapes.
    assert!(
        distinct > 200,
        "only {distinct} distinct templates generated"
    );
}
