//! In-memory columnar storage engine.
//!
//! This crate is the substrate that stands in for PostgreSQL's heap and
//! index access methods in the paper's prototype. It provides:
//!
//! * [`value`] — the scalar type system. All stored scalars are `i64` at
//!   rest (dates = epoch days, money = cents, strings = dictionary codes);
//!   [`value::Value`] is the typed API surface.
//! * [`mod@column`] — [`column::Column`]: a typed `i64` vector with an
//!   optional string dictionary.
//! * [`batch`] — [`batch::ColumnBatch`] windows, selection vectors, and
//!   the thread-local scratch-buffer pool behind the executor's
//!   vectorized (batch-at-a-time) engine.
//! * [`schema`] — column/table schemas and logical types.
//! * [`table`] — [`table::Table`]: schema + columns + hash indexes.
//! * [`database`] — [`database::Database`]: the catalog.
//! * [`page`] — page accounting used by the optimizer's I/O cost model.
//! * [`version`] — [`version::DataVersion`], the monotonic clock bumped by
//!   every mutation and threaded through statistics, samples and plan
//!   caches so nothing derived from data can silently go stale.
//!
//! The engine is read-optimized: queries never mutate tables, and
//! workload generators build them in bulk — the paper's setting (static
//! benchmark databases, `ANALYZE` once, then query). On top of that, the
//! [`database::Database`] ingest API (`append_rows`, `delete_where`, TTL
//! expiry) supports the serving layer's streaming workloads: mutations go
//! through copy-on-write table `Arc`s, so snapshots handed to in-flight
//! queries are immutable and free.

pub mod batch;
pub mod column;
pub mod database;
pub mod page;
pub mod schema;
pub mod table;
pub mod value;
pub mod version;

pub use batch::{ColumnBatch, BATCH_SIZE};
pub use column::Column;
pub use database::Database;
pub use schema::{ColumnDef, LogicalType, TableSchema};
pub use table::Table;
pub use value::Value;
pub use version::DataVersion;
