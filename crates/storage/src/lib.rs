//! In-memory columnar storage engine.
//!
//! This crate is the substrate that stands in for PostgreSQL's heap and
//! index access methods in the paper's prototype. It provides:
//!
//! * [`value`] — the scalar type system. All stored scalars are `i64` at
//!   rest (dates = epoch days, money = cents, strings = dictionary codes);
//!   [`value::Value`] is the typed API surface.
//! * [`mod@column`] — [`column::Column`]: a typed `i64` vector with an
//!   optional string dictionary.
//! * [`batch`] — [`batch::ColumnBatch`] windows, selection vectors, and
//!   the thread-local scratch-buffer pool behind the executor's
//!   vectorized (batch-at-a-time) engine.
//! * [`schema`] — column/table schemas and logical types.
//! * [`table`] — [`table::Table`]: schema + columns + hash indexes.
//! * [`database`] — [`database::Database`]: the catalog.
//! * [`page`] — page accounting used by the optimizer's I/O cost model.
//!
//! The engine is read-optimized and append-only: workload generators build
//! tables in bulk, queries never mutate them. That matches the paper's
//! setting (static benchmark databases, `ANALYZE` once, then query).

pub mod batch;
pub mod column;
pub mod database;
pub mod page;
pub mod schema;
pub mod table;
pub mod value;

pub use batch::{ColumnBatch, BATCH_SIZE};
pub use column::Column;
pub use database::Database;
pub use schema::{ColumnDef, LogicalType, TableSchema};
pub use table::Table;
pub use value::Value;
