//! Table and column schemas.

use serde::{Deserialize, Serialize};

use reopt_common::{ColId, Error, Result};

/// Logical type of a column. All variants are stored as `i64`; the logical
/// type drives display, statistics interpretation and planner checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogicalType {
    /// Plain integer (keys, quantities, synthetic attributes).
    Int,
    /// Date stored as days since epoch. Ordered; range predicates allowed.
    Date,
    /// Money stored as integer cents. Ordered; range predicates allowed.
    Money,
    /// Dictionary-coded string. Unordered; equality predicates only.
    Dict,
}

impl LogicalType {
    /// Whether `<`/`<=`/`>`/`>=`/`BETWEEN` predicates make sense.
    pub fn is_ordered(self) -> bool {
        !matches!(self, LogicalType::Dict)
    }
}

/// Definition of one column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name, unique within its table.
    pub name: String,
    /// Logical type.
    pub ty: LogicalType,
    /// Byte width used by page accounting (defaults to 8).
    pub width: u32,
}

impl ColumnDef {
    /// A column with the default 8-byte width.
    pub fn new(name: impl Into<String>, ty: LogicalType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            width: 8,
        }
    }

    /// Override the byte width (e.g. to model wide varchar payloads that
    /// inflate a table's page count without storing the payload).
    pub fn with_width(mut self, width: u32) -> Self {
        self.width = width;
        self
    }
}

/// Schema of a table: an ordered list of column definitions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TableSchema {
    columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Build a schema from column definitions.
    ///
    /// Column names must be unique.
    pub fn new(columns: Vec<ColumnDef>) -> Result<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(Error::invalid(format!(
                    "duplicate column name `{}`",
                    c.name
                )));
            }
        }
        Ok(TableSchema { columns })
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// All column definitions in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Definition of column `col`.
    pub fn column(&self, col: ColId) -> Result<&ColumnDef> {
        self.columns
            .get(col.index())
            .ok_or_else(|| Error::not_found(format!("column {col}")))
    }

    /// Resolve a column by name.
    pub fn col_by_name(&self, name: &str) -> Result<ColId> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .map(ColId::from)
            .ok_or_else(|| Error::not_found(format!("column `{name}`")))
    }

    /// Total tuple byte width (sum of column widths), for page accounting.
    pub fn row_width(&self) -> u64 {
        self.columns.iter().map(|c| c.width as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(vec![
            ColumnDef::new("id", LogicalType::Int),
            ColumnDef::new("ship_date", LogicalType::Date),
            ColumnDef::new("comment", LogicalType::Dict).with_width(44),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_by_name_and_id() {
        let s = schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.col_by_name("ship_date").unwrap(), ColId::new(1));
        assert_eq!(s.column(ColId::new(2)).unwrap().name, "comment");
        assert!(s.col_by_name("nope").is_err());
        assert!(s.column(ColId::new(9)).is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = TableSchema::new(vec![
            ColumnDef::new("a", LogicalType::Int),
            ColumnDef::new("a", LogicalType::Int),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn row_width_sums_declared_widths() {
        assert_eq!(schema().row_width(), 8 + 8 + 44);
    }

    #[test]
    fn orderedness_by_type() {
        assert!(LogicalType::Int.is_ordered());
        assert!(LogicalType::Date.is_ordered());
        assert!(LogicalType::Money.is_ordered());
        assert!(!LogicalType::Dict.is_ordered());
    }
}
